"""Empirical estimation utilities for the Section IV predictions.

Two measurable predictions fall out of the analysis:

* the imbalance of Greedy-2 grows like ``c * m`` beyond the feasibility
  threshold and stays sublinear below it -- :func:`fit_imbalance_growth`
  estimates the growth exponent from a trajectory;
* balance collapses once ``W`` crosses ``O(1/p1)`` ("the behavior of
  the system is binary") -- :func:`find_transition_workers` locates the
  empirical transition and :func:`transition_report` compares it to the
  ``d / p1`` prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.bounds import feasible_workers
from repro.simulation.multisource import simulate_multisource_pkg
from repro.streams.distributions import KeyDistribution


def fit_imbalance_growth(
    positions: Sequence[float], imbalances: Sequence[float]
) -> float:
    """Least-squares growth exponent of ``I(t) ~ t^alpha``.

    ``alpha ~ 1`` means linear growth (the infeasible regime);
    ``alpha ~ 0.5`` is the sqrt(m) noise floor of the feasible regime.
    Zero imbalances are clipped to 1 before the log fit.
    """
    positions = np.asarray(positions, dtype=np.float64)
    imbalances = np.maximum(np.asarray(imbalances, dtype=np.float64), 1.0)
    if positions.size < 2:
        raise ValueError("need at least two points to fit a growth rate")
    if np.any(positions <= 0):
        raise ValueError("positions must be positive")
    slope, _intercept = np.polyfit(np.log(positions), np.log(imbalances), 1)
    return float(slope)


@dataclass
class TransitionReport:
    """Where balance collapses, empirically vs. the theory."""

    predicted_workers: int
    measured_workers: Optional[int]
    worker_grid: Sequence[int]
    fractions: Sequence[float]

    @property
    def agrees(self) -> bool:
        """Whether the empirical transition brackets the prediction.

        True when the measured collapse point is within one grid step
        of ``d / p1`` (or both lie beyond the grid).
        """
        grid = list(self.worker_grid)
        if self.measured_workers is None:
            return self.predicted_workers > max(grid)
        idx = grid.index(self.measured_workers)
        lo = grid[max(idx - 1, 0)]
        hi = grid[min(idx + 1, len(grid) - 1)]
        return lo <= self.predicted_workers <= hi


def find_transition_workers(
    distribution: KeyDistribution,
    worker_grid: Sequence[int],
    num_messages: int = 100_000,
    num_sources: int = 1,
    collapse_fraction: float = 1e-3,
    seed: int = 0,
) -> TransitionReport:
    """Locate the worker count where PKG's balance collapses.

    Runs PKG across ``worker_grid`` and reports the first W whose
    average imbalance fraction exceeds ``collapse_fraction`` -- the
    empirical counterpart of the paper's "binary" transition, to be
    compared against :func:`feasible_workers(p1)`.
    """
    worker_grid = sorted(set(int(w) for w in worker_grid))
    if not worker_grid:
        raise ValueError("worker_grid must be non-empty")
    rng = np.random.default_rng(seed)
    keys = distribution.sample(num_messages, rng)
    fractions = []
    measured: Optional[int] = None
    for w in worker_grid:
        result = simulate_multisource_pkg(
            keys, num_workers=w, num_sources=num_sources, seed=seed
        )
        fraction = result.average_imbalance_fraction
        fractions.append(fraction)
        if measured is None and fraction > collapse_fraction:
            measured = w
    return TransitionReport(
        predicted_workers=feasible_workers(distribution.p1),
        measured_workers=measured,
        worker_grid=worker_grid,
        fractions=fractions,
    )
