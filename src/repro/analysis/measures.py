"""The mu_r measures of bin subsets (Section IV-B).

For a set of bins ``B`` and ``1 <= r <= d``::

    mu_r(B) = sum { p_i : {H1(i), ..., Hr(i)} subseteq B }

``mu_1(B)`` is the probability that a random key has its *first* choice
in B; ``mu_d(B)`` the probability that *all* its choices fall in B.  A
set is *overpopulated* when ``mu_d(B) > |B| / n``: keys trapped inside B
arrive faster than B's fair share of capacity, so the average load in B
must outgrow the global average -- the paper's second counterexample
(the ~0.135 n unused bins under a uniform distribution).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np

from repro.hashing import HashFamily
from repro.streams.distributions import KeyDistribution


def choice_table(
    distribution: KeyDistribution, family: HashFamily, num_bins: int
) -> np.ndarray:
    """``(K, d)`` matrix of each key's hash choices among the bins."""
    keys = np.arange(distribution.num_keys, dtype=np.int64)
    return family.choice_matrix(keys, num_bins)


def mu_measure(
    bins: Sequence[int],
    distribution: KeyDistribution,
    family: HashFamily,
    num_bins: int,
    r: int = None,
    choices: np.ndarray = None,
) -> float:
    """``mu_r(B)`` for bin set ``B``; ``r`` defaults to d (all choices).

    ``choices`` may carry a precomputed :func:`choice_table` to amortise
    hashing across many subset queries.
    """
    if r is None:
        r = len(family)
    if not 1 <= r <= len(family):
        raise ValueError(f"r must be in [1, {len(family)}], got {r}")
    if choices is None:
        choices = choice_table(distribution, family, num_bins)
    member = np.zeros(num_bins, dtype=bool)
    member[np.asarray(list(bins), dtype=np.int64)] = True
    inside = member[choices[:, :r]].all(axis=1)
    return float(distribution.probabilities[inside].sum())


def find_overpopulated_sets(
    distribution: KeyDistribution,
    family: HashFamily,
    num_bins: int,
    max_size: int = 3,
    slack: float = 1.0,
) -> List[Tuple[Tuple[int, ...], float]]:
    """Bin subsets B with ``mu_d(B) > slack * |B| / n``.

    Exhaustive over subsets up to ``max_size`` (exponential; keep n
    small) plus the greedy heavy-prefix candidate of any size: bins
    sorted by mu_1({j}) descending, testing each prefix.  Returns
    ``[(bins, mu_d(B)), ...]`` sorted by excess.
    """
    choices = choice_table(distribution, family, num_bins)
    found: List[Tuple[Tuple[int, ...], float]] = []

    def check(subset: Tuple[int, ...]) -> None:
        mu = mu_measure(
            subset, distribution, family, num_bins, choices=choices
        )
        if mu > slack * len(subset) / num_bins:
            found.append((subset, mu))

    for size in range(1, max_size + 1):
        for subset in combinations(range(num_bins), size):
            check(subset)

    singles = np.array(
        [
            mu_measure((j,), distribution, family, num_bins, r=1, choices=choices)
            for j in range(num_bins)
        ]
    )
    order = np.argsort(singles)[::-1]
    for size in range(max_size + 1, num_bins):
        check(tuple(int(j) for j in order[:size]))

    found.sort(key=lambda bm: -(bm[1] - len(bm[0]) / num_bins))
    return found


def expected_used_bins(num_bins: int, num_keys: int, num_choices: int = 2) -> float:
    """Expected number of bins reachable by at least one key's choice.

    Section IV's example: for the uniform distribution over n keys with
    d = 2, ``E[|B|] = n - n (1 - 1/n)^{2n} ~ n (1 - e^-2) ~ 0.865 n`` --
    about 13.5% of bins are unreachable, which alone forces imbalance
    ``~0.156 m``.
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    miss = (1.0 - 1.0 / num_bins) ** (num_choices * num_keys)
    return num_bins * (1.0 - miss)


def used_bins(
    distribution: KeyDistribution, family: HashFamily, num_bins: int
) -> np.ndarray:
    """The actual set of bins reachable under a concrete hash family."""
    choices = choice_table(distribution, family, num_bins)
    return np.unique(choices)
