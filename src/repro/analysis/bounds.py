"""Imbalance bounds and feasibility thresholds (Theorems 4.1 / 4.2).

Theorem 4.1 (upper bound): with n bins, m >= n^2 messages and
``p1 <= 1/(5n)``, the Greedy-d imbalance satisfies w.h.p.::

    I(m) = O( m/n * ln n / ln ln n )   if d = 1
    I(m) = O( m/n )                    if d >= 2

Theorem 4.2 shows both are tight (uniform distribution over 5n keys).
The exponential gap between one and two choices, and the absence of
more than constant-factor gains beyond d = 2, are what justify PKG's
d = 2.
"""

from __future__ import annotations

import math


def imbalance_upper_bound(
    num_messages: int, num_bins: int, num_choices: int = 2, constant: float = 1.0
) -> float:
    """The Theorem 4.1 bound shape (up to its hidden constant).

    Returns ``constant * m/n * ln n / ln ln n`` for d = 1 and
    ``constant * m/n`` for d >= 2.  For ``n <= e`` (where ln ln n is
    undefined or non-positive) the single-choice factor degrades to 1.
    """
    if num_messages < 0:
        raise ValueError(f"num_messages must be >= 0, got {num_messages}")
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    if num_choices < 1:
        raise ValueError(f"num_choices must be >= 1, got {num_choices}")
    base = constant * num_messages / num_bins
    if num_choices >= 2:
        return base
    log_n = math.log(num_bins)
    log_log_n = math.log(log_n) if log_n > 1 else 1.0
    return base * max(log_n / max(log_log_n, 1e-12), 1.0)


def imbalance_lower_bound_hot_key(
    num_messages: int, num_bins: int, p1: float, num_choices: int = 2
) -> float:
    """Linear-in-m lower bound when the hot key saturates its choices.

    Section IV: the d bins holding the hottest key jointly receive at
    least ``p1 * m`` messages, so their expected maximum grows at rate
    ``>= p1/d`` while the average grows at ``1/n``; if ``p1 > d/n`` the
    imbalance is at least ``(p1/d - 1/n) m`` *for any placement scheme*.
    Returns 0 when the distribution is feasible (``p1 <= d/n``).
    """
    if not 0.0 <= p1 <= 1.0:
        raise ValueError(f"p1 must be in [0, 1], got {p1}")
    rate = p1 / num_choices - 1.0 / num_bins
    return max(0.0, rate * num_messages)


def feasible_workers(p1: float, num_choices: int = 2) -> int:
    """Largest worker count for which good balance is possible: ``d/p1``.

    Beyond this, :func:`imbalance_lower_bound_hot_key` is positive and
    imbalance grows linearly in m no matter the scheme -- the "binary"
    transition observed around W = 50 (WP) and W = 100 (TW) in Table II.
    """
    if p1 <= 0:
        raise ValueError(f"p1 must be positive, got {p1}")
    return int(math.floor(num_choices / p1))


def satisfies_theorem_hypothesis(
    num_messages: int, num_bins: int, p1: float
) -> bool:
    """Whether (m, n, p1) meet Theorem 4.1's hypotheses.

    Requires ``m >= n^2`` and ``p1 <= 1/(5n)``.
    """
    return num_messages >= num_bins**2 and p1 <= 1.0 / (5.0 * num_bins)


def max_useful_choices(num_bins: int) -> int:
    """The d beyond which Greedy-d degenerates to shuffle grouping.

    Section IV: "when d >> n ln n, all n bins are valid choices, and we
    obtain shuffle grouping".  Returns ``ceil(n ln n)`` as that scale.
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    if num_bins == 1:
        return 1
    return int(math.ceil(num_bins * math.log(num_bins)))


def single_choice_expected_maximum(num_messages: int, num_bins: int) -> float:
    """Classic expected maximum load for single-choice placement.

    For m >= n ln n uniform single-choice throws the maximum load is
    ``m/n + Theta(sqrt(m ln n / n))`` -- used as a sanity anchor when
    validating the d = 1 row of the theorem empirically.
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    mean = num_messages / num_bins
    if num_bins == 1:
        return float(mean)
    return mean + math.sqrt(2.0 * mean * math.log(num_bins))
