"""The chromatic balls-and-bins process of Section IV, run explicitly.

Keys are colors, messages are colored balls, workers are bins.  The
Greedy-d scheme places ball t (color ``k_t``) into the least-loaded bin
among ``H1(k_t) .. Hd(k_t)``; with key splitting no per-color choice is
remembered.  This module runs the process end to end so the theorems can
be checked empirically (``benchmarks/bench_theory_bounds.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hashing import HashFamily
from repro.streams.distributions import KeyDistribution, UniformKeyDistribution


@dataclass
class ChromaticResult:
    """Outcome of one Greedy-d run."""

    num_bins: int
    num_choices: int
    num_balls: int
    loads: np.ndarray

    @property
    def max_load(self) -> float:
        return float(self.loads.max())

    @property
    def imbalance(self) -> float:
        return float(self.loads.max() - self.loads.mean())

    @property
    def normalized_imbalance(self) -> float:
        """Imbalance in units of m/n (the theorem's natural scale)."""
        if self.num_balls == 0:
            return 0.0
        return self.imbalance / (self.num_balls / self.num_bins)


class ChromaticBallsAndBins:
    """Run the Greedy-d process for a given color distribution.

    Parameters
    ----------
    num_bins:
        n, the number of bins (workers).
    num_choices:
        d; 1 models hash key grouping, 2 models PKG.
    distribution:
        Color distribution D; defaults to the uniform distribution over
        ``5 n`` colors -- exactly the extremal instance of Theorem 4.2.
    seed:
        Seeds both the hash family and the ball colors.
    """

    def __init__(
        self,
        num_bins: int,
        num_choices: int = 2,
        distribution: Optional[KeyDistribution] = None,
        seed: int = 0,
    ):
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        if num_choices < 1:
            raise ValueError(f"num_choices must be >= 1, got {num_choices}")
        self.num_bins = int(num_bins)
        self.num_choices = int(num_choices)
        self.distribution = distribution or UniformKeyDistribution(5 * num_bins)
        self.seed = int(seed)
        self.family = HashFamily(size=num_choices, seed=seed)

    def run(self, num_balls: int) -> ChromaticResult:
        """Throw ``num_balls`` colored balls and return the final loads."""
        rng = np.random.default_rng(self.seed + 1)
        colors = self.distribution.sample(num_balls, rng)
        loads = np.zeros(self.num_bins, dtype=np.int64)

        if self.num_choices == 1:
            # Single choice is fully determined by the hashes: vectorize.
            bins = self.family[0].bucket_array(colors, self.num_bins)
            loads += np.bincount(bins, minlength=self.num_bins)
            return ChromaticResult(self.num_bins, 1, num_balls, loads)

        choices = self.family.choice_matrix(colors, self.num_bins)
        cols = [choices[:, j].tolist() for j in range(self.num_choices)]
        load_list = [0] * self.num_bins
        if self.num_choices == 2:
            c1, c2 = cols
            for i in range(num_balls):
                a, b = c1[i], c2[i]
                w = a if load_list[a] <= load_list[b] else b
                load_list[w] += 1
        else:
            for i in range(num_balls):
                w = min((col[i] for col in cols), key=load_list.__getitem__)
                load_list[w] += 1
        loads += np.asarray(load_list, dtype=np.int64)
        return ChromaticResult(self.num_bins, self.num_choices, num_balls, loads)


def greedy_d_imbalance(
    num_bins: int,
    num_balls: int,
    num_choices: int,
    distribution: Optional[KeyDistribution] = None,
    seed: int = 0,
) -> float:
    """Convenience wrapper: final imbalance of one Greedy-d run."""
    process = ChromaticBallsAndBins(
        num_bins, num_choices, distribution=distribution, seed=seed
    )
    return process.run(num_balls).imbalance
