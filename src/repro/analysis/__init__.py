"""Theory of Section IV: the chromatic balls-and-bins process.

* :mod:`repro.analysis.measures` -- the mu_r measures of bin subsets,
  overpopulated-set detection, and the expected-used-bins formula.
* :mod:`repro.analysis.bounds` -- the imbalance bounds of Theorems 4.1
  and 4.2 and the feasibility thresholds.
* :mod:`repro.analysis.chromatic` -- the Greedy-d process itself, run
  explicitly for empirical verification of the theorems.
"""

from repro.analysis.measures import (
    expected_used_bins,
    find_overpopulated_sets,
    mu_measure,
)
from repro.analysis.bounds import (
    feasible_workers,
    imbalance_lower_bound_hot_key,
    imbalance_upper_bound,
    max_useful_choices,
    satisfies_theorem_hypothesis,
)
from repro.analysis.chromatic import ChromaticBallsAndBins, greedy_d_imbalance
from repro.analysis.estimation import (
    TransitionReport,
    find_transition_workers,
    fit_imbalance_growth,
)

__all__ = [
    "TransitionReport",
    "find_transition_workers",
    "fit_imbalance_growth",
    "mu_measure",
    "find_overpopulated_sets",
    "expected_used_bins",
    "imbalance_upper_bound",
    "imbalance_lower_bound_hot_key",
    "feasible_workers",
    "satisfies_theorem_hypothesis",
    "max_useful_choices",
    "ChromaticBallsAndBins",
    "greedy_d_imbalance",
]
