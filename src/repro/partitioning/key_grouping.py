"""Key grouping (KG): the single-choice hashing baseline ("H").

``Pt(k) = H1(k) mod W`` -- stateless, coordination-free, and the cause
of the load imbalance the paper sets out to fix: with a skewed key
distribution the worker owning the hot keys receives a disproportionate
share of messages (Figure 1).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import hashed_buckets
from repro.hashing import HashFamily, HashFunction
from repro.partitioning.base import Partitioner


@register(
    "kg",
    aliases=("h", "hash", "key-grouping"),
    description="hash key grouping, the single-choice baseline",
)
class KeyGrouping(Partitioner):
    """Hash-based key grouping, the paper's main baseline.

    Guarantees that all messages with the same key reach the same
    worker (the semantics stateful MapReduce-style operators rely on),
    at the cost of single-choice load imbalance.
    """

    name = "H"

    def __init__(
        self,
        num_workers: int,
        hash_function: Optional[HashFunction] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_workers)
        self._hash = hash_function or HashFamily(size=1, seed=seed)[0]

    def route(self, key: Any, now: float = 0.0) -> int:
        return self._hash(key) % self.num_workers

    def candidates(self, key: Any) -> Tuple[int, ...]:
        return (self.route(key),)

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        # Stateless: fully vectorised (integer keys), or hashed once per
        # distinct key and gathered (everything else).
        return hashed_buckets(self._hash, keys, self.num_workers)
