"""Stream partitioning schemes.

The paper's cast, by name used in its tables:

========== ============================================ ==================
Name       Class                                        Key splitting?
========== ============================================ ==================
H          :class:`KeyGrouping` (hash key grouping)     no (single choice)
SG         :class:`ShuffleGrouping` (round robin)       n/a (stateless)
PoTC       :class:`StaticPoTC` (2 choices, bound once)  no
On-Greedy  :class:`OnlineGreedy` (W choices, bound)     no
Off-Greedy :class:`OfflineGreedy` (offline LPT)         no
PKG        :class:`PartialKeyGrouping` (Greedy-d)       **yes**
--         :class:`LeastLoaded` (d -> W limit)          yes (degenerate)
--         :class:`RebalancingKeyGrouping` (Flux-like)  no (migration)
========== ============================================ ==================
"""

from repro.partitioning.base import Partitioner
from repro.partitioning.key_grouping import KeyGrouping
from repro.partitioning.shuffle import ShuffleGrouping
from repro.partitioning.pkg import PartialKeyGrouping
from repro.partitioning.potc import StaticPoTC
from repro.partitioning.greedy import OfflineGreedy, OnlineGreedy
from repro.partitioning.dchoices import LeastLoaded
from repro.partitioning.rebalancing import RebalancingKeyGrouping
from repro.partitioning.consistent import (
    ConsistentKeyGrouping,
    ConsistentPartialKeyGrouping,
    HashRing,
)
from repro.partitioning.jbsq import JoinBoundedShortestQueue

__all__ = [
    "Partitioner",
    "KeyGrouping",
    "ShuffleGrouping",
    "PartialKeyGrouping",
    "StaticPoTC",
    "OnlineGreedy",
    "OfflineGreedy",
    "LeastLoaded",
    "RebalancingKeyGrouping",
    "HashRing",
    "ConsistentKeyGrouping",
    "ConsistentPartialKeyGrouping",
    "JoinBoundedShortestQueue",
]
