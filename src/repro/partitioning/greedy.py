"""Greedy key-grouping baselines: On-Greedy and Off-Greedy (Table II).

Both keep key-grouping semantics (one worker per key, remembered in a
routing table) but consider *all* W workers instead of two hash
choices:

* **On-Greedy** -- online: the first time a key appears, bind it to the
  globally least-loaded worker.
* **Off-Greedy** -- offline: with the whole key-frequency histogram
  known in advance, assign keys in decreasing frequency order to the
  least-loaded worker (LPT scheduling).  An unfair comparison for
  online algorithms; the paper's headline is that PKG beats even this.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.load.base import LoadEstimator, WorkerLoadRegistry
from repro.load.oracle import GlobalOracleEstimator
from repro.partitioning.base import Partitioner


@register(
    "on-greedy",
    aliases=("online-greedy",),
    description="online greedy: bind new keys to the least-loaded worker",
)
class OnlineGreedy(Partitioner):
    """Online greedy: new key -> currently least-loaded worker, fixed."""

    name = "On-Greedy"

    def __init__(
        self,
        num_workers: int,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
    ):
        super().__init__(num_workers)
        if estimator is None:
            registry = registry or WorkerLoadRegistry(num_workers)
            estimator = GlobalOracleEstimator(registry)
        self.estimator = estimator
        self.routing_table: Dict = {}
        self._all_workers = tuple(range(num_workers))

    def candidates(self, key) -> Tuple[int, ...]:
        if key in self.routing_table:
            return (self.routing_table[key],)
        return self._all_workers

    def route(self, key, now: float = 0.0) -> int:
        worker = self.routing_table.get(key)
        if worker is None:
            worker = self.estimator.select(self._all_workers, now)
            self.routing_table[key] = worker
        self.estimator.on_send(worker, now)
        return worker

    def memory_entries(self) -> int:
        return len(self.routing_table)

    def reset(self) -> None:
        self.routing_table.clear()
        self.estimator.reset()
        if isinstance(self.estimator, GlobalOracleEstimator):
            self.estimator.registry.reset()


@register(
    "off-greedy",
    aliases=("offline-greedy", "lpt"),
    description="offline LPT packing from the full frequency histogram",
)
class OfflineGreedy(Partitioner):
    """Offline greedy (LPT): requires the full key-frequency histogram.

    :meth:`fit` sorts keys by decreasing frequency and greedily packs
    them onto the least-loaded worker, the classic makespan heuristic.
    Routing then is a pure table lookup.  Keys never seen during fit
    fall back to the least *assigned-load* worker at first sight.
    """

    name = "Off-Greedy"

    def __init__(self, num_workers: int):
        super().__init__(num_workers)
        self.routing_table: Dict = {}
        self._planned_load = np.zeros(num_workers, dtype=np.float64)
        self._fitted = False

    def fit(self, frequencies: Mapping) -> "OfflineGreedy":
        """Plan the assignment from a ``{key: frequency}`` mapping."""
        self.routing_table.clear()
        self._planned_load[:] = 0.0
        for key, freq in sorted(
            frequencies.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        ):
            worker = int(np.argmin(self._planned_load))
            self.routing_table[key] = worker
            self._planned_load[worker] += freq
        self._fitted = True
        return self

    @classmethod
    def from_stream(cls, keys: Sequence, num_workers: int) -> "OfflineGreedy":
        """Fit directly from the key sequence that will be replayed."""
        keys = np.asarray(keys)
        if np.issubdtype(keys.dtype, np.integer):
            counts = np.bincount(keys.astype(np.int64))
            freqs = {int(k): int(c) for k, c in enumerate(counts) if c > 0}
        else:
            freqs = {}
            for k in keys:
                freqs[k] = freqs.get(k, 0) + 1
        return cls(num_workers).fit(freqs)

    def candidates(self, key) -> Tuple[int, ...]:
        if key in self.routing_table:
            return (self.routing_table[key],)
        return tuple(range(self.num_workers))

    def route(self, key, now: float = 0.0) -> int:
        worker = self.routing_table.get(key)
        if worker is None:
            worker = int(np.argmin(self._planned_load))
            self.routing_table[key] = worker
            self._planned_load[worker] += 1.0
        return worker

    def route_stream(
        self, keys: Sequence, timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        keys_arr = np.asarray(keys)
        if self._fitted and np.issubdtype(keys_arr.dtype, np.integer):
            max_key = int(keys_arr.max(initial=-1))
            table = np.full(max_key + 2, -1, dtype=np.int64)
            for k, w in self.routing_table.items():
                if isinstance(k, (int, np.integer)) and 0 <= int(k) <= max_key:
                    table[int(k)] = w
            routed = table[keys_arr]
            if np.all(routed >= 0):
                return routed
        return super().route_stream(keys, timestamps)

    def memory_entries(self) -> int:
        return len(self.routing_table)

    def reset(self) -> None:
        self.routing_table.clear()
        self._planned_load[:] = 0.0
        self._fitted = False
