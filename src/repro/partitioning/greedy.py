"""Greedy key-grouping baselines: On-Greedy and Off-Greedy (Table II).

Both keep key-grouping semantics (one worker per key, remembered in a
routing table) but consider *all* W workers instead of two hash
choices:

* **On-Greedy** -- online: the first time a key appears, bind it to the
  globally least-loaded worker.
* **Off-Greedy** -- offline: with the whole key-frequency histogram
  known in advance, assign keys in decreasing frequency order to the
  least-loaded worker (LPT scheduling).  An unfair comparison for
  online algorithms; the paper's headline is that PKG beats even this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import factorize
from repro.core.engine import bind_route_chunk
from repro.load.base import LoadEstimator, WorkerLoadRegistry, vectorizable_loads
from repro.load.oracle import GlobalOracleEstimator
from repro.partitioning.base import Partitioner


def _bind_chunk_with_table(
    partitioner: Any,
    keys: Sequence[Any],
    choices_for: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Optional[np.ndarray]:
    """Shared chunk path of the first-sight-binding schemes.

    Factorises the chunk, fills a dense code->worker table from the
    scheme's routing dict (-1 = unbound), runs the binding kernel
    against the estimator's load vector, and writes fresh bindings
    back into the dict.  Returns None when the estimator is not
    vectorizable (caller falls back to the per-message loop).
    ``choices_for(unique_keys) -> (u, d)`` supplies per-key candidate
    rows; None means "all workers are candidates".
    """
    loads, mirror = vectorizable_loads(partitioner.estimator)
    if loads is None:
        return None
    codes, unique = factorize(keys)
    key_list = unique.tolist()
    table = np.empty(len(key_list), dtype=np.int64)
    lookup = partitioner.routing_table.get
    for u, key in enumerate(key_list):
        worker = lookup(key)
        table[u] = -1 if worker is None else worker
    unbound = table < 0
    choices = None
    if choices_for is not None:
        per_unique = choices_for(unique)
        choices = per_unique[codes]
    out = bind_route_chunk(codes, choices, partitioner.num_workers, table, loads)
    if mirror is not None:
        mirror.add_chunk(np.bincount(out, minlength=partitioner.num_workers))
    for u in np.flatnonzero(unbound).tolist():
        partitioner.routing_table[key_list[u]] = int(table[u])
    return out


@register(
    "on-greedy",
    aliases=("online-greedy",),
    description="online greedy: bind new keys to the least-loaded worker",
)
class OnlineGreedy(Partitioner):
    """Online greedy: new key -> currently least-loaded worker, fixed."""

    name = "On-Greedy"

    def __init__(
        self,
        num_workers: int,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
    ) -> None:
        super().__init__(num_workers)
        if estimator is None:
            registry = registry or WorkerLoadRegistry(num_workers)
            estimator = GlobalOracleEstimator(registry)
        self.estimator = estimator
        self.routing_table: Dict = {}
        self._all_workers = tuple(range(num_workers))

    def candidates(self, key: Any) -> Tuple[int, ...]:
        if key in self.routing_table:
            return (self.routing_table[key],)
        return self._all_workers

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.routing_table.get(key)
        if worker is None:
            worker = self.estimator.select(self._all_workers, now)
            self.routing_table[key] = worker
        self.estimator.on_send(worker, now)
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        # New keys bind to the least-loaded of *all* workers, so the
        # binding kernel runs with an open candidate set.
        out = _bind_chunk_with_table(self, keys)
        if out is None:
            return super().route_chunk(keys, timestamps)
        return out

    def memory_entries(self) -> int:
        return len(self.routing_table)

    def reset(self) -> None:
        self.routing_table.clear()
        self.estimator.reset()
        if isinstance(self.estimator, GlobalOracleEstimator):
            self.estimator.registry.reset()


@register(
    "off-greedy",
    aliases=("offline-greedy", "lpt"),
    description="offline LPT packing from the full frequency histogram",
)
class OfflineGreedy(Partitioner):
    """Offline greedy (LPT): requires the full key-frequency histogram.

    :meth:`fit` sorts keys by decreasing frequency and greedily packs
    them onto the least-loaded worker, the classic makespan heuristic.
    Routing then is a pure table lookup.  Keys never seen during fit
    fall back to the least *assigned-load* worker at first sight.
    """

    name = "Off-Greedy"

    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)
        self.routing_table: Dict = {}
        self._planned_load = np.zeros(num_workers, dtype=np.float64)
        self._fitted = False
        #: (table_len, sorted_keys, workers) chunk-lookup cache
        self._sorted_lookup: Optional[
            Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]
        ] = None

    def fit(self, frequencies: Mapping[Any, float]) -> "OfflineGreedy":
        """Plan the assignment from a ``{key: frequency}`` mapping."""
        self.routing_table.clear()
        self._sorted_lookup = None
        self._planned_load[:] = 0.0
        for key, freq in sorted(
            frequencies.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        ):
            worker = int(np.argmin(self._planned_load))
            self.routing_table[key] = worker
            self._planned_load[worker] += freq
        self._fitted = True
        return self

    @classmethod
    def from_stream(cls, keys: Sequence[Any], num_workers: int) -> "OfflineGreedy":
        """Fit directly from the key sequence that will be replayed."""
        arr = np.asarray(keys)
        freqs: Dict[Any, int]
        if np.issubdtype(arr.dtype, np.integer):
            counts = np.bincount(arr.astype(np.int64))
            freqs = {int(k): int(c) for k, c in enumerate(counts) if c > 0}
        else:
            freqs = {}
            for k in arr:
                freqs[k] = freqs.get(k, 0) + 1
        return cls(num_workers).fit(freqs)

    def candidates(self, key: Any) -> Tuple[int, ...]:
        if key in self.routing_table:
            return (self.routing_table[key],)
        return tuple(range(self.num_workers))

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.routing_table.get(key)
        if worker is None:
            worker = int(np.argmin(self._planned_load))
            self.routing_table[key] = worker
            self._planned_load[worker] += 1.0
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        keys_arr = np.asarray(keys)
        if self._fitted and keys_arr.size:
            # Pure sorted-table lookup when every key was planned during
            # fit; any unseen key falls back to the sequential
            # first-sight loop, whose bindings depend on arrival order.
            if (
                self._sorted_lookup is None
                or self._sorted_lookup[0] != len(self.routing_table)
            ):
                try:
                    table_keys = np.array(list(self.routing_table))
                    order = np.argsort(table_keys, kind="stable")
                    workers = np.fromiter(
                        self.routing_table.values(),
                        dtype=np.int64,
                        count=len(self.routing_table),
                    )
                    self._sorted_lookup = (
                        len(self.routing_table),
                        table_keys[order],
                        workers[order],
                    )
                except (TypeError, ValueError):  # unsortable/mixed key types
                    self._sorted_lookup = (len(self.routing_table), None, None)
            _, sorted_keys, sorted_workers = self._sorted_lookup
            if sorted_keys is not None and sorted_keys.dtype.kind == keys_arr.dtype.kind:
                idx = np.searchsorted(sorted_keys, keys_arr)
                idx_clipped = np.minimum(idx, sorted_keys.size - 1)
                if np.array_equal(sorted_keys[idx_clipped], keys_arr):
                    return sorted_workers[idx_clipped]
        return super().route_chunk(keys, timestamps)

    def memory_entries(self) -> int:
        return len(self.routing_table)

    def reset(self) -> None:
        self.routing_table.clear()
        self._sorted_lookup = None
        self._planned_load[:] = 0.0
        self._fitted = False
