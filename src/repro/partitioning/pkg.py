"""PARTIAL KEY GROUPING -- the paper's contribution.

PKG = power of two choices + *key splitting* + *local load estimation*:

* each key has d = 2 candidate workers, ``H1(k) mod W`` and
  ``H2(k) mod W``;
* every message is routed to whichever candidate is currently less
  loaded *according to this source's own estimate* -- the key may end up
  split across both candidates (key splitting), so no routing table or
  inter-source agreement is needed;
* the estimate is purely local by default (:class:`LocalLoadEstimator`)
  but any :class:`~repro.load.base.LoadEstimator` can be plugged in,
  giving the paper's G / L / LP variants.

This implements the Greedy-d scheme of Section IV for arbitrary d;
d = 2 is the paper's PKG (d > 2 "only brings constant factor
improvements", reproduced by ``benchmarks/bench_ablation_dchoices.py``).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import hashed_choices
from repro.core.engine import greedy_route_chunk
from repro.hashing import HashFamily
from repro.load.base import LoadEstimator, WorkerLoadRegistry, vectorizable_loads
from repro.load.local import LocalLoadEstimator
from repro.partitioning.base import Partitioner


@register(
    "pkg",
    aliases=("partial-key-grouping", "greedy-d"),
    params={"d": "num_choices"},
    description="PARTIAL KEY GROUPING (Greedy-d with key splitting)",
)
class PartialKeyGrouping(Partitioner):
    """Greedy-d stream partitioner with key splitting.

    Parameters
    ----------
    num_workers:
        Downstream parallelism W.
    num_choices:
        d, the number of hash choices per key (default 2 = PKG).
    hash_family:
        The d independent hash functions; built from ``seed`` if absent.
        Sources sharing an edge **must** share a family (same seed) so
        that a key's candidate set is consistent across sources.
    estimator:
        Load-estimation strategy.  Defaults to a fresh local estimator
        (the paper's practical configuration).
    registry:
        Convenience: when given and no estimator is supplied, the local
        estimator also mirrors sends into this ground-truth registry.
    """

    name = "PKG"

    def __init__(
        self,
        num_workers: int,
        num_choices: int = 2,
        hash_family: Optional[HashFamily] = None,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_workers)
        if hash_family is not None and len(hash_family) != num_choices:
            raise ValueError(
                f"hash family has {len(hash_family)} functions but "
                f"num_choices={num_choices}"
            )
        self.num_choices = int(num_choices)
        self.family = hash_family or HashFamily(size=num_choices, seed=seed)
        self.estimator = estimator or LocalLoadEstimator(num_workers, registry)

    def candidates(self, key: Any) -> Tuple[int, ...]:
        """The d candidate workers of ``key`` (duplicates preserved)."""
        return self.family.choices(key, self.num_workers)

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.estimator.select(self.candidates(key), now)
        self.estimator.on_send(worker, now)
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Route one chunk with hashing hoisted out of the loop.

        The d hash columns are precomputed for the whole chunk (fully
        vectorised for integer keys, once per *distinct* key
        otherwise); the remaining per-key work is an argmin over the d
        candidate loads, run by the Greedy-d chunk kernel when the
        estimator's state is a plain load vector.  Count-based
        estimators ignore ``now``, so the kernel path applies with or
        without timestamps; time-aware estimators (probing) take the
        per-message loop.
        """
        choices = hashed_choices(self.family, keys, self.num_workers)
        loads, mirror = vectorizable_loads(self.estimator)
        if loads is not None:
            out = greedy_route_chunk(choices, loads)
            if mirror is not None:
                mirror.add_chunk(np.bincount(out, minlength=self.num_workers))
            return out

        estimator = self.estimator
        m = choices.shape[0]
        out = np.empty(m, dtype=np.int64)
        choice_cols = [col.tolist() for col in choices.T]
        times = timestamps if timestamps is not None else np.zeros(m)
        for i in range(m):
            cands = tuple(col[i] for col in choice_cols)
            t = float(times[i])
            w = estimator.select(cands, t)
            estimator.on_send(w, t)
            out[i] = w
        return out

    def reset(self) -> None:
        self.estimator.reset()

    def __repr__(self) -> str:
        return (
            f"PartialKeyGrouping(num_workers={self.num_workers}, "
            f"num_choices={self.num_choices}, estimator={self.estimator!r})"
        )
