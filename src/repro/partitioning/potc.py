"""Static power of two choices (PoTC) *without* key splitting.

The strawman of Section III-A: to keep key-grouping semantics, the first
time a key appears it is bound to the lesser-loaded of its two hash
candidates, and the binding is remembered forever in a routing table.
This requires (a) one table entry per key -- impractical at stream
scale -- and (b) global agreement among sources; the paper shows it is
*also* much worse at balancing than PKG (Table II), because the binding
cannot adapt once the key's frequency is revealed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import hashed_choices
from repro.hashing import HashFamily
from repro.load.base import LoadEstimator, WorkerLoadRegistry
from repro.load.oracle import GlobalOracleEstimator
from repro.partitioning.base import Partitioner
from repro.partitioning.greedy import _bind_chunk_with_table


@register(
    "potc",
    aliases=("static-potc",),
    description="static power of two choices with a routing table",
)
class StaticPoTC(Partitioner):
    """PoTC applied to key grouping: first-sight binding of key to choice.

    Parameters
    ----------
    num_workers:
        Downstream parallelism W.
    estimator:
        Load view consulted at first sight of a key.  Defaults to a
        global oracle over a private registry (the most favourable
        setting for PoTC; it loses to PKG even so).
    """

    name = "PoTC"

    def __init__(
        self,
        num_workers: int,
        hash_family: Optional[HashFamily] = None,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_workers)
        self.family = hash_family or HashFamily(size=2, seed=seed)
        if estimator is None:
            registry = registry or WorkerLoadRegistry(num_workers)
            estimator = GlobalOracleEstimator(registry)
        self.estimator = estimator
        self.routing_table: Dict = {}

    def candidates(self, key: Any) -> Tuple[int, ...]:
        if key in self.routing_table:
            return (self.routing_table[key],)
        return self.family.choices(key, self.num_workers)

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.routing_table.get(key)
        if worker is None:
            worker = self.estimator.select(
                self.family.choices(key, self.num_workers), now
            )
            self.routing_table[key] = worker
        self.estimator.on_send(worker, now)
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        out = _bind_chunk_with_table(
            self,
            keys,
            choices_for=lambda unique: hashed_choices(
                self.family, unique, self.num_workers
            ),
        )
        if out is None:
            return super().route_chunk(keys, timestamps)
        return out

    def memory_entries(self) -> int:
        return len(self.routing_table)

    def reset(self) -> None:
        self.routing_table.clear()
        self.estimator.reset()
        if isinstance(self.estimator, GlobalOracleEstimator):
            self.estimator.registry.reset()
