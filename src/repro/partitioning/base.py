"""The stream partitioner interface.

A stream partitioning function ``Pt : K -> [W]`` (Section II) maps each
key to the worker responsible for processing the message carrying it,
possibly as a function of time (of everything routed so far).  One
partitioner instance embodies the routing state of one *source PEI* for
one edge of the DAG; sources sharing an edge use separate instances
built from the same hash family.

Routing has two granularities: :meth:`Partitioner.route` decides one
message (the DSPE event loop's per-tuple path) and
:meth:`Partitioner.route_chunk` decides a whole key window at once (the
chunked replay engine's path, see :mod:`repro.core.engine`).  The two
are decision-identical by contract; chunk implementations hoist hashing
out of the loop and vectorise whatever their state permits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Set, Tuple

import numpy as np


class Partitioner(ABC):
    """Routes message keys to workers ``0 .. num_workers - 1``.

    **Worker masking (failover).**  The runtime's reroute recovery
    removes dead workers from every scheme's effective candidate set
    via :meth:`mask_worker`: afterwards :meth:`remap_masked` rewrites
    any decision for a masked worker to its deterministic deputy
    (``alive[dead % len(alive)]``), and load-aware schemes additionally
    have their estimator poisoned (see
    :meth:`repro.load.base.LoadEstimator.mask_workers`) so they prefer
    survivors on their own.  The remap keeps the underlying routing
    state evolution untouched -- decisions are remapped *after* the
    scheme makes them -- so masking mid-stream never perturbs how
    unaffected messages route.  Masks survive :meth:`reset` (a dead
    worker stays dead for the rest of the run).
    """

    #: short display name used in experiment tables ("PKG", "H", ...)
    name: str = "base"

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        #: workers removed from service by reroute recovery.
        self._masked: Set[int] = set()
        #: dense worker -> worker remap (None while nothing is masked).
        self._mask_map: Optional[np.ndarray] = None

    @abstractmethod
    def route(self, key: Any, now: float = 0.0) -> int:
        """The worker that must handle the message with this ``key``.

        ``now`` is the message timestamp; only time-aware partitioners
        (probing PKG, rebalancing KG) use it.
        """

    def candidates(self, key: Any) -> Tuple[int, ...]:
        """The workers this key *may* be routed to.

        Key grouping returns a single worker; PKG returns its d hash
        choices; shuffle grouping may return every worker.  Used by
        stateful applications to know which workers hold a key's
        partial state (e.g. the 2-probe queries of Section VI-A).
        """
        return tuple(range(self.num_workers))

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Route one key chunk; returns int64 worker ids.

        Must produce exactly the assignments a per-message
        :meth:`route` replay would (the chunk equivalence contract,
        enforced for every registered scheme by the test suite).  The
        generic fallback loops over :meth:`route`, honouring
        ``timestamps`` entry-by-entry when given; subclasses override
        with vectorised versions (stateless schemes) or precomputed-
        hash chunk loops (stateful schemes).
        """
        keys = np.asarray(keys)
        m = int(keys.size)
        out = np.empty(m, dtype=np.int64)
        if timestamps is None:
            for i in range(m):
                out[i] = self.route(keys[i])
        else:
            if len(timestamps) != m:
                raise ValueError(
                    f"timestamps has {len(timestamps)} entries for {m} keys"
                )
            for i in range(m):
                out[i] = self.route(keys[i], float(timestamps[i]))
        return out

    def reset(self) -> None:
        """Clear any accumulated routing state (masks survive)."""

    # -- worker masking (reroute recovery) ----------------------------------

    @property
    def masked_workers(self) -> Tuple[int, ...]:
        """Workers currently masked out of service, ascending."""
        return tuple(sorted(self._masked))

    def mask_worker(self, worker: int) -> None:
        """Remove ``worker`` from the effective candidate set mid-stream.

        Rebuilds the deputy map over the surviving workers: every
        masked worker ``d`` forwards to ``alive[d % len(alive)]``, a
        deterministic spread so two dead workers don't pile onto one
        survivor.  Raises when masking would leave no worker alive.
        Idempotent per worker.
        """
        worker = int(worker)
        if not 0 <= worker < self.num_workers:
            raise ValueError(
                f"worker must be in [0, {self.num_workers}), got {worker}"
            )
        if worker in self._masked:
            return
        alive = [
            w
            for w in range(self.num_workers)
            if w != worker and w not in self._masked
        ]
        if not alive:
            raise RuntimeError(
                f"cannot mask worker {worker}: no workers would remain"
            )
        self._masked.add(worker)
        mask_map = np.arange(self.num_workers, dtype=np.int64)
        for dead in self._masked:
            mask_map[dead] = alive[dead % len(alive)]
        self._mask_map = mask_map
        self._on_mask()

    def remap_masked(self, assignments: np.ndarray) -> np.ndarray:
        """Rewrite masked workers in routed ``assignments`` to deputies.

        The identity gather when nothing is masked; the engine applies
        this to every routed chunk, which is what makes reroute
        recovery correct for *every* scheme regardless of whether its
        internals know about the mask.
        """
        if self._mask_map is None:
            return assignments
        return self._mask_map[assignments]

    def remap_worker(self, worker: int) -> int:
        """The live deputy for ``worker`` (itself when not masked)."""
        if self._mask_map is None:
            return int(worker)
        return int(self._mask_map[worker])

    def _on_mask(self) -> None:
        """Hook run after the mask changes; default poisons estimators.

        Schemes carrying a ``self.estimator`` load vector get it
        poisoned so d-choice draws avoid dead workers on their own;
        schemes without one are covered by :meth:`remap_masked` alone.
        Subclasses with other maskable state (rebalance targets,
        routing tables) may extend this.
        """
        from repro.load.base import LoadEstimator

        estimator = getattr(self, "estimator", None)
        if isinstance(estimator, LoadEstimator):
            estimator.mask_workers(self.masked_workers)

    def memory_entries(self) -> int:
        """Routing-table entries this partitioner must store.

        The paper's practicality argument (Sections II-B, III-A): any
        scheme that remembers a per-key choice needs a routing table
        with one entry per key, which is prohibitive at billions of
        keys.  KG/SG/PKG return 0; static PoTC and the greedy baselines
        return the number of keys seen.
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"
