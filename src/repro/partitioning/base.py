"""The stream partitioner interface.

A stream partitioning function ``Pt : K -> [W]`` (Section II) maps each
key to the worker responsible for processing the message carrying it,
possibly as a function of time (of everything routed so far).  One
partitioner instance embodies the routing state of one *source PEI* for
one edge of the DAG; sources sharing an edge use separate instances
built from the same hash family.

Routing has two granularities: :meth:`Partitioner.route` decides one
message (the DSPE event loop's per-tuple path) and
:meth:`Partitioner.route_chunk` decides a whole key window at once (the
chunked replay engine's path, see :mod:`repro.core.engine`).  The two
are decision-identical by contract; chunk implementations hoist hashing
out of the loop and vectorise whatever their state permits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Tuple

import numpy as np


class Partitioner(ABC):
    """Routes message keys to workers ``0 .. num_workers - 1``."""

    #: short display name used in experiment tables ("PKG", "H", ...)
    name: str = "base"

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)

    @abstractmethod
    def route(self, key: Any, now: float = 0.0) -> int:
        """The worker that must handle the message with this ``key``.

        ``now`` is the message timestamp; only time-aware partitioners
        (probing PKG, rebalancing KG) use it.
        """

    def candidates(self, key: Any) -> Tuple[int, ...]:
        """The workers this key *may* be routed to.

        Key grouping returns a single worker; PKG returns its d hash
        choices; shuffle grouping may return every worker.  Used by
        stateful applications to know which workers hold a key's
        partial state (e.g. the 2-probe queries of Section VI-A).
        """
        return tuple(range(self.num_workers))

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Route one key chunk; returns int64 worker ids.

        Must produce exactly the assignments a per-message
        :meth:`route` replay would (the chunk equivalence contract,
        enforced for every registered scheme by the test suite).  The
        generic fallback loops over :meth:`route`, honouring
        ``timestamps`` entry-by-entry when given; subclasses override
        with vectorised versions (stateless schemes) or precomputed-
        hash chunk loops (stateful schemes).
        """
        keys = np.asarray(keys)
        m = int(keys.size)
        out = np.empty(m, dtype=np.int64)
        if timestamps is None:
            for i in range(m):
                out[i] = self.route(keys[i])
        else:
            if len(timestamps) != m:
                raise ValueError(
                    f"timestamps has {len(timestamps)} entries for {m} keys"
                )
            for i in range(m):
                out[i] = self.route(keys[i], float(timestamps[i]))
        return out

    def reset(self) -> None:
        """Clear any accumulated routing state."""

    def memory_entries(self) -> int:
        """Routing-table entries this partitioner must store.

        The paper's practicality argument (Sections II-B, III-A): any
        scheme that remembers a per-key choice needs a routing table
        with one entry per key, which is prohibitive at billions of
        keys.  KG/SG/PKG return 0; static PoTC and the greedy baselines
        return the number of keys seen.
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_workers={self.num_workers})"
