"""Shuffle grouping (SG): round-robin routing.

Balances load nearly perfectly (imbalance at most one message per
source) but makes no guarantee about which worker sees a key, so
stateful operators must keep partial state for every key on every
worker: memory O(W*K) and W-1 aggregations per key (Section II-A).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.api.registry import register
from repro.partitioning.base import Partitioner


@register(
    "sg",
    aliases=("shuffle", "round-robin"),
    description="round-robin shuffle grouping",
)
class ShuffleGrouping(Partitioner):
    """Cyclic round-robin partitioner.

    ``offset`` staggers the starting worker so that multiple sources
    do not all hit worker 0 first.
    """

    name = "SG"

    def __init__(self, num_workers: int, offset: int = 0) -> None:
        super().__init__(num_workers)
        self._next = int(offset) % num_workers

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self._next
        self._next = (worker + 1) % self.num_workers
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        m = len(keys)
        start = self._next
        out = (np.arange(start, start + m, dtype=np.int64)) % self.num_workers
        self._next = int((start + m) % self.num_workers)
        return out

    def reset(self) -> None:
        self._next = 0
