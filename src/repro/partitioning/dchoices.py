"""The d -> n limit of the Greedy-d process: least-loaded routing.

Section IV observes that "when d >> n ln n, all n bins are valid
choices, and we obtain shuffle grouping".  This partitioner routes every
message to the globally least-loaded worker regardless of key -- the
degenerate end of the choice spectrum, used by the d-choices ablation
to anchor the curve, and equivalent to shuffle grouping in balance while
destroying all key locality.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.api.registry import register
from repro.core.engine import least_loaded_chunk
from repro.load.base import LoadEstimator, WorkerLoadRegistry, vectorizable_loads
from repro.load.local import LocalLoadEstimator
from repro.partitioning.base import Partitioner


@register(
    "least-loaded",
    aliases=("ll",),
    description="route to the globally least-loaded worker (d = W limit)",
)
class LeastLoaded(Partitioner):
    """Route each message to the least-loaded worker (d = W choices)."""

    name = "least-loaded"

    def __init__(
        self,
        num_workers: int,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
    ) -> None:
        super().__init__(num_workers)
        self.estimator = estimator or LocalLoadEstimator(num_workers, registry)
        self._all_workers = tuple(range(num_workers))

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.estimator.select(self._all_workers, now)
        self.estimator.on_send(worker, now)
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        loads, mirror = vectorizable_loads(self.estimator)
        if loads is not None:
            out = least_loaded_chunk(len(keys), loads)
            if mirror is not None:
                mirror.add_chunk(np.bincount(out, minlength=self.num_workers))
            return out
        out = np.empty(len(keys), dtype=np.int64)
        times = timestamps if timestamps is not None else np.zeros(len(keys))
        for i in range(len(keys)):
            t = float(times[i])
            w = self.estimator.select(self._all_workers, t)
            self.estimator.on_send(w, t)
            out[i] = w
        return out

    def reset(self) -> None:
        self.estimator.reset()
