"""Consistent-hashing partitioners (Section VII extension).

The paper notes that the two PKG replicas could equally be chosen with
consistent hashing, "using the replication technique used by Chord":
hash workers onto a ring, hash the key, and take the next d distinct
workers clockwise.  The payoff is elasticity -- adding or removing a
worker relocates only the keys in its arc -- while preserving PKG's
two-choice load balancing.

This module implements:

* :class:`HashRing` -- a ring with virtual nodes;
* :class:`ConsistentKeyGrouping` -- single-choice key grouping on the
  ring (the classic distributed-cache baseline);
* :class:`ConsistentPartialKeyGrouping` -- PKG whose candidates are the
  d successor workers on the ring (Chord-style replicas).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import factorize
from repro.core.engine import greedy_route_chunk
from repro.hashing import HashFunction
from repro.load.base import LoadEstimator, WorkerLoadRegistry, vectorizable_loads
from repro.load.local import LocalLoadEstimator
from repro.partitioning.base import Partitioner


class HashRing:
    """A consistent-hash ring of workers with virtual nodes.

    Parameters
    ----------
    num_workers:
        Workers ``0 .. num_workers-1`` placed on the ring.
    virtual_nodes:
        Ring points per worker; more points smooth the arc sizes.
    seed:
        Seeds both the worker-placement and the key hash.
    """

    def __init__(self, num_workers: int, virtual_nodes: int = 64, seed: int = 0) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.num_workers = int(num_workers)
        self.virtual_nodes = int(virtual_nodes)
        self.seed = int(seed)
        self._key_hash = HashFunction(seed ^ 0xC0FFEE)
        self._points: List[int] = []
        self._owners: List[int] = []
        self._members: Set[int] = set()
        # Lazily built lookup tables (see _points_table/_successor_table);
        # any membership change invalidates them.
        self._points_arr: Optional[np.ndarray] = None
        self._succ_tables: Dict[int, np.ndarray] = {}
        for worker in range(num_workers):
            self.add_worker(worker)

    def _worker_points(self, worker: int) -> List[int]:
        return [
            HashFunction(self.seed ^ (v + 1))((worker << 20) | 0xA5)
            for v in range(self.virtual_nodes)
        ]

    def add_worker(self, worker: int) -> None:
        """Place (or re-place) a worker's virtual nodes on the ring."""
        if worker in self._members:
            return
        self._members.add(worker)
        for point in self._worker_points(worker):
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, worker)
        self._invalidate()

    def remove_worker(self, worker: int) -> None:
        """Remove a worker; its arcs fall to the next ring successors."""
        if worker not in self._members:
            raise KeyError(f"worker {worker} is not on the ring")
        self._members.discard(worker)
        keep = [
            (p, w)
            for p, w in zip(self._points, self._owners)
            if w != worker
        ]
        self._points = [p for p, _ in keep]
        self._owners = [w for _, w in keep]
        self._invalidate()

    @property
    def workers(self) -> Set[int]:
        return set(self._members)

    # -- precomputed lookup tables ------------------------------------

    def _invalidate(self) -> None:
        self._points_arr = None
        self._succ_tables.clear()

    def _points_table(self) -> np.ndarray:
        """The sorted ring points as a numpy array."""
        if self._points_arr is None:
            self._points_arr = np.array(self._points, dtype=np.uint64)
        return self._points_arr

    def _successor_table(self, width: int) -> np.ndarray:
        """``table[i]``: first ``width`` distinct owners clockwise of
        ring position ``i`` -- one walk per *position*, so lookups are a
        searchsorted plus a row gather instead of a walk per key."""
        table = self._succ_tables.get(width)
        if table is None:
            owners = self._owners
            num_points = len(owners)
            table = np.empty((num_points, width), dtype=np.int64)
            for i in range(num_points):
                out: List[int] = []
                seen = set()
                j = i
                while len(out) < width:
                    owner = owners[j]
                    if owner not in seen:
                        seen.add(owner)
                        out.append(owner)
                    j += 1
                    if j == num_points:
                        j = 0
                table[i] = out
            self._succ_tables[width] = table
        return table

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Ring position of each key (vectorized ``bisect_right``)."""
        points = self._points_table()
        keys = np.asarray(keys)
        if np.issubdtype(keys.dtype, np.integer):
            hashes = self._key_hash.hash_array(keys)
        else:
            hashes = np.fromiter(
                (self._key_hash(key) for key in keys.tolist()),
                dtype=np.uint64,
                count=keys.size,
            )
        return np.searchsorted(points, hashes, side="right") % points.size

    def successor_matrix(self, keys: Sequence[Any], count: int = 1) -> np.ndarray:
        """Ring successors of each key, as an ``(n, count')`` matrix.

        ``count'`` may be smaller than ``count`` when the ring has
        fewer members (:meth:`successors` truncates identically per
        key).  Row ``i`` equals ``self.successors(keys[i], count)``.
        """
        if not self._points:
            raise RuntimeError("ring has no workers")
        width = min(count, len(self._members))
        table = self._successor_table(width)
        return table[self._positions(keys)]

    def successors(self, key: Any, count: int = 1) -> Tuple[int, ...]:
        """The first ``count`` *distinct* workers clockwise of the key."""
        if not self._points:
            raise RuntimeError("ring has no workers")
        width = min(count, len(self._members))
        table = self._successor_table(width)
        h = self._key_hash(key)
        idx = bisect.bisect_right(self._points, h) % len(self._points)
        return tuple(int(w) for w in table[idx])


@register(
    "ch",
    aliases=("consistent", "ch-kg"),
    params={"vnodes": "virtual_nodes"},
    description="single-choice key grouping on a consistent-hash ring",
)
class ConsistentKeyGrouping(Partitioner):
    """Single-choice key grouping over a consistent-hash ring."""

    name = "CH"

    def __init__(
        self,
        num_workers: int,
        virtual_nodes: int = 64,
        seed: int = 0,
        ring: Optional[HashRing] = None,
    ) -> None:
        super().__init__(num_workers)
        self.ring = ring or HashRing(num_workers, virtual_nodes, seed)

    def route(self, key: Any, now: float = 0.0) -> int:
        return self.ring.successors(key, 1)[0]

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        # Stateless: one ring lookup per distinct key, gathered back.
        codes, unique = factorize(keys)
        return self.ring.successor_matrix(unique, 1)[:, 0][codes]

    def candidates(self, key: Any) -> Tuple[int, ...]:
        return self.ring.successors(key, 1)


@register(
    "ch-pkg",
    aliases=("consistent-pkg", "ring-pkg"),
    params={"d": "num_choices", "vnodes": "virtual_nodes"},
    description="PKG whose candidates are Chord-style ring successors",
)
class ConsistentPartialKeyGrouping(Partitioner):
    """PKG whose two candidates are Chord-style ring successors.

    Same key-splitting and local-load-estimation behaviour as
    :class:`~repro.partitioning.pkg.PartialKeyGrouping`, but candidate
    sets move minimally when the worker set changes: on
    :meth:`add_worker` / :meth:`remove_worker` only keys whose arc is
    touched change candidates, instead of rehashing the world.
    """

    name = "CH-PKG"

    def __init__(
        self,
        num_workers: int,
        num_choices: int = 2,
        virtual_nodes: int = 64,
        seed: int = 0,
        estimator: Optional[LoadEstimator] = None,
        registry: Optional[WorkerLoadRegistry] = None,
        ring: Optional[HashRing] = None,
    ) -> None:
        super().__init__(num_workers)
        if num_choices < 1:
            raise ValueError(f"num_choices must be >= 1, got {num_choices}")
        self.num_choices = int(num_choices)
        self.ring = ring or HashRing(num_workers, virtual_nodes, seed)
        self.estimator = estimator or LocalLoadEstimator(num_workers, registry)

    def candidates(self, key: Any) -> Tuple[int, ...]:
        return self.ring.successors(key, self.num_choices)

    def route(self, key: Any, now: float = 0.0) -> int:
        worker = self.estimator.select(self.candidates(key), now)
        self.estimator.on_send(worker, now)
        return worker

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        loads, mirror = vectorizable_loads(self.estimator)
        if loads is None:
            return super().route_chunk(keys, timestamps)
        # Ring successors once per distinct key, then the Greedy-d
        # chunk kernel over the gathered candidate matrix.
        codes, unique = factorize(keys)
        choices = self.ring.successor_matrix(unique, self.num_choices)[codes]
        out = greedy_route_chunk(choices, loads)
        if mirror is not None:
            mirror.add_chunk(np.bincount(out, minlength=self.num_workers))
        return out

    def add_worker(self, worker: int) -> None:
        """Elastically grow the worker set (new arcs only)."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(
                f"worker {worker} outside the estimator's range "
                f"[0, {self.num_workers}); construct with capacity first"
            )
        self.ring.add_worker(worker)

    def remove_worker(self, worker: int) -> None:
        """Elastically shrink the worker set."""
        self.ring.remove_worker(worker)

    def reset(self) -> None:
        self.estimator.reset()


def relocation_fraction(
    ring_before: HashRing, ring_after: HashRing, keys: Iterable[Any], count: int = 1
) -> float:
    """Fraction of keys whose candidate set changed between two rings.

    The consistent-hashing selling point: adding one of n workers should
    relocate ~1/n of the keys, not all of them.
    """
    keys = list(keys)
    if not keys:
        return 0.0
    moved = sum(
        1
        for k in keys
        if ring_before.successors(k, count) != ring_after.successors(k, count)
    )
    return moved / len(keys)
