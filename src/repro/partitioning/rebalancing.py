"""Key grouping with rebalancing: the operator-migration baseline.

Section II-B discusses the "common solution" of migrating keys (and
their state) away from overloaded workers once imbalance is detected,
and argues it is impractical for DSPEs: it needs imbalance-checking and
rebalancing parameters, explicit routing tables, and coordinated
migration of state.  We implement it anyway, both as a baseline and to
*account for its costs*: every migration is charged with the size of
the state moved, so experiments can weigh imbalance gained against
migration traffic paid.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import as_key_array, hashed_buckets
from repro.hashing import HashFamily, HashFunction
from repro.partitioning.base import Partitioner


@register(
    "kg-rebalance",
    aliases=("rebalance", "flux"),
    params={
        "interval": "check_interval",
        "threshold": "imbalance_threshold",
        "migrations": "max_migrations_per_rebalance",
    },
    description="key grouping with Flux-style periodic key migration",
)
class RebalancingKeyGrouping(Partitioner):
    """KG plus periodic migration of the hottest keys.

    Per-key state (message counts and current owners) lives in slot
    arrays indexed by a key->slot dict, allocated in first-seen order.
    That representation makes both halves of the scheme chunk-fast:
    routing an epoch is a gather through the slot table, and a
    rebalancing round is a vectorized scan of the donor's slots instead
    of a Python sweep over a per-key dict -- while remaining
    decision-identical to per-message routing (the tie-break order of
    equal-count keys *is* the slot order, exactly as dict insertion
    order tie-broke the old sweep).

    Parameters
    ----------
    num_workers:
        Downstream parallelism W.
    check_interval:
        Check for imbalance every this many routed messages.
    imbalance_threshold:
        Trigger a rebalance when ``I(t) / avg(L)`` exceeds this ratio.
    max_migrations_per_rebalance:
        How many keys may move per rebalancing round.
    """

    name = "KG-rebalance"

    def __init__(
        self,
        num_workers: int,
        check_interval: int = 10_000,
        imbalance_threshold: float = 0.2,
        max_migrations_per_rebalance: int = 8,
        hash_function: Optional[HashFunction] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_workers)
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        if imbalance_threshold < 0:
            raise ValueError("imbalance_threshold must be non-negative")
        self._hash = hash_function or HashFamily(size=1, seed=seed)[0]
        self.check_interval = int(check_interval)
        self.imbalance_threshold = float(imbalance_threshold)
        self.max_migrations = int(max_migrations_per_rebalance)

        self.overrides: Dict = {}          # key -> migrated worker
        self.loads = np.zeros(num_workers, dtype=np.int64)
        self._since_check = 0

        # Per-key slot state, in first-seen order: _slot maps key ->
        # index into _counts (messages seen = the key's state size) and
        # _owners (current worker: its hash home, or its override).
        self._slot: Dict = {}
        self._slot_keys: List = []
        self._counts = np.zeros(1024, dtype=np.int64)
        self._owners = np.zeros(1024, dtype=np.int64)

        # Sorted lookup table over known keys for the chunk path: the
        # key->slot dict, re-materialized as parallel sorted arrays so a
        # chunk's distinct keys resolve with one searchsorted instead of
        # one dict probe each.  Rebuilt lazily whenever the per-message
        # path allocated behind its back (size mismatch).
        self._table_keys = np.empty(0, dtype=np.int64)
        self._table_slots = np.empty(0, dtype=np.int64)

        #: number of rebalancing rounds triggered
        self.rebalances = 0
        #: total key->worker moves performed
        self.migrations = 0
        #: total state migrated, in messages (the migration cost the
        #: paper warns about: proportional to the state of moved keys)
        self.migrated_state = 0

    @property
    def key_counts(self) -> Dict:
        """Messages seen per key (a snapshot of the slot arrays)."""
        n = len(self._slot_keys)
        return dict(zip(self._slot_keys, self._counts[:n].tolist()))

    def _home(self, key: Any) -> int:
        return self._hash(key) % self.num_workers

    def _ensure_capacity(self, n: int) -> None:
        capacity = self._counts.size
        if n <= capacity:
            return
        grow = max(n, 2 * capacity) - capacity
        self._counts = np.concatenate(
            [self._counts, np.zeros(grow, dtype=np.int64)]
        )
        self._owners = np.concatenate(
            [self._owners, np.zeros(grow, dtype=np.int64)]
        )

    def _allocate(self, key: Any, home: int) -> int:
        slot = len(self._slot_keys)
        self._ensure_capacity(slot + 1)
        self._slot[key] = slot
        self._slot_keys.append(key)
        self._counts[slot] = 0
        self._owners[slot] = home
        return slot

    def route(self, key: Any, now: float = 0.0) -> int:
        slot = self._slot.get(key)
        if slot is None:
            slot = self._allocate(key, self._home(key))
        worker = int(self._owners[slot])
        self.loads[worker] += 1
        self._counts[slot] += 1
        self._since_check += 1
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self._maybe_rebalance()
        return worker

    def candidates(self, key: Any) -> Tuple[int, ...]:
        worker = self.overrides.get(key)
        return (worker if worker is not None else self._home(key),)

    def _chunk_slots(self, unique: np.ndarray, first_idx: np.ndarray) -> np.ndarray:
        """Slot of every distinct chunk key, allocating unseen ones.

        New keys are allocated in first-appearance order, so slot order
        keeps matching the order a per-message replay would have first
        routed them in (the migration round's tie-break).  Keys a
        rebalance has not yet counted stay invisible to it: their count
        is still zero.
        """
        if self._table_keys.size != len(self._slot_keys):
            self._rebuild_table()
        table_keys, table_slots = self._table_keys, self._table_slots
        if table_keys.size:
            pos = np.minimum(
                np.searchsorted(table_keys, unique), table_keys.size - 1
            )
            found = table_keys[pos] == unique
            slots = np.where(found, table_slots[pos], -1)
        else:
            slots = np.full(unique.size, -1, dtype=np.int64)
        new = np.flatnonzero(slots < 0)
        if new.size:
            new = new[np.argsort(first_idx[new])]
            homes = hashed_buckets(self._hash, unique[new], self.num_workers)
            base = len(self._slot_keys)
            self._ensure_capacity(base + new.size)
            new_slots = np.arange(base, base + new.size, dtype=np.int64)
            self._counts[new_slots] = 0
            self._owners[new_slots] = homes
            new_keys = unique[new].tolist()
            self._slot.update(zip(new_keys, new_slots.tolist()))
            self._slot_keys.extend(new_keys)
            slots[new] = new_slots
            if table_keys.size:
                merged_keys = np.concatenate([table_keys, unique[new]])
                merged_slots = np.concatenate([table_slots, new_slots])
            else:
                merged_keys, merged_slots = unique[new], new_slots
            order = np.argsort(merged_keys)
            self._table_keys = merged_keys[order]
            self._table_slots = merged_slots[order]
        return slots

    def _rebuild_table(self) -> None:
        keys = np.asarray(self._slot_keys)
        order = np.argsort(keys)
        self._table_keys = keys[order]
        self._table_slots = order.astype(np.int64, copy=False)

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Route-with-epochs kernel: vectorize between checkpoints.

        Between two rebalance checkpoints the routing function is
        *frozen* -- per-message state updates (loads, key counts) feed
        only the next checkpoint's decision, never the current epoch's
        routing.  So the chunk is processed as whole epochs: gather the
        per-unique owner table through the code array, bulk-update
        loads and counts via bincount, and only at a checkpoint run the
        same ``_maybe_rebalance`` the per-message path runs (regathering
        the owner table iff keys actually migrated).
        """
        arr = as_key_array(keys)
        m = int(arr.size)
        if m == 0:
            return np.empty(0, dtype=np.int64)
        unique, first_idx, codes = np.unique(
            arr, return_index=True, return_inverse=True
        )
        codes = codes.astype(np.int64, copy=False).reshape(-1)
        slots_u = self._chunk_slots(unique, first_idx)
        worker_u = self._owners[slots_u]

        out = np.empty(m, dtype=np.int64)
        start = 0
        while start < m:
            stop = min(m, start + self.check_interval - self._since_check)
            segment = codes[start:stop]
            segment_workers = worker_u[segment]
            out[start:stop] = segment_workers
            self.loads += np.bincount(segment_workers, minlength=self.num_workers)
            # slots_u entries are distinct, so fancy-index += is exact.
            self._counts[slots_u] += np.bincount(segment, minlength=slots_u.size)
            self._since_check += stop - start
            start = stop
            if self._since_check >= self.check_interval:
                self._since_check = 0
                migrations = self.migrations
                self._maybe_rebalance()
                if self.migrations != migrations:
                    worker_u = self._owners[slots_u]
        return out

    def _maybe_rebalance(self) -> None:
        avg = self.loads.mean()
        if avg <= 0:
            return
        imbalance = (self.loads.max() - avg) / avg
        if imbalance <= self.imbalance_threshold:
            return
        self.rebalances += 1

        # Move the hottest keys of the most loaded worker to the least
        # loaded one, Flux-style, paying their state size as cost.
        donor = int(np.argmax(self.loads))
        receiver = int(np.argmin(self.loads))
        if donor == receiver:
            return
        n = len(self._slot_keys)
        counts = self._counts[:n]
        candidates = np.flatnonzero(
            (self._owners[:n] == donor) & (counts > 0)
        )
        if candidates.size == 0:
            return
        # Hottest first; stable argsort keeps slot (= first-seen) order
        # among equal counts.  A key moves only if it does not overshoot
        # (2*count <= donor-receiver gap); skipped keys stay skipped
        # because the gap only shrinks, so a monotone searchsorted walk
        # over the descending counts replaces the per-key sweep.
        order = candidates[np.argsort(-counts[candidates], kind="stable")]
        weight = 2 * counts[order]  # descending; -weight is ascending
        moved = 0
        position = 0
        while moved < self.max_migrations and position < order.size:
            gap = int(self.loads[donor]) - int(self.loads[receiver])
            position = max(
                position, int(np.searchsorted(-weight, -gap, side="left"))
            )
            if position >= order.size:
                break
            slot = int(order[position])
            count = int(counts[slot])
            key = self._slot_keys[slot]
            self.overrides[key] = receiver
            self._owners[slot] = receiver
            self.loads[donor] -= count
            self.loads[receiver] += count
            self.migrations += 1
            self.migrated_state += count
            moved += 1
            position += 1

    def memory_entries(self) -> int:
        # The migration mechanism must track per-key counts *and* the
        # override table -- exactly the staggering memory requirement
        # Section II-B objects to.
        return len(self._slot) + len(self.overrides)

    def reset(self) -> None:
        self.overrides.clear()
        self.loads[:] = 0
        self._since_check = 0
        self._slot.clear()
        self._slot_keys.clear()
        self._counts = np.zeros(1024, dtype=np.int64)
        self._owners = np.zeros(1024, dtype=np.int64)
        self._table_keys = np.empty(0, dtype=np.int64)
        self._table_slots = np.empty(0, dtype=np.int64)
        self.rebalances = self.migrations = self.migrated_state = 0
