"""Key grouping with rebalancing: the operator-migration baseline.

Section II-B discusses the "common solution" of migrating keys (and
their state) away from overloaded workers once imbalance is detected,
and argues it is impractical for DSPEs: it needs imbalance-checking and
rebalancing parameters, explicit routing tables, and coordinated
migration of state.  We implement it anyway, both as a baseline and to
*account for its costs*: every migration is charged with the size of
the state moved, so experiments can weigh imbalance gained against
migration traffic paid.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.chunks import as_key_array, hashed_buckets
from repro.hashing import HashFamily, HashFunction
from repro.partitioning.base import Partitioner


@register(
    "kg-rebalance",
    aliases=("rebalance", "flux"),
    params={
        "interval": "check_interval",
        "threshold": "imbalance_threshold",
        "migrations": "max_migrations_per_rebalance",
    },
    description="key grouping with Flux-style periodic key migration",
)
class RebalancingKeyGrouping(Partitioner):
    """KG plus periodic migration of the hottest keys.

    Parameters
    ----------
    num_workers:
        Downstream parallelism W.
    check_interval:
        Check for imbalance every this many routed messages.
    imbalance_threshold:
        Trigger a rebalance when ``I(t) / avg(L)`` exceeds this ratio.
    max_migrations_per_rebalance:
        How many keys may move per rebalancing round.
    """

    name = "KG-rebalance"

    def __init__(
        self,
        num_workers: int,
        check_interval: int = 10_000,
        imbalance_threshold: float = 0.2,
        max_migrations_per_rebalance: int = 8,
        hash_function: Optional[HashFunction] = None,
        seed: int = 0,
    ):
        super().__init__(num_workers)
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        if imbalance_threshold < 0:
            raise ValueError("imbalance_threshold must be non-negative")
        self._hash = hash_function or HashFamily(size=1, seed=seed)[0]
        self.check_interval = int(check_interval)
        self.imbalance_threshold = float(imbalance_threshold)
        self.max_migrations = int(max_migrations_per_rebalance)

        self.overrides: Dict = {}          # key -> migrated worker
        self.key_counts: Dict = {}         # key -> messages seen (its state size)
        self.loads = np.zeros(num_workers, dtype=np.int64)
        self._since_check = 0

        #: number of rebalancing rounds triggered
        self.rebalances = 0
        #: total key->worker moves performed
        self.migrations = 0
        #: total state migrated, in messages (the migration cost the
        #: paper warns about: proportional to the state of moved keys)
        self.migrated_state = 0

    def _home(self, key) -> int:
        return self._hash(key) % self.num_workers

    def route(self, key, now: float = 0.0) -> int:
        worker = self.overrides.get(key)
        if worker is None:
            worker = self._home(key)
        self.loads[worker] += 1
        self.key_counts[key] = self.key_counts.get(key, 0) + 1
        self._since_check += 1
        if self._since_check >= self.check_interval:
            self._since_check = 0
            self._maybe_rebalance()
        return worker

    def candidates(self, key) -> Tuple[int, ...]:
        worker = self.overrides.get(key)
        return (worker if worker is not None else self._home(key),)

    def route_chunk(
        self, keys: Sequence, timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Chunk loop with home hashing hoisted out.

        Loads are mirrored in a plain list between rebalance checks and
        synced back to the numpy vector whenever ``_maybe_rebalance``
        runs (it reads *and* migrates ``self.loads``), so decisions and
        migration rounds match the per-message path exactly.
        """
        arr = as_key_array(keys)
        homes = hashed_buckets(self._hash, arr, self.num_workers).tolist()
        key_list = arr.tolist()
        out = np.empty(len(key_list), dtype=np.int64)
        overrides, key_counts = self.overrides, self.key_counts
        load_list = self.loads.tolist()
        since, interval = self._since_check, self.check_interval
        for i, key in enumerate(key_list):
            worker = overrides.get(key)
            if worker is None:
                worker = homes[i]
            load_list[worker] += 1
            key_counts[key] = key_counts.get(key, 0) + 1
            since += 1
            if since >= interval:
                since = 0
                self.loads[:] = load_list
                self._maybe_rebalance()
                load_list = self.loads.tolist()
            out[i] = worker
        self.loads[:] = load_list
        self._since_check = since
        return out

    def _maybe_rebalance(self) -> None:
        avg = self.loads.mean()
        if avg <= 0:
            return
        imbalance = (self.loads.max() - avg) / avg
        if imbalance <= self.imbalance_threshold:
            return
        self.rebalances += 1

        # Move the hottest keys of the most loaded worker to the least
        # loaded one, Flux-style, paying their state size as cost.
        donor = int(np.argmax(self.loads))
        receiver = int(np.argmin(self.loads))
        if donor == receiver:
            return
        donor_keys = [
            (count, key)
            for key, count in self.key_counts.items()
            if (self.overrides.get(key, self._home(key))) == donor
        ]
        donor_keys.sort(key=lambda ck: -ck[0])
        moved = 0
        for count, key in donor_keys:
            if moved >= self.max_migrations:
                break
            if self.loads[donor] - count < self.loads[receiver] + count:
                # Moving this key would overshoot; try a lighter one.
                continue
            self.overrides[key] = receiver
            self.loads[donor] -= count
            self.loads[receiver] += count
            self.migrations += 1
            self.migrated_state += count
            moved += 1

    def memory_entries(self) -> int:
        # The migration mechanism must track per-key counts *and* the
        # override table -- exactly the staggering memory requirement
        # Section II-B objects to.
        return len(self.key_counts) + len(self.overrides)

    def reset(self) -> None:
        self.overrides.clear()
        self.key_counts.clear()
        self.loads[:] = 0
        self._since_check = 0
        self.rebalances = self.migrations = self.migrated_state = 0
