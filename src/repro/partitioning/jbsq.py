"""JBSQ: join the shortest of d sampled queues, with bounded depth.

The queue-depth-aware baseline for the latency evaluation
(:mod:`repro.queueing`): each *message* (not key) samples d candidate
workers and joins the one with the fewest outstanding messages,
mirroring the join-bounded-shortest-queue dispatch of microsecond-scale
RPC schedulers.  Unlike PKG the candidates are per-message, so JBSQ is
key-agnostic (it scatters keys like shuffle grouping) but sees actual
queue depth rather than cumulative send counts -- the interesting
contrast: what does knowing the instantaneous backlog buy over PKG's
local estimate, and what does it cost in key locality?

Outstanding work is tracked with explicit departure feedback: the
queueing simulator calls :meth:`JoinBoundedShortestQueue.on_complete`
at every departure (and drop).  In a pure replay -- no completion
events -- the counters never decrease, and JBSQ degenerates to
least-loaded-of-d-random, which keeps :meth:`route` and
:meth:`route_chunk` decision-identical by construction.

Candidate sampling is deterministic without an RNG: the message
*counter* is hashed through the same :class:`~repro.hashing.HashFamily`
machinery every other scheme uses (REPRO001 -- no unseeded randomness,
and a run is a pure function of the seed).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register
from repro.core.engine import greedy_route_chunk
from repro.hashing import HashFamily
from repro.partitioning.base import Partitioner


@register(
    "jbsq",
    aliases=("join-bounded-shortest-queue", "shortest-queue-d"),
    params={"d": "num_choices"},
    description="Join the shortest of d sampled queues (depth feedback)",
)
class JoinBoundedShortestQueue(Partitioner):
    """Power-of-d-choices over instantaneous queue depth.

    Parameters
    ----------
    num_workers:
        Downstream parallelism W.
    num_choices:
        d, how many workers each message samples (default 2).  Values
        >= W degenerate to global least-queue.
    hash_family:
        Hash functions used to derive the d per-message candidates from
        the message counter; built from ``seed`` if absent.
    """

    name = "JBSQ"

    def __init__(
        self,
        num_workers: int,
        num_choices: int = 2,
        hash_family: Optional[HashFamily] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(num_workers)
        if num_choices < 1:
            raise ValueError(f"num_choices must be >= 1, got {num_choices}")
        if hash_family is not None and len(hash_family) != num_choices:
            raise ValueError(
                f"hash family has {len(hash_family)} functions but "
                f"num_choices={num_choices}"
            )
        self.num_choices = int(num_choices)
        self.family = hash_family or HashFamily(size=num_choices, seed=seed)
        #: outstanding (queued or in service) messages per worker.
        self.outstanding = np.zeros(num_workers, dtype=np.int64)
        self._counter = 0

    def _candidates_for(self, counter: int) -> Tuple[int, ...]:
        return self.family.choices(counter, self.num_workers)

    def candidates(self, key: Any) -> Tuple[int, ...]:
        """The workers the *next* message may join (key-agnostic)."""
        return self._candidates_for(self._counter)

    def route(self, key: Any, now: float = 0.0) -> int:
        cands = self._candidates_for(self._counter)
        self._counter += 1
        view = self.outstanding
        best = cands[0]
        best_depth = view[best]
        for candidate in cands[1:]:
            depth = view[candidate]
            if depth < best_depth:
                best = candidate
                best_depth = depth
        view[best] += 1
        return int(best)

    def on_complete(self, worker: int, now: float = 0.0) -> None:
        """Departure feedback: one outstanding message left ``worker``."""
        if not 0 <= worker < self.num_workers:
            raise ValueError(
                f"worker must be in [0, {self.num_workers}), got {worker}"
            )
        if self.outstanding[worker] <= 0:
            raise ValueError(
                f"worker {worker} has no outstanding messages to complete"
            )
        self.outstanding[worker] -= 1

    def route_chunk(
        self, keys: Sequence[Any], timestamps: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Vectorised replay path: hash the counter range, then Greedy-d.

        No completions can happen inside a chunk (replay has no
        departure events), so routing the whole chunk through the
        Greedy-d kernel over the ``outstanding`` array reproduces the
        per-message decisions exactly.
        """
        m = int(np.asarray(keys).size)
        counters = np.arange(self._counter, self._counter + m, dtype=np.int64)
        self._counter += m
        choices = self.family.choice_matrix(counters, self.num_workers)
        return greedy_route_chunk(choices, self.outstanding)

    def reset(self) -> None:
        self.outstanding[:] = 0
        self._counter = 0

    def __repr__(self) -> str:
        return (
            f"JoinBoundedShortestQueue(num_workers={self.num_workers}, "
            f"num_choices={self.num_choices})"
        )
