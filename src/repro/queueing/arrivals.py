"""Arrival processes: when messages enter the system.

The load-count replays elsewhere in the repo only care about message
*order*; a latency evaluation additionally needs *when* each message
arrives, because waiting time is a race between the arrival process and
the service capacity.  Every process here is a pure function of an
explicit :class:`numpy.random.Generator` (REPRO001), and produces the
full ascending arrival-time vector up front so the simulator can drive
the event loop deterministically.

* :class:`PoissonArrivals` -- i.i.d. exponential inter-arrivals (the
  open-loop M/·/· arrival side, and the memoryless half of every
  closed-form check in :mod:`repro.queueing.analytic`);
* :class:`DeterministicArrivals` -- a perfectly paced conveyor (D/·/·);
* :class:`TraceArrivals` -- replay of an explicit timestamp trace
  (e.g. timestamps captured from the drift/burst generators in
  :mod:`repro.streams`), optionally rescaled to a target rate.

:class:`ClosedLoopPopulation` is the *closed-loop* (think-time) arrival
mode and deliberately **not** an :class:`ArrivalProcess`: a closed
system's arrival instants depend on its own departures (a client only
submits its next request after the previous one returned and a think
time elapsed), so the full arrival-time vector cannot exist before the
simulation runs.  It is a plain descriptor -- population size N plus a
think-time distribution -- that
:func:`repro.queueing.simulator.simulate_closed_loop` interprets; with
exponential think and service times and one worker this is the
M/M/1//N machine-repairman model, whose closed forms live in
:mod:`repro.queueing.analytic`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.queueing.service import ServiceTimeDistribution

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ClosedLoopPopulation",
]


class ArrivalProcess(ABC):
    """Generates ascending absolute arrival times at a known mean rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        #: mean arrivals per simulated second.
        self.rate = float(rate)

    @abstractmethod
    def interarrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` positive gaps between consecutive arrivals."""

    def arrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Absolute times of the first ``n`` arrivals (ascending)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        times: np.ndarray = np.cumsum(self.interarrivals(n, rng))
        return times

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.rate:g})"


class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential inter-arrival gaps, mean ``1/rate``."""

    def interarrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        gaps: np.ndarray = rng.exponential(scale=1.0 / self.rate, size=n)
        return gaps


class DeterministicArrivals(ArrivalProcess):
    """Constant-gap arrivals: one message every ``1/rate`` seconds."""

    def interarrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, 1.0 / self.rate, dtype=np.float64)


class TraceArrivals(ArrivalProcess):
    """Replay an explicit (ascending) timestamp trace.

    ``rate`` (optional) rescales the trace so its empirical mean rate
    matches the target -- the knob a utilization sweep turns without
    reshaping the trace's burst structure.  Traces shorter than the
    requested ``n`` repeat, shifted so gaps stay consistent (the gap
    between repetitions is the trace's mean gap).
    """

    def __init__(
        self,
        timestamps: Union[Sequence[float], np.ndarray],
        rate: Union[float, None] = None,
    ) -> None:
        times = np.asarray(timestamps, dtype=np.float64)
        if times.ndim != 1 or times.size < 2:
            raise ValueError("trace needs at least two ascending timestamps")
        gaps = np.diff(times)
        if bool((gaps < 0).any()):
            raise ValueError("trace timestamps must be ascending")
        mean_gap = float(times[-1] - times[0]) / (times.size - 1)
        if mean_gap <= 0:
            raise ValueError("trace must span a positive duration")
        natural_rate = 1.0 / mean_gap
        scale = 1.0 if rate is None else natural_rate / float(rate)
        super().__init__(natural_rate if rate is None else float(rate))
        #: one repetition cycle of gaps, led by the wrap gap (the mean)
        #: that splices repetitions without a burst artefact; tiling
        #: this and overwriting slot 0 with the first-arrival offset
        #: preserves every within-trace gap.
        self._gaps = np.concatenate([[mean_gap], gaps]) * scale
        self._first = float(times[0]) * scale if rate is None else mean_gap * scale

    def interarrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        reps = -(-n // self._gaps.size)  # ceil division
        tiled = np.tile(self._gaps, reps)[:n].copy()
        if n:
            tiled[0] = self._first if self._first > 0 else self._gaps[0]
        return tiled


@dataclass(frozen=True)
class ClosedLoopPopulation:
    """N clients alternating think -> submit -> wait-for-response.

    The closed-loop arrival mode: at most ``population`` requests are
    ever in flight, so offered load self-throttles when the system
    slows down -- the finite-source behaviour open-loop Poisson
    arrivals cannot express.  ``think`` reuses the service-time
    distribution classes (an exponential think time makes the
    single-worker system the textbook M/M/1//N machine-repairman
    model).
    """

    population: int
    think: ServiceTimeDistribution

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError(
                f"population must be >= 1, got {self.population}"
            )

    @property
    def think_rate(self) -> float:
        """Mean think-completions per second per client (``1/E[Z]``)."""
        return 1.0 / self.think.mean
