"""A compact, mergeable percentile store for per-message latencies.

The queueing simulator observes one sojourn time per completed message;
a latency evaluation sweeping offered load for every scheme cannot
afford to keep them all.  :class:`LatencyStore` is a log-bucketed
histogram in the DDSketch family (Masson et al., VLDB 2019): values are
counted in geometrically-spaced buckets ``(gamma^(i-1), gamma^i]`` with
``gamma = (1 + e) / (1 - e)``, which guarantees every quantile estimate
is within **relative error** ``e`` of an actual sample at that rank.

Properties the evaluation layer relies on (and the test suite proves):

* **bounded relative error** -- ``quantile(q)`` returns a value ``v``
  with ``|v - x| <= e * x`` for the sample ``x`` at rank ``q``;
* **mergeable** -- bucket counts are keyed by index, so
  ``a.merge(b)`` holds exactly the buckets of the concatenated stream:
  merge-then-query equals query-of-concat, and merging is associative
  and commutative (per-worker stores combine into one cluster store in
  any order);
* **compact** -- memory is one contiguous int64 lane per bucket index
  between the smallest and largest observed sample: spanning
  nanoseconds to hours at 1% error needs < 2100 lanes.  (The dense
  span is what makes :meth:`record_many` one ``np.bincount`` add
  instead of a per-bucket Python loop; serialisation still emits only
  the occupied buckets.)

Counts, min, max and the total are exact; only quantiles and the mean's
bucket placement are approximate (the mean itself is tracked exactly).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = ["LatencyStore", "DEFAULT_RELATIVE_ERROR"]

#: 1% relative error: indistinguishable on a latency-vs-load curve.
DEFAULT_RELATIVE_ERROR = 0.01


class LatencyStore:
    """Bounded-relative-error quantile sketch over positive latencies."""

    __slots__ = (
        "relative_error",
        "_gamma",
        "_log_gamma",
        "_bucket_lo",
        "_bucket_counts",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(
                f"relative_error must be in (0, 1), got {relative_error}"
            )
        self.relative_error = float(relative_error)
        self._gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        self._log_gamma = math.log(self._gamma)
        #: dense count lanes: ``_bucket_counts[j]`` is the count of
        #: bucket ``_bucket_lo + j``; bucket i covers (gamma^(i-1),
        #: gamma^i].  Empty until the first positive sample.
        self._bucket_lo = 0
        self._bucket_counts: np.ndarray = np.zeros(0, dtype=np.int64)
        #: values <= 0 (a zero sojourn is representable, if unphysical).
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ----------------------------------------------------------

    def record(self, value: float) -> None:
        """Absorb one latency sample."""
        self.record_many(np.asarray([value], dtype=np.float64))

    def record_many(self, values: Union[Sequence[float], np.ndarray]) -> None:
        """Absorb a batch of samples (vectorised bucket placement).

        Scalar :meth:`record` delegates here, so both paths place every
        value in exactly the same bucket.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        if bool(np.isnan(arr).any()):
            raise ValueError("cannot record NaN latencies")
        if bool(np.isinf(arr).any()):
            raise ValueError("cannot record infinite latencies")
        positive = arr[arr > 0.0]
        self._zero_count += int(arr.size - positive.size)
        if positive.size:
            indices = np.ceil(np.log(positive) / self._log_gamma).astype(np.int64)
            self._ensure_span(int(indices.min()), int(indices.max()))
            self._bucket_counts += np.bincount(
                indices - self._bucket_lo, minlength=self._bucket_counts.size
            )
        self._count += int(arr.size)
        self._sum += float(arr.sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))

    def _ensure_span(self, lo: int, hi: int) -> None:
        """Grow the dense lanes to cover bucket indices ``[lo, hi]``."""
        if self._bucket_counts.size == 0:
            self._bucket_lo = lo
            self._bucket_counts = np.zeros(hi - lo + 1, dtype=np.int64)
            return
        cur_lo = self._bucket_lo
        cur_hi = cur_lo + self._bucket_counts.size - 1
        if lo >= cur_lo and hi <= cur_hi:
            return
        new_lo = min(lo, cur_lo)
        new_hi = max(hi, cur_hi)
        grown = np.zeros(new_hi - new_lo + 1, dtype=np.int64)
        offset = cur_lo - new_lo
        grown[offset : offset + self._bucket_counts.size] = self._bucket_counts
        self._bucket_lo = new_lo
        self._bucket_counts = grown

    # -- merging ------------------------------------------------------------

    def merge(self, other: "LatencyStore") -> "LatencyStore":
        """A new store equivalent to recording both input streams.

        Requires equal ``relative_error`` (bucket boundaries must line
        up).  Exact for counts/min/max; quantiles of the merge equal
        quantiles of the concatenated stream by construction.
        """
        if not isinstance(other, LatencyStore):
            raise TypeError(f"cannot merge LatencyStore with {type(other).__name__}")
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge stores with different relative errors "
                f"({self.relative_error} vs {other.relative_error})"
            )
        merged = LatencyStore(self.relative_error)
        merged._bucket_lo = self._bucket_lo
        merged._bucket_counts = self._bucket_counts.copy()
        if other._bucket_counts.size:
            other_lo = other._bucket_lo
            merged._ensure_span(
                other_lo, other_lo + other._bucket_counts.size - 1
            )
            offset = other_lo - merged._bucket_lo
            merged._bucket_counts[
                offset : offset + other._bucket_counts.size
            ] += other._bucket_counts
        merged._zero_count = self._zero_count + other._zero_count
        merged._count = self._count + other._count
        merged._sum = self._sum + other._sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @classmethod
    def merge_all(cls, stores: Iterable["LatencyStore"]) -> "LatencyStore":
        """Fold any number of stores (e.g. one per worker) into one."""
        result: Optional[LatencyStore] = None
        for store in stores:
            result = store if result is None else result.merge(store)
        if result is None:
            raise ValueError("merge_all needs at least one store")
        return result

    # -- queries ------------------------------------------------------------

    @property
    def count(self) -> int:
        """Exact number of samples recorded."""
        return self._count

    @property
    def min(self) -> float:
        """Exact minimum sample (inf when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum sample (-inf when empty)."""
        return self._max

    def mean(self) -> float:
        """Exact mean of the recorded samples (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The sample at rank ``q``, within ``relative_error``.

        ``q = 0`` targets the smallest sample, ``q = 1`` the largest;
        the target rank is ``max(1, ceil(q * count))``.  Raises
        :class:`ValueError` on an empty store.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            raise ValueError("cannot query quantiles of an empty LatencyStore")
        rank = max(1, math.ceil(q * self._count))
        if rank <= self._zero_count:
            return 0.0
        cumulative = self._zero_count + np.cumsum(self._bucket_counts)
        pos = int(np.searchsorted(cumulative, rank))
        if pos >= cumulative.size:
            return self._max  # unreachable; counts always sum to _count
        # mid-bucket estimate: gamma^i * (1 - e), within +-e of every
        # value in (gamma^(i-1), gamma^i].
        i = self._bucket_lo + pos
        return (self._gamma ** i) * (1.0 - self.relative_error)

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Batch :meth:`quantile` (one bucket walk per query)."""
        return [self.quantile(q) for q in qs]

    def num_buckets(self) -> int:
        """Occupied buckets (what serialisation emits)."""
        return int(np.count_nonzero(self._bucket_counts)) + (
            1 if self._zero_count else 0
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (artifact-friendly)."""
        return {
            "relative_error": self.relative_error,
            "zero_count": self._zero_count,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {
                str(self._bucket_lo + j): int(c)
                for j, c in enumerate(self._bucket_counts.tolist())
                if c
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyStore":
        store = cls(float(data["relative_error"]))
        occupied = {int(i): int(c) for i, c in data["buckets"].items()}
        if occupied:
            store._ensure_span(min(occupied), max(occupied))
            for i, c in occupied.items():
                store._bucket_counts[i - store._bucket_lo] = c
        store._zero_count = int(data["zero_count"])
        store._count = int(data["count"])
        store._sum = float(data["sum"])
        store._min = math.inf if data["min"] is None else float(data["min"])
        store._max = -math.inf if data["max"] is None else float(data["max"])
        return store

    def __repr__(self) -> str:
        return (
            f"LatencyStore(relative_error={self.relative_error}, "
            f"count={self._count}, buckets={self.num_buckets()})"
        )
