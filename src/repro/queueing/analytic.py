"""Closed-form queueing predictions the simulator must reproduce.

The simulator in :mod:`repro.queueing.simulator` is only trustworthy if
it matches queueing theory where queueing theory has answers.  This
module holds those answers:

* **M/M/1** -- mean waiting ``W_q = rho / (mu - lambda)`` and mean
  sojourn ``T = 1 / (mu - lambda)``; the sojourn distribution is
  exponential, so every quantile is closed-form too;
* **M/G/1 (Pollaczek-Khinchine)** -- mean waiting
  ``W_q = rho (1 + C_s^2) / (2 (1 - rho)) * E[S]``, covering the
  deterministic and bimodal service distributions;
* **M/M/c (Erlang C)** -- probability of waiting and mean waiting time
  for ``c`` servers sharing one FIFO queue;
* **M/M/1//N (machine repairman)** -- the closed-loop finite-source
  model behind :class:`~repro.queueing.arrivals.ClosedLoopPopulation`:
  stationary distribution, utilization, throughput, and -- via Little's
  law on the closed cycle -- mean response time.

``tests/test_queueing_analytic.py`` sweeps utilization and asserts the
simulated means land within tolerance of these expressions -- the
"proven, not plausible" contract of the latency evaluation layer.
"""

from __future__ import annotations

import math
from typing import List

__all__ = [
    "mm1_mean_waiting",
    "mm1_mean_sojourn",
    "mm1_sojourn_quantile",
    "mg1_mean_waiting",
    "erlang_c",
    "mmc_mean_waiting",
    "mmc_mean_sojourn",
    "machine_repairman_distribution",
    "machine_repairman_utilization",
    "machine_repairman_throughput",
    "machine_repairman_mean_sojourn",
]


def _check_stable(arrival_rate: float, capacity: float) -> None:
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    if arrival_rate >= capacity:
        raise ValueError(
            f"unstable system: arrival rate {arrival_rate} >= service "
            f"capacity {capacity}"
        )


def mm1_mean_waiting(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) of an M/M/1 system."""
    _check_stable(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    return rho / (service_rate - arrival_rate)


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean time in system (queue + service): ``1 / (mu - lambda)``."""
    _check_stable(arrival_rate, service_rate)
    return 1.0 / (service_rate - arrival_rate)


def mm1_sojourn_quantile(
    arrival_rate: float, service_rate: float, q: float
) -> float:
    """Sojourn quantile of M/M/1: the sojourn is Exp(mu - lambda)."""
    _check_stable(arrival_rate, service_rate)
    if not 0.0 <= q < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {q}")
    return -math.log(1.0 - q) / (service_rate - arrival_rate)


def mg1_mean_waiting(
    arrival_rate: float, service_mean: float, service_scv: float
) -> float:
    """Pollaczek-Khinchine mean waiting time of an M/G/1 system.

    ``W_q = rho (1 + C_s^2) / (2 (1 - rho)) * E[S]`` where ``C_s^2`` is
    the service distribution's squared coefficient of variation
    (:attr:`~repro.queueing.service.ServiceTimeDistribution.scv`).
    Reduces to the M/M/1 formula at ``C_s^2 = 1`` and to the M/D/1
    half-wait at ``C_s^2 = 0``.
    """
    if service_mean <= 0:
        raise ValueError(f"service mean must be positive, got {service_mean}")
    if service_scv < 0:
        raise ValueError(f"service scv must be >= 0, got {service_scv}")
    _check_stable(arrival_rate, 1.0 / service_mean)
    rho = arrival_rate * service_mean
    return rho * (1.0 + service_scv) / (2.0 * (1.0 - rho)) * service_mean


def erlang_c(num_servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    ``offered_load`` is ``a = lambda / mu`` in Erlangs; requires
    ``a < c`` for stability.  Computed with the numerically stable
    iterative form (no explicit factorials).
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    if offered_load <= 0:
        raise ValueError(f"offered load must be positive, got {offered_load}")
    if offered_load >= num_servers:
        raise ValueError(
            f"unstable system: offered load {offered_load} >= servers "
            f"{num_servers}"
        )
    # Iteratively build the Erlang-B blocking probability, then convert.
    blocking = 1.0
    for k in range(1, num_servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    rho = offered_load / num_servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_waiting(
    arrival_rate: float, service_rate: float, num_servers: int
) -> float:
    """Mean time in queue of an M/M/c system (Erlang-C formula)."""
    _check_stable(arrival_rate, service_rate * num_servers)
    offered_load = arrival_rate / service_rate
    wait_probability = erlang_c(num_servers, offered_load)
    return wait_probability / (num_servers * service_rate - arrival_rate)


def mmc_mean_sojourn(
    arrival_rate: float, service_rate: float, num_servers: int
) -> float:
    """Mean time in system of an M/M/c system."""
    return (
        mmc_mean_waiting(arrival_rate, service_rate, num_servers)
        + 1.0 / service_rate
    )


def _check_repairman(
    population: int, think_rate: float, service_rate: float
) -> None:
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if think_rate <= 0:
        raise ValueError(f"think rate must be positive, got {think_rate}")
    if service_rate <= 0:
        raise ValueError(
            f"service rate must be positive, got {service_rate}"
        )


def machine_repairman_distribution(
    population: int, think_rate: float, service_rate: float
) -> List[float]:
    """Stationary P(k requests at the server) of M/M/1//N, k = 0..N.

    N clients each think for Exp(``think_rate``) then hold the single
    Exp(``service_rate``) server; the birth-death solution is
    ``P(k) \\propto N!/(N-k)! * (think_rate/service_rate)^k``.  Always
    stable (the closed loop self-throttles), so no utilization check.
    """
    _check_repairman(population, think_rate, service_rate)
    ratio = think_rate / service_rate
    weights = [1.0]
    for k in range(1, population + 1):
        # N!/(N-k)! builds up one factor (N-k+1) per extra request.
        weights.append(weights[-1] * (population - k + 1) * ratio)
    total = sum(weights)
    return [w / total for w in weights]


def machine_repairman_utilization(
    population: int, think_rate: float, service_rate: float
) -> float:
    """Server utilization ``U = 1 - P(0)`` of M/M/1//N."""
    return 1.0 - machine_repairman_distribution(
        population, think_rate, service_rate
    )[0]


def machine_repairman_throughput(
    population: int, think_rate: float, service_rate: float
) -> float:
    """System throughput ``X = U * service_rate`` (completions/second)."""
    return (
        machine_repairman_utilization(population, think_rate, service_rate)
        * service_rate
    )


def machine_repairman_mean_sojourn(
    population: int, think_rate: float, service_rate: float
) -> float:
    """Mean response time ``R = N/X - Z`` of M/M/1//N.

    Little's law over the whole closed cycle: each of the N clients
    alternates thinking (mean ``Z = 1/think_rate``) and responding, so
    ``N = X * (R + Z)``.
    """
    throughput = machine_repairman_throughput(
        population, think_rate, service_rate
    )
    return population / throughput - 1.0 / think_rate
