"""Service-time distributions: how long each message occupies a worker.

The paper's cluster experiments (Figure 5) fix a constant per-key CPU
delay; a queueing evaluation needs the full distribution, because tail
latency at fixed utilization is driven by service *variability* (the
``(1 + C_s^2)/2`` factor in Pollaczek-Khinchine).  Each distribution
exposes its exact ``mean`` (how the sweep converts a utilization target
into an arrival rate) and squared coefficient of variation ``scv``
(what the closed-form checks in :mod:`repro.queueing.analytic` need),
and samples through an explicit :class:`numpy.random.Generator`
(REPRO001).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "ServiceTimeDistribution",
    "ExponentialService",
    "DeterministicService",
    "BimodalService",
]


class ServiceTimeDistribution(ABC):
    """Positive i.i.d. per-message service requirements."""

    #: exact mean service time E[S] in simulated seconds.
    mean: float

    @property
    @abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[S] / E[S]^2``."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` service times (float64, strictly positive)."""

    def _check(self, mean: float) -> float:
        if mean <= 0:
            raise ValueError(f"mean service time must be positive, got {mean}")
        return float(mean)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mean={self.mean:g})"


class ExponentialService(ServiceTimeDistribution):
    """Exponential service (the M/M/· case): ``scv = 1``."""

    def __init__(self, mean: float) -> None:
        self.mean = self._check(mean)

    @property
    def scv(self) -> float:
        return 1.0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        out: np.ndarray = rng.exponential(scale=self.mean, size=n)
        return out


class DeterministicService(ServiceTimeDistribution):
    """Constant service (the M/D/· case): ``scv = 0``."""

    def __init__(self, mean: float) -> None:
        self.mean = self._check(mean)

    @property
    def scv(self) -> float:
        return 0.0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.mean, dtype=np.float64)


class BimodalService(ServiceTimeDistribution):
    """Two-point service mix: fast requests with occasional slow ones.

    The classic "RPC with a slow path" shape (cf. the bimodal service
    generators in queueing studies of microsecond-scale RPCs): a
    fraction ``slow_fraction`` of messages take ``slow`` seconds, the
    rest take ``fast``.  High ``scv`` at a modest mean, which is what
    separates tail-latency winners from mean-latency winners.
    """

    def __init__(self, fast: float, slow: float, slow_fraction: float) -> None:
        if fast <= 0 or slow <= 0:
            raise ValueError(
                f"service times must be positive, got fast={fast}, slow={slow}"
            )
        if slow < fast:
            raise ValueError(f"slow ({slow}) must be >= fast ({fast})")
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(
                f"slow_fraction must be in [0, 1], got {slow_fraction}"
            )
        self.fast = float(fast)
        self.slow = float(slow)
        self.slow_fraction = float(slow_fraction)
        self.mean = self.fast + (self.slow - self.fast) * self.slow_fraction

    @property
    def scv(self) -> float:
        p = self.slow_fraction
        second_moment = (1.0 - p) * self.fast**2 + p * self.slow**2
        variance = second_moment - self.mean**2
        return variance / self.mean**2

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        slow_mask = rng.random(n) < self.slow_fraction
        return np.where(slow_mask, self.slow, self.fast)

    def __repr__(self) -> str:
        return (
            f"BimodalService(fast={self.fast:g}, slow={self.slow:g}, "
            f"slow_fraction={self.slow_fraction:g})"
        )
