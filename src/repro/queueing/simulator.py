"""Open-loop queueing simulation layered on the deterministic EventLoop.

This is the measurement instrument behind every latency figure: W
workers, each a bounded FIFO queue in front of a single server, fed by
a seeded arrival process and routed by any registered
:class:`~repro.partitioning.base.Partitioner`.  Per-message sojourn
times (arrival to departure) land in per-worker
:class:`~repro.queueing.latency.LatencyStore` sketches that merge into
one cluster-wide store.

Mechanics:

* arrival and service times are drawn **up front** from one seeded
  generator, so a run is a pure function of
  ``(keys, partitioner, arrivals, service, seed)`` -- identical across
  processes and job counts;
* each arrival routes through ``partitioner.route(key, now)`` at its
  arrival instant, so queue-depth-aware schemes (``jbsq``) observe the
  true instantaneous backlog;
* partitioners exposing an ``on_complete(worker, now)`` hook (the
  :class:`~repro.partitioning.jbsq.JoinBoundedShortestQueue` feedback
  channel) are notified at every departure and drop;
* a full queue drops the arrival (counted per worker); ``None``
  capacity means unbounded (what the analytic validation uses).

:func:`simulate_mmc` is the shared-queue sibling -- ``c`` servers
draining one FIFO -- whose only purpose is validation against the
Erlang-C closed form in :mod:`repro.queueing.analytic`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, cast

import numpy as np

from repro.core.chunks import KeyStream, as_key_array
from repro.core.engine import EventLoop
from repro.queueing.arrivals import (
    ArrivalProcess,
    ClosedLoopPopulation,
    PoissonArrivals,
)
from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.queueing.service import ServiceTimeDistribution

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

__all__ = [
    "QueueingResult",
    "simulate_queueing",
    "simulate_closed_loop",
    "simulate_mmc",
]

#: the departure-feedback hook queue-aware partitioners may expose.
CompletionHook = Callable[[int, float], None]


@dataclass
class QueueingResult:
    """Outcome of one queueing simulation."""

    num_workers: int
    num_messages: int
    #: messages that finished service (dropped ones never do)
    completed: int
    dropped: int
    #: simulated time of the last departure
    end_time: float
    #: merged sojourn sketch over all workers (post-warmup samples)
    latency: LatencyStore
    #: merged *waiting* sketch: sojourn minus the message's own service
    #: time, the quantity the closed-form W_q predictions speak about
    waiting: LatencyStore
    #: per-worker sojourn sketches (what :attr:`latency` merged)
    worker_latency: List[LatencyStore]
    #: per-worker total service time actually performed
    busy_time: np.ndarray
    dropped_per_worker: np.ndarray
    #: leading messages excluded from the latency sketches
    warmup_messages: int

    @property
    def utilization(self) -> float:
        """Realised cluster utilization: busy time over W * end_time."""
        if self.end_time <= 0:
            return 0.0
        return float(self.busy_time.sum()) / (self.num_workers * self.end_time)

    @property
    def worker_utilization(self) -> np.ndarray:
        """Per-worker realised utilization."""
        if self.end_time <= 0:
            return np.zeros(self.num_workers, dtype=np.float64)
        out: np.ndarray = self.busy_time / self.end_time
        return out

    @property
    def throughput(self) -> float:
        """Realised completions per simulated second."""
        if self.end_time <= 0:
            return 0.0
        return self.completed / self.end_time

    def mean_sojourn(self) -> float:
        return self.latency.mean()

    def mean_waiting(self) -> float:
        """Exact mean of per-message waiting times (post-warmup)."""
        return self.waiting.mean()

    def sojourn_quantile(self, q: float) -> float:
        return self.latency.quantile(q)


def _result(
    num_workers: int,
    num_messages: int,
    completed: int,
    dropped: int,
    end_time: float,
    buffers: List[List[float]],
    waiting_buffers: List[List[float]],
    busy_time: np.ndarray,
    dropped_per_worker: np.ndarray,
    warmup_messages: int,
    relative_error: float,
) -> QueueingResult:
    stores: List[LatencyStore] = []
    for buffer in buffers:
        store = LatencyStore(relative_error)
        store.record_many(np.asarray(buffer, dtype=np.float64))
        stores.append(store)
    waiting = LatencyStore(relative_error)
    for buffer in waiting_buffers:
        waiting.record_many(np.asarray(buffer, dtype=np.float64))
    return QueueingResult(
        num_workers=num_workers,
        num_messages=num_messages,
        completed=completed,
        dropped=dropped,
        end_time=end_time,
        latency=LatencyStore.merge_all(stores),
        waiting=waiting,
        worker_latency=stores,
        busy_time=busy_time,
        dropped_per_worker=dropped_per_worker,
        warmup_messages=warmup_messages,
    )


def _warmup_count(warmup_fraction: float, num_messages: int) -> int:
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    return int(warmup_fraction * num_messages)


def simulate_queueing(
    keys: KeyStream,
    partitioner: "Partitioner",
    arrivals: ArrivalProcess,
    service: ServiceTimeDistribution,
    *,
    seed: int,
    queue_capacity: Optional[int] = None,
    warmup_fraction: float = 0.0,
    relative_error: float = DEFAULT_RELATIVE_ERROR,
) -> QueueingResult:
    """Run one keyed stream through partitioned per-worker FIFO queues.

    ``queue_capacity`` bounds each worker's backlog *including* the
    message in service; arrivals beyond it are dropped (and reported),
    never re-queued.  ``warmup_fraction`` excludes the leading fraction
    of messages from the latency sketches so transient ramp-up does not
    bias steady-state tails.
    """
    key_array = as_key_array(keys)
    n = int(key_array.size)
    if queue_capacity is not None and queue_capacity < 1:
        raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
    warmup = _warmup_count(warmup_fraction, n)
    num_workers = partitioner.num_workers

    rng = np.random.default_rng(seed)
    arrival_times = arrivals.arrival_times(n, rng).tolist()
    service_times = service.sample(n, rng).tolist()

    loop = EventLoop()
    queues: List[Deque[int]] = [deque() for _ in range(num_workers)]
    busy = [False] * num_workers
    busy_time = np.zeros(num_workers, dtype=np.float64)
    dropped_per_worker = np.zeros(num_workers, dtype=np.int64)
    buffers: List[List[float]] = [[] for _ in range(num_workers)]
    waiting_buffers: List[List[float]] = [[] for _ in range(num_workers)]
    completed = 0
    dropped = 0
    on_complete = cast(
        Optional[CompletionHook], getattr(partitioner, "on_complete", None)
    )

    def start_service(worker: int) -> None:
        index = queues[worker].popleft()
        busy[worker] = True
        duration = service_times[index]
        busy_time[worker] += duration
        loop.schedule(duration, lambda: depart(worker, index))

    def depart(worker: int, index: int) -> None:
        nonlocal completed
        completed += 1
        if index >= warmup:
            sojourn = loop.now - arrival_times[index]
            buffers[worker].append(sojourn)
            waiting_buffers[worker].append(sojourn - service_times[index])
        if on_complete is not None:
            on_complete(worker, loop.now)
        if queues[worker]:
            start_service(worker)
        else:
            busy[worker] = False

    def arrive(index: int) -> None:
        nonlocal dropped
        if index + 1 < n:
            loop.schedule_at(
                arrival_times[index + 1], lambda: arrive(index + 1)
            )
        worker = int(partitioner.route(key_array[index], loop.now))
        backlog = len(queues[worker]) + (1 if busy[worker] else 0)
        if queue_capacity is not None and backlog >= queue_capacity:
            dropped += 1
            dropped_per_worker[worker] += 1
            # the message never occupies the worker: release any
            # outstanding-work credit the routing decision charged.
            if on_complete is not None:
                on_complete(worker, loop.now)
            return
        queues[worker].append(index)
        if not busy[worker]:
            start_service(worker)

    if n:
        loop.schedule_at(arrival_times[0], lambda: arrive(0))
    loop.run()

    return _result(
        num_workers,
        n,
        completed,
        dropped,
        loop.now if n else 0.0,
        buffers,
        waiting_buffers,
        busy_time,
        dropped_per_worker,
        warmup,
        relative_error,
    )


def simulate_closed_loop(
    keys: KeyStream,
    partitioner: "Partitioner",
    closed_loop: ClosedLoopPopulation,
    service: ServiceTimeDistribution,
    *,
    seed: int,
    warmup_fraction: float = 0.0,
    relative_error: float = DEFAULT_RELATIVE_ERROR,
) -> QueueingResult:
    """Closed-loop (think-time) run: N clients, each one request in flight.

    Each of the ``closed_loop.population`` clients cycles think ->
    submit -> wait-for-response: it draws a think time, submits the
    next key from the stream at think end (routed through
    ``partitioner.route`` at the submission instant), and starts
    thinking again only when its request departs.  At most N requests
    are ever in the system, so nothing is dropped and offered load
    self-throttles -- with exponential think/service and one worker
    this is M/M/1//N, validated against the machine-repairman closed
    forms in :mod:`repro.queueing.analytic`.

    The run ends when the stream is exhausted: exactly ``len(keys)``
    messages are submitted and completed.  Keys, think times, and
    service times are consumed in client think-start order, which the
    deterministic EventLoop fixes, so the run is a pure function of
    ``(keys, partitioner, closed_loop, service, seed)``.
    """
    key_array = as_key_array(keys)
    n = int(key_array.size)
    warmup = _warmup_count(warmup_fraction, n)
    num_workers = partitioner.num_workers
    population = closed_loop.population

    rng = np.random.default_rng(seed)
    think_times = closed_loop.think.sample(n, rng).tolist()
    service_times = service.sample(n, rng).tolist()
    arrival_times = [0.0] * n

    loop = EventLoop()
    queues: List[Deque[int]] = [deque() for _ in range(num_workers)]
    busy = [False] * num_workers
    busy_time = np.zeros(num_workers, dtype=np.float64)
    buffers: List[List[float]] = [[] for _ in range(num_workers)]
    waiting_buffers: List[List[float]] = [[] for _ in range(num_workers)]
    completed = 0
    next_index = 0
    on_complete = cast(
        Optional[CompletionHook], getattr(partitioner, "on_complete", None)
    )

    def start_service(worker: int) -> None:
        index = queues[worker].popleft()
        busy[worker] = True
        duration = service_times[index]
        busy_time[worker] += duration
        loop.schedule(duration, lambda: depart(worker, index))

    def depart(worker: int, index: int) -> None:
        nonlocal completed
        completed += 1
        if index >= warmup:
            sojourn = loop.now - arrival_times[index]
            buffers[worker].append(sojourn)
            waiting_buffers[worker].append(sojourn - service_times[index])
        if on_complete is not None:
            on_complete(worker, loop.now)
        if queues[worker]:
            start_service(worker)
        else:
            busy[worker] = False
        begin_think()  # the responded-to client starts its next cycle

    def submit(index: int) -> None:
        arrival_times[index] = loop.now
        worker = int(partitioner.route(key_array[index], loop.now))
        queues[worker].append(index)
        if not busy[worker]:
            start_service(worker)

    def begin_think() -> None:
        # Reserve the next message at think *start*; a retiring client
        # (stream exhausted) simply never submits again.
        nonlocal next_index
        if next_index >= n:
            return
        index = next_index
        next_index += 1
        loop.schedule(think_times[index], lambda: submit(index))

    for _ in range(min(population, n)):
        begin_think()
    loop.run()

    return _result(
        num_workers,
        n,
        completed,
        0,
        loop.now if n else 0.0,
        buffers,
        waiting_buffers,
        busy_time,
        np.zeros(num_workers, dtype=np.int64),
        warmup,
        relative_error,
    )


def simulate_mmc(
    arrival_rate: float,
    service: ServiceTimeDistribution,
    num_servers: int,
    num_messages: int,
    *,
    seed: int,
    warmup_fraction: float = 0.0,
    relative_error: float = DEFAULT_RELATIVE_ERROR,
) -> QueueingResult:
    """Simulate M/G/c: Poisson arrivals, one FIFO queue, ``c`` servers.

    The validation workload: with exponential service this is M/M/c and
    its mean waiting time has the Erlang-C closed form
    (:func:`repro.queueing.analytic.mmc_mean_waiting`); with ``c = 1``
    and general service it is M/G/1 (Pollaczek-Khinchine).  Shares the
    EventLoop, sketch, and accounting machinery with
    :func:`simulate_queueing`, so agreement here vouches for the
    partitioned simulator's mechanics too.
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    if num_messages < 0:
        raise ValueError(f"num_messages must be >= 0, got {num_messages}")
    n = int(num_messages)
    warmup = _warmup_count(warmup_fraction, n)

    rng = np.random.default_rng(seed)
    arrival_times = PoissonArrivals(arrival_rate).arrival_times(n, rng).tolist()
    service_times = service.sample(n, rng).tolist()

    loop = EventLoop()
    queue: Deque[int] = deque()
    idle: List[int] = list(range(num_servers))  # ascending; pop from front
    busy_time = np.zeros(num_servers, dtype=np.float64)
    buffers: List[List[float]] = [[] for _ in range(num_servers)]
    waiting_buffers: List[List[float]] = [[] for _ in range(num_servers)]
    completed = 0

    def start_service(server: int, index: int) -> None:
        duration = service_times[index]
        busy_time[server] += duration
        loop.schedule(duration, lambda: depart(server, index))

    def depart(server: int, index: int) -> None:
        nonlocal completed
        completed += 1
        if index >= warmup:
            sojourn = loop.now - arrival_times[index]
            buffers[server].append(sojourn)
            waiting_buffers[server].append(sojourn - service_times[index])
        if queue:
            start_service(server, queue.popleft())
        else:
            idle.append(server)
            idle.sort()

    def arrive(index: int) -> None:
        if index + 1 < n:
            loop.schedule_at(
                arrival_times[index + 1], lambda: arrive(index + 1)
            )
        if idle:
            start_service(idle.pop(0), index)
        else:
            queue.append(index)

    if n:
        loop.schedule_at(arrival_times[0], lambda: arrive(0))
    loop.run()

    return _result(
        num_servers,
        n,
        completed,
        0,
        loop.now if n else 0.0,
        buffers,
        waiting_buffers,
        busy_time,
        np.zeros(num_servers, dtype=np.int64),
        warmup,
        relative_error,
    )
