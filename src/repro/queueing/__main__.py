"""Command-line entry point: ``python -m repro.queueing``.

Runs the excess-tail-latency-vs-offered-load sweep and prints the
table -- the quick interactive view of the ``latency_curves``
experiment.  To persist the artifact (``results/latency_curves.json``)
and regenerate EXPERIMENTS.md, use ``python -m repro.reports run
--only latency_curves`` / ``render`` instead.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.experiments import ExperimentConfig
from repro.experiments.latency import (
    DEFAULT_UTILIZATIONS,
    LATENCY_SCHEMES,
    format_latency,
    run_latency,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.queueing",
        description="Excess p99/p999 latency vs offered load per scheme.",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(LATENCY_SCHEMES),
        help="partitioner spec strings to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--utilizations",
        nargs="+",
        type=float,
        default=list(DEFAULT_UTILIZATIONS),
        metavar="RHO",
        help="offered loads in (0, 1) (default: %(default)s)",
    )
    parser.add_argument(
        "--dataset",
        default="WP",
        help="Table I dataset symbol for the key stream (default: WP)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="message-count multiplier (default 1.0 = 200k per cell)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_PARALLEL or cpu count; "
        "results are identical at any job count)",
    )
    args = parser.parse_args(argv)

    for rho in args.utilizations:
        if not 0.0 < rho < 1.0:
            parser.error(f"utilizations must be in (0, 1), got {rho}")

    config = ExperimentConfig(scale=args.scale, seed=args.seed, jobs=args.jobs)
    # wall-clock here times the sweep for the human at the terminal; no
    # simulated quantity depends on it.
    start = time.time()  # repro: noqa[REPRO002]
    rows = run_latency(
        config,
        utilizations=tuple(args.utilizations),
        schemes=tuple(args.schemes),
        dataset=args.dataset,
    )
    print(format_latency(rows))
    print(f"[latency sweep completed in {time.time() - start:.1f}s]")  # repro: noqa[REPRO002]
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
