"""``repro.queueing``: the queueing-aware tail-latency evaluation layer.

Everything else in the repo measures load-*count* imbalance; a
production operator asks what a partitioning scheme buys in **p99
latency at 80% utilization**.  This package answers that question on
top of the deterministic :class:`~repro.core.engine.EventLoop`:

* :mod:`~repro.queueing.arrivals` -- seeded arrival processes
  (Poisson, deterministic, trace replay) and the closed-loop
  think-time population descriptor;
* :mod:`~repro.queueing.service` -- service-time distributions
  (exponential, deterministic, bimodal) with exact mean/scv;
* :mod:`~repro.queueing.latency` -- the mergeable bounded-relative-
  error percentile sketch sojourn times land in;
* :mod:`~repro.queueing.simulator` -- bounded per-worker FIFO queues
  driven by any registered partitioner, plus the shared-queue M/G/c
  station used for validation;
* :mod:`~repro.queueing.analytic` -- the M/M/1 / Pollaczek-Khinchine /
  Erlang-C closed forms the simulator is tested against.

``python -m repro.queueing`` runs the latency-vs-offered-load sweep
from the command line; ``repro.experiments.latency`` wires the same
sweep into the artifact pipeline (``results/latency_curves.json``).
"""

from repro.queueing.analytic import (
    erlang_c,
    machine_repairman_distribution,
    machine_repairman_mean_sojourn,
    machine_repairman_throughput,
    machine_repairman_utilization,
    mg1_mean_waiting,
    mm1_mean_sojourn,
    mm1_mean_waiting,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_mean_waiting,
)
from repro.queueing.arrivals import (
    ArrivalProcess,
    ClosedLoopPopulation,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.queueing.service import (
    BimodalService,
    DeterministicService,
    ExponentialService,
    ServiceTimeDistribution,
)
from repro.queueing.simulator import (
    QueueingResult,
    simulate_closed_loop,
    simulate_mmc,
    simulate_queueing,
)

__all__ = [
    "ArrivalProcess",
    "ClosedLoopPopulation",
    "PoissonArrivals",
    "DeterministicArrivals",
    "TraceArrivals",
    "ServiceTimeDistribution",
    "ExponentialService",
    "DeterministicService",
    "BimodalService",
    "LatencyStore",
    "DEFAULT_RELATIVE_ERROR",
    "QueueingResult",
    "simulate_queueing",
    "simulate_closed_loop",
    "simulate_mmc",
    "erlang_c",
    "machine_repairman_distribution",
    "machine_repairman_utilization",
    "machine_repairman_throughput",
    "machine_repairman_mean_sojourn",
    "mm1_mean_waiting",
    "mm1_mean_sojourn",
    "mm1_sojourn_quantile",
    "mg1_mean_waiting",
    "mmc_mean_waiting",
    "mmc_mean_sojourn",
]
