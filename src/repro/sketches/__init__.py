"""Streaming summaries used by the Section VI applications.

* :class:`SpaceSaving` -- the counter-based heavy-hitters sketch of
  Metwally et al. [23], with the mergeability of Berinde et al. [2]
  that the paper's error analysis relies on.
* :class:`StreamingHistogram` -- the Ben-Haim & Tom-Tov approximate
  histogram [1] underlying the streaming parallel decision tree.
"""

from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.histogram import StreamingHistogram

__all__ = ["SpaceSaving", "StreamingHistogram"]
