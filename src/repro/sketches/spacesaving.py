"""SPACESAVING: approximate frequent items in bounded space.

Metwally, Agrawal & El Abbadi (ICDT 2005).  Maintains ``capacity``
counters; a new item evicts the counter with the minimum estimate and
inherits its count as overestimation error.  Guarantees, for a stream
of N items:

* every item with true frequency > N / capacity is tracked;
* for every tracked item, ``true <= estimate <= true + N / capacity``.

Berinde et al. showed summaries are mergeable with additive error --
the property Section VI-C uses: with shuffle grouping the merged error
grows with the number of workers W, while PKG merges exactly **two**
summaries per key, making the error independent of W.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class SpaceSaving:
    """A SPACESAVING summary with ``capacity`` counters.

    Estimates are stored as ``(count, error)`` pairs: ``count`` is the
    upper-bound estimate and ``error`` the maximum overestimation
    inherited at insertion time, so ``count - error`` lower-bounds the
    true frequency.
    """

    __slots__ = ("capacity", "_counts", "_errors", "_total")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._counts: Dict = {}
        self._errors: Dict = {}
        self._total = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, item) -> bool:
        return item in self._counts

    @property
    def total(self) -> int:
        """Number of stream items offered so far (N)."""
        return self._total

    def offer(self, item, count: int = 1) -> None:
        """Feed ``count`` occurrences of ``item`` into the summary."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._total += count
        counts = self._counts
        if item in counts:
            counts[item] += count
            return
        if len(counts) < self.capacity:
            counts[item] = count
            self._errors[item] = 0
            return
        # Evict the minimum counter; the newcomer inherits its count as
        # overestimation error.
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[item] = floor + count
        self._errors[item] = floor

    def extend(self, items: Iterable) -> None:
        """Offer every element of an iterable."""
        for item in items:
            self.offer(item)

    def estimate(self, item) -> int:
        """Upper-bound frequency estimate (0 if untracked)."""
        return self._counts.get(item, 0)

    def error(self, item) -> int:
        """Maximum overestimation of ``item``'s estimate.

        For untracked items the estimate 0 may *under*-estimate by up to
        the minimum counter value, which is returned here.
        """
        if item in self._errors:
            return self._errors[item]
        return self.min_count()

    def guaranteed_count(self, item) -> int:
        """Lower bound on the true frequency of ``item``."""
        if item in self._counts:
            return self._counts[item] - self._errors[item]
        return 0

    def min_count(self) -> int:
        """The minimum counter value (0 while under capacity)."""
        if len(self._counts) < self.capacity:
            return 0
        return min(self._counts.values())

    def top_k(self, k: int) -> List[Tuple[object, int]]:
        """The ``k`` items with the largest estimates, descending."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def heavy_hitters(self, phi: float) -> List[Tuple[object, int]]:
        """Items guaranteed to exceed a ``phi`` fraction of the stream."""
        if not 0.0 < phi < 1.0:
            raise ValueError(f"phi must be in (0, 1), got {phi}")
        threshold = phi * self._total
        return sorted(
            (
                (item, count)
                for item, count in self._counts.items()
                if count - self._errors[item] > threshold
            ),
            key=lambda kv: -kv[1],
        )

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Merge with another summary (Berinde et al. style).

        For each item in either summary, the merged estimate sums each
        side's *upper bound*: the stored estimate where tracked, the
        side's minimum counter where not (an untracked item's true count
        never exceeds the minimum counter).  Errors are additive -- the
        ``sum of Delta_j`` term of Section VI-C -- so the merged
        invariant ``true <= estimate <= true + error`` is preserved.
        Items beyond capacity are truncated, keeping the largest.
        """
        capacity = max(self.capacity, other.capacity)
        merged = SpaceSaving(capacity)
        merged._total = self._total + other._total

        min_self, min_other = self.min_count(), other.min_count()
        union = set(self._counts) | set(other._counts)
        entries = []
        for item in union:
            count = (
                self._counts.get(item, min_self)
                + other._counts.get(item, min_other)
            )
            error = self.error(item) + other.error(item)
            entries.append((count, error, item))
        entries.sort(key=lambda ce: (-ce[0], repr(ce[2])))

        for count, error, item in entries[:capacity]:
            merged._counts[item] = count
            merged._errors[item] = min(error, count)
        return merged

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, tracked={len(self)}, "
            f"total={self._total})"
        )
