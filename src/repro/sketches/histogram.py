"""Ben-Haim & Tom-Tov streaming histograms (JMLR 2010).

The building block of the streaming parallel decision tree
(Section VI-B): a fixed budget of ``max_bins`` (centroid, count) pairs
summarises an unbounded stream of reals.  Supports the three operations
the SPDT algorithm needs:

* ``update(p)``    -- absorb one point, merging the two closest bins
  when over budget;
* ``merge(other)`` -- combine two histograms (what the aggregator does
  with per-worker partials);
* ``sum(b)`` / ``uniform(B)`` -- interpolated rank queries and candidate
  split points for the tree-growing procedure.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple


class StreamingHistogram:
    """A bounded-size approximate histogram over a stream of reals."""

    __slots__ = ("max_bins", "_centroids", "_counts", "_total")

    def __init__(self, max_bins: int = 64):
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = int(max_bins)
        self._centroids: List[float] = []
        self._counts: List[float] = []
        self._total = 0.0

    def __len__(self) -> int:
        return len(self._centroids)

    @property
    def total(self) -> float:
        """Total weight of points absorbed."""
        return self._total

    @property
    def bins(self) -> List[Tuple[float, float]]:
        """The (centroid, count) pairs, sorted by centroid."""
        return list(zip(self._centroids, self._counts))

    def update(self, point: float, weight: float = 1.0) -> None:
        """Absorb one point (procedure *Update* of the paper)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        point = float(point)
        if math.isnan(point):
            raise ValueError("cannot add NaN to a histogram")
        self._total += weight
        idx = bisect.bisect_left(self._centroids, point)
        if idx < len(self._centroids) and self._centroids[idx] == point:
            self._counts[idx] += weight
            return
        self._centroids.insert(idx, point)
        self._counts.insert(idx, weight)
        if len(self._centroids) > self.max_bins:
            self._compress(self.max_bins)

    def extend(self, points: Iterable[float]) -> None:
        for p in points:
            self.update(p)

    def _compress(self, target: int) -> None:
        """Repeatedly merge the two closest bins down to ``target``."""
        cents, counts = self._centroids, self._counts
        while len(cents) > target:
            gaps = [cents[i + 1] - cents[i] for i in range(len(cents) - 1)]
            i = gaps.index(min(gaps))
            w = counts[i] + counts[i + 1]
            cents[i] = (cents[i] * counts[i] + cents[i + 1] * counts[i + 1]) / w
            counts[i] = w
            del cents[i + 1]
            del counts[i + 1]

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Combine two histograms (procedure *Merge*).

        The result honours ``max(self.max_bins, other.max_bins)``.
        """
        merged = StreamingHistogram(max(self.max_bins, other.max_bins))
        pairs = sorted(
            zip(
                self._centroids + other._centroids,
                self._counts + other._counts,
            )
        )
        for c, w in pairs:
            if merged._centroids and merged._centroids[-1] == c:
                merged._counts[-1] += w
            else:
                merged._centroids.append(c)
                merged._counts.append(w)
        merged._total = self._total + other._total
        merged._compress(merged.max_bins)
        return merged

    def sum(self, b: float) -> float:
        """Approximate number of points ``<= b`` (procedure *Sum*).

        Uses the paper's trapezoidal interpolation within the bin
        straddling ``b``.
        """
        cents, counts = self._centroids, self._counts
        if not cents:
            return 0.0
        if b < cents[0]:
            return 0.0
        if b >= cents[-1]:
            return self._total
        i = bisect.bisect_right(cents, b) - 1
        # Points strictly left of bin i contribute fully; bin i and
        # i+1 contribute the trapezoid between their centroids.
        s = sum(counts[:i]) + counts[i] / 2.0
        ci, cj = cents[i], cents[i + 1]
        mi, mj = counts[i], counts[i + 1]
        if cj == ci:
            return s
        frac = (b - ci) / (cj - ci)
        mb = mi + (mj - mi) * frac
        s += (mi + mb) * frac / 2.0
        return min(s, self._total)

    def uniform(self, num_points: int) -> List[float]:
        """Candidate split points at uniform rank quantiles.

        Returns up to ``num_points - 1`` boundaries ``u_j`` such that
        roughly ``total / num_points`` points fall between consecutive
        boundaries (procedure *Uniform*) -- the split candidates the
        decision tree evaluates.
        """
        if num_points < 2:
            raise ValueError(f"num_points must be >= 2, got {num_points}")
        if not self._centroids:
            return []
        out = []
        for j in range(1, num_points):
            target = self._total * j / num_points
            out.append(self._quantile_at(target))
        return out

    def _quantile_at(self, target: float) -> float:
        """Invert :meth:`sum` by binary search over the value range."""
        lo, hi = self._centroids[0], self._centroids[-1]
        if target <= 0:
            return lo
        if target >= self._total:
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.sum(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def mean(self) -> float:
        """Mean of the summarised stream (exact for the centroids)."""
        if self._total == 0:
            return 0.0
        return sum(c * w for c, w in zip(self._centroids, self._counts)) / self._total

    def memory_bins(self) -> int:
        """Current number of (centroid, count) pairs held."""
        return len(self._centroids)

    def __repr__(self) -> str:
        return (
            f"StreamingHistogram(max_bins={self.max_bins}, bins={len(self)}, "
            f"total={self._total})"
        )
