"""Local load estimation: the paper's practical technique (Section III-B).

Each source keeps a private load-estimate vector counting only the
messages *it* has sent to each worker.  Correctness argument from the
paper: the true load is the sum of per-source loads,
``Li(t) = sum_j Li^j(t)``, so if every source balances its own portion,
the global maximum (and hence the imbalance) is bounded by the sum of
the local maxima (local imbalances).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.load.base import LoadEstimator, WorkerLoadRegistry

#: load sentinel written into masked workers' slots: far above any real
#: count (streams are < 2^40 messages) yet still int64-safe under the
#: +1 increments of on_send.
MASKED_LOAD = 2**62


class LocalLoadEstimator(LoadEstimator):
    """Per-source local load vector; no communication with workers.

    Parameters
    ----------
    num_workers:
        Size of the downstream worker set.
    registry:
        Optional ground-truth registry.  When given, sends are also
        recorded there so that simulations can measure the *true*
        imbalance; the estimator never reads it (that would be
        probing -- see :class:`ProbingLoadEstimator`).
    """

    __slots__ = ("local", "registry", "_masked")

    def __init__(self, num_workers: int, registry: WorkerLoadRegistry = None):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.local = np.zeros(num_workers, dtype=np.int64)
        self.registry = registry
        self._masked: Tuple[int, ...] = ()

    def estimates(self, now: float = 0.0) -> np.ndarray:
        return self.local

    def on_send(self, worker: int, now: float = 0.0) -> None:
        self.local[worker] += 1
        if self.registry is not None:
            self.registry.add(worker)

    def local_imbalance(self) -> float:
        """Imbalance of this source's own portion of the stream."""
        return float(self.local.max() - self.local.mean())

    def reset(self) -> None:
        self.local[:] = 0
        self._apply_mask()

    def mask_workers(self, workers: Sequence[int]) -> None:
        """Poison dead workers' slots so select() avoids them naturally.

        The sentinel survives :meth:`reset` (a masked worker stays
        masked for the rest of the run) and dwarfs every real count, so
        a d-choice draw whose candidates include a dead worker resolves
        to a live one whenever the candidate set has any.
        """
        self._masked = tuple(int(w) for w in workers)
        self._apply_mask()

    def _apply_mask(self) -> None:
        if self._masked:
            self.local[list(self._masked)] = MASKED_LOAD

    def __repr__(self) -> str:
        return f"LocalLoadEstimator(num_workers={self.local.size})"
