"""Local load estimation with periodic probing ("LP" in the paper).

Every ``period`` time units the source replaces its local estimate
vector with the true worker loads, removing any accumulated estimation
drift.  The paper's finding (Q2, Figure 3): probing does **not** improve
balance over purely local estimation, so the probing overhead is not
worth paying.  This class exists to reproduce that negative result and
for the probing-period ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.load.base import WorkerLoadRegistry
from repro.load.local import LocalLoadEstimator


class ProbingLoadEstimator(LocalLoadEstimator):
    """Local estimator that re-syncs with true loads every ``period``.

    Parameters
    ----------
    num_workers:
        Size of the downstream worker set.
    registry:
        Ground-truth registry that probes read (and sends update).
    period:
        Time between probes, in stream-time units.  The paper's "L5P1"
        probes every simulated minute.
    """

    __slots__ = ("period", "_next_probe", "probes")

    def __init__(
        self,
        num_workers: int,
        registry: WorkerLoadRegistry,
        period: float,
    ) -> None:
        if registry is None:
            raise ValueError("probing requires a ground-truth registry to probe")
        if period <= 0:
            raise ValueError(f"probe period must be positive, got {period}")
        super().__init__(num_workers, registry)
        self.period = float(period)
        self._next_probe = self.period
        self.probes = 0

    def estimates(self, now: float = 0.0) -> np.ndarray:
        if now >= self._next_probe:
            self.local = self.registry.loads.copy()
            self.probes += 1
            # Skip ahead past any idle gap so probes stay periodic.
            while self._next_probe <= now:
                self._next_probe += self.period
        return self.local

    def reset(self) -> None:
        super().reset()
        self._next_probe = self.period
        self.probes = 0

    def __repr__(self) -> str:
        return (
            f"ProbingLoadEstimator(num_workers={self.local.size}, "
            f"period={self.period})"
        )
