"""Global load oracle: the idealised "G" estimator.

Reads the true worker loads on every decision.  In a real DSPE this
would require continuous worker-to-source communication; the paper uses
it as the gold standard against which local estimation is judged (Q2).
"""

from __future__ import annotations

import numpy as np

from repro.load.base import LoadEstimator, WorkerLoadRegistry


class GlobalOracleEstimator(LoadEstimator):
    """Estimator with perfect, instantaneous knowledge of worker loads.

    Multiple sources share a single :class:`WorkerLoadRegistry`;
    each send is immediately visible to every other source.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: WorkerLoadRegistry):
        self.registry = registry

    def estimates(self, now: float = 0.0) -> np.ndarray:
        return self.registry.loads

    def on_send(self, worker: int, now: float = 0.0) -> None:
        self.registry.add(worker)

    def __repr__(self) -> str:
        return f"GlobalOracleEstimator(num_workers={self.registry.num_workers})"
