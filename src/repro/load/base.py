"""Interfaces for worker-load tracking and estimation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np


class WorkerLoadRegistry:
    """Ground-truth load of each worker: the ``Li(t)`` of Section II.

    In a simulation this is the central bookkeeping that accumulates
    every delivery from every source; a :class:`GlobalOracleEstimator`
    reads it directly, while local estimators only consult it when
    probing.  Load is message count, matching the paper's definition
    ("the load of a worker i is the number of messages handled by the
    worker up to t").
    """

    __slots__ = ("loads",)

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.loads = np.zeros(num_workers, dtype=np.int64)

    @property
    def num_workers(self) -> int:
        return int(self.loads.size)

    def add(self, worker: int, amount: int = 1) -> None:
        """Record ``amount`` messages delivered to ``worker``."""
        self.loads[worker] += amount

    def add_chunk(self, counts: np.ndarray) -> None:
        """Record a whole routed chunk: ``counts[w]`` messages to worker w."""
        self.loads += np.asarray(counts, dtype=np.int64)

    def load(self, worker: int) -> int:
        return int(self.loads[worker])

    def snapshot(self) -> np.ndarray:
        """A copy of the current load vector."""
        return self.loads.copy()

    def total(self) -> int:
        return int(self.loads.sum())

    def imbalance(self) -> float:
        """Current imbalance ``I(t) = max(Li) - avg(Li)``."""
        return float(self.loads.max() - self.loads.mean())

    def reset(self) -> None:
        self.loads[:] = 0


class LoadEstimator(ABC):
    """A source-side view of worker loads used to make routing choices.

    Every estimator supports two operations: :meth:`select` (pick the
    least-loaded of a candidate set, as in the Greedy-d process) and
    :meth:`on_send` (account for a message the source just routed).
    Implementations differ in which load vector :meth:`select` reads.
    """

    @abstractmethod
    def estimates(self, now: float = 0.0) -> np.ndarray:
        """The load vector this estimator currently believes in."""

    @abstractmethod
    def on_send(self, worker: int, now: float = 0.0) -> None:
        """Account for one message sent by this source to ``worker``.

        The chunked engine never calls this per message when it can
        avoid it: estimators whose state is a plain count vector (see
        :func:`vectorizable_loads`) are updated in place by the chunk
        kernels, with the ground-truth registry bulk-updated once per
        chunk via :meth:`WorkerLoadRegistry.add_chunk`.
        """

    def select(self, candidates: Sequence[int], now: float = 0.0) -> int:
        """The least-loaded worker among ``candidates``.

        Ties break toward the earliest candidate; candidate order is
        already pseudo-random (it comes from independent hashes), so no
        systematic bias results.
        """
        view = self.estimates(now)
        best = candidates[0]
        best_load = view[best]
        for c in candidates[1:]:
            load = view[c]
            if load < best_load:
                best, best_load = c, load
        return int(best)

    def reset(self) -> None:  # pragma: no cover - overridden where stateful
        """Forget accumulated state (default: nothing to forget)."""

    def mask_workers(self, workers: Sequence[int]) -> None:
        """Make ``workers`` maximally unattractive to :meth:`select`.

        Reroute recovery calls this when workers die mid-stream so
        load-aware schemes *prefer* the survivors on their own (the
        engine's deterministic remap guarantees correctness either
        way; this only improves degraded balance).  The default is a
        no-op -- estimators without a poisonable load vector rely on
        the remap alone.
        """


def vectorizable_loads(
    estimator: LoadEstimator,
) -> Tuple[Optional[np.ndarray], Optional[WorkerLoadRegistry]]:
    """The mutable load vector behind ``estimator``, if chunk-safe.

    Returns ``(loads, mirror_registry)`` when the estimator's selection
    state is a plain int64 vector that a chunk kernel may read and
    update in place -- exactly :class:`~repro.load.local.LocalLoadEstimator`
    (vector = its private ``local``; ``mirror_registry`` is the
    ground-truth registry to bulk-update per chunk, or None) and
    :class:`~repro.load.oracle.GlobalOracleEstimator` (vector = the
    shared registry's loads, already ground truth).  Anything else --
    probing estimators whose view depends on ``now``, custom
    estimators -- returns ``(None, None)`` and must be driven through
    the per-message interface.
    """
    from repro.load.local import LocalLoadEstimator
    from repro.load.oracle import GlobalOracleEstimator

    if type(estimator) is LocalLoadEstimator:
        return estimator.local, estimator.registry
    if type(estimator) is GlobalOracleEstimator:
        return estimator.registry.loads, None
    return None, None
