"""Load estimation strategies for power-of-two-choices routing.

PoTC needs to know worker loads to pick the lesser-loaded candidate.
The paper's second contribution (Section III-B) is that a purely *local*
estimate -- each source tracking only the load it has generated itself
-- performs indistinguishably from a global oracle.  This package
provides:

* :class:`WorkerLoadRegistry` -- ground-truth worker loads (the
  simulator's bookkeeping, also what a global oracle reads);
* :class:`GlobalOracleEstimator` -- the idealised "G" technique;
* :class:`LocalLoadEstimator` -- the practical "L" technique;
* :class:`ProbingLoadEstimator` -- "LP": local estimation plus periodic
  probing of true loads (shown by the paper to add nothing).
"""

from repro.load.base import LoadEstimator, WorkerLoadRegistry, vectorizable_loads
from repro.load.oracle import GlobalOracleEstimator
from repro.load.local import LocalLoadEstimator
from repro.load.probing import ProbingLoadEstimator

__all__ = [
    "LoadEstimator",
    "WorkerLoadRegistry",
    "vectorizable_loads",
    "GlobalOracleEstimator",
    "LocalLoadEstimator",
    "ProbingLoadEstimator",
]
