"""``repro.reports``: the experiment artifact pipeline.

Persists every experiment harness run as a versioned JSON artifact,
renders EXPERIMENTS.md from the artifacts on disk, diffs two artifact
sets for metric regressions, and snapshots per-PR perf numbers into
``BENCH_*.json`` at the repo root.

Library surface::

    from repro.reports import (
        run_experiments, load_artifacts, render_markdown, diff_artifacts,
    )

    artifacts = run_experiments(["table2"], reduced_config(0.1))
    print(render_markdown(artifacts))

CLI surface (see ``python -m repro.reports --help``)::

    python -m repro.reports run --scale 0.1      # results/*.json + BENCH
    python -m repro.reports render               # -> EXPERIMENTS.md
    python -m repro.reports render --check       # CI freshness gate
    python -m repro.reports diff old/ results/   # exit 1 on regression
    python -m repro.reports bench                # BENCH_partitioners.json
"""

from repro.reports.bench import (
    bench_partitioners,
    load_bench_snapshot,
    write_bench_snapshot,
)
from repro.reports.diffing import (
    DiffReport,
    MetricChange,
    diff_artifacts,
    load_artifact_set,
)
from repro.reports.harnesses import HARNESSES, ReportHarness, get_harness, harness_names
from repro.reports.pipeline import reduced_config, run_experiments
from repro.reports.render import is_stale, render_markdown, render_to_file
from repro.reports.schema import (
    SCHEMA_VERSION,
    ExperimentArtifact,
    Metric,
    RunManifest,
    SchemaError,
    load_artifact,
    load_artifacts,
    write_artifact,
)

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "RunManifest",
    "Metric",
    "ExperimentArtifact",
    "write_artifact",
    "load_artifact",
    "load_artifacts",
    "ReportHarness",
    "HARNESSES",
    "get_harness",
    "harness_names",
    "reduced_config",
    "run_experiments",
    "render_markdown",
    "render_to_file",
    "is_stale",
    "diff_artifacts",
    "load_artifact_set",
    "DiffReport",
    "MetricChange",
    "bench_partitioners",
    "write_bench_snapshot",
    "load_bench_snapshot",
]
