"""BENCH_*.json snapshots: the repo's perf trajectory.

Two suites, both written at the repo root so every PR's numbers are one
``git log -p BENCH_partitioners.json`` away:

* ``BENCH_partitioners.json`` -- raw routing throughput (keys/s) of
  every registered scheme on a fixed WP stream, measured by
  :func:`bench_partitioners` (also exposed as
  ``python -m repro.reports bench``);
* ``BENCH_experiments.json`` -- wall-clock duration of each experiment
  harness, recorded by ``python -m repro.reports run``.

The pytest-benchmark suite (``benchmarks/``) feeds the same writer via
its ``pytest_sessionfinish`` hook, so either entry point keeps the
trajectory accumulating.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.reports.schema import (
    BENCH_KIND,
    SCHEMA_VERSION,
    SchemaError,
    git_sha,
    jsonify,
)

__all__ = [
    "bench_partitioners",
    "write_bench_snapshot",
    "merge_bench_results",
    "load_bench_snapshot",
    "repo_root",
]


def repo_root() -> Path:
    """The repository root (``src/repro/reports`` -> three levels up)."""
    return Path(__file__).resolve().parents[3]


def bench_path(suite: str, directory=None) -> Path:
    base = Path(directory) if directory is not None else repo_root()
    return base / f"BENCH_{suite}.json"


def write_bench_snapshot(
    suite: str,
    results: Sequence[Dict],
    directory=None,
    created_utc: Optional[str] = None,
    source: str = "repro.reports",
) -> Path:
    """Write ``BENCH_<suite>.json`` with provenance and result entries.

    ``results`` is a list of dicts; each must at least carry ``name``.
    ``source`` records which harness produced the numbers (the report
    CLI or the pytest-benchmark suite) since both feed the same file.
    """
    import repro

    for entry in results:
        if not isinstance(entry, dict) or not entry.get("name"):
            raise SchemaError(f"bench result entries need a 'name': {entry!r}")
    if created_utc is None:
        from repro.reports.pipeline import utc_now_iso

        created_utc = utc_now_iso()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "suite": suite,
        "source": source,
        "manifest": {
            "git_sha": git_sha(),
            "created_utc": created_utc,
            "python_version": platform.python_version(),
            "numpy_version": np.__version__,
            "repro_version": repro.__version__,
        },
        "results": jsonify(sorted(results, key=lambda e: e["name"])),
    }
    path = bench_path(suite, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        raise SchemaError(
            f"bench suite {suite!r} contains non-finite values: {exc}"
        ) from exc
    path.write_text(text + "\n")
    return path


def merge_bench_results(
    suite: str, results: Sequence[Dict], directory=None
) -> List[Dict]:
    """Merge new entries into an existing snapshot's, matching by name.

    New entries win; entries only present in the existing
    ``BENCH_<suite>.json`` are preserved, so a *partial* benchmark run
    (one module, a ``-k`` subset) updates its own numbers without
    erasing the rest of the trajectory.  Missing or unreadable existing
    snapshots merge as empty.
    """
    merged = {}
    path = bench_path(suite, directory)
    if path.exists():
        try:
            for entry in load_bench_snapshot(path).get("results", []):
                if isinstance(entry, dict) and entry.get("name"):
                    merged[entry["name"]] = entry
        except SchemaError:
            pass
    for entry in results:
        merged[entry["name"]] = entry
    return list(merged.values())


def load_bench_snapshot(path) -> Dict:
    """Load and sanity-check a BENCH_*.json snapshot."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != BENCH_KIND:
        raise SchemaError(f"{path}: not a bench snapshot")
    if data.get("schema_version", 0) > SCHEMA_VERSION:
        raise SchemaError(f"{path}: schema_version newer than supported")
    return data


def bench_partitioners(
    num_messages: int = 200_000,
    num_workers: int = 10,
    seed: int = 42,
    dataset: str = "WP",
    schemes: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Route one fixed stream through every scheme and time it.

    Streams are routed through the chunked execution core
    (:func:`repro.core.engine.route_chunked`), i.e. the same path the
    simulations replay on.  Returns bench result entries (``name``,
    ``keys_per_second``, ``duration_seconds``, ``num_messages``)
    suitable for :func:`write_bench_snapshot`.
    """
    from repro.api import available_schemes, make_partitioner
    from repro.core.engine import route_chunked
    from repro.streams.datasets import get_dataset

    keys = get_dataset(dataset).stream(num_messages, seed=seed)
    results = []
    for scheme in schemes if schemes is not None else available_schemes():
        partitioner = make_partitioner(scheme, num_workers, seed=seed)
        start = time.perf_counter()
        route_chunked(keys, partitioner)
        duration = time.perf_counter() - start
        results.append(
            {
                "name": scheme,
                "keys_per_second": keys.size / duration if duration > 0 else 0.0,
                "duration_seconds": duration,
                "num_messages": int(keys.size),
                "num_workers": num_workers,
            }
        )
    return results
