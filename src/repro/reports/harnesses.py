"""Wiring between the experiment harnesses and the artifact schema.

Each paper table/figure gets one :class:`ReportHarness` that knows how
to run the underlying ``run_*`` function, flatten its dataclass rows
into JSON records, extract the headline ``summary`` (via the
experiment module's own ``summarize_*``), derive the flat directed
metric list used by ``repro.reports diff``, and re-render the
paper-style text table from persisted records (used by the
EXPERIMENTS.md renderer, so rendering never needs to re-run anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments import (
    ExperimentConfig,
    format_dchoices,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5a,
    format_fig5b,
    format_jaccard,
    format_latency,
    format_probing,
    format_table1,
    format_table2,
    run_dchoices_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_jaccard,
    run_latency,
    run_probing_ablation,
    run_table1,
    run_table2,
    summarize_dchoices,
    summarize_fig2,
    summarize_fig3,
    summarize_fig4,
    summarize_fig5a,
    summarize_fig5b,
    summarize_jaccard,
    summarize_latency,
    summarize_probing,
    summarize_table1,
    summarize_table2,
)
from repro.experiments.extras import DChoicesRow, JaccardRow, ProbingRow
from repro.experiments.fig2 import Fig2Row
from repro.experiments.latency import LatencyRow
from repro.experiments.fig3 import Fig3Series
from repro.experiments.fig4 import Fig4Row
from repro.experiments.fig5a import Fig5aRow
from repro.experiments.fig5b import Fig5bRow
from repro.experiments.table1 import Table1Row
from repro.experiments.table2 import Table2Row
from repro.reports.schema import Metric, jsonify

__all__ = ["ReportHarness", "HARNESSES", "get_harness", "harness_names"]


@dataclass(frozen=True)
class ReportHarness:
    """One experiment's adapter onto the artifact schema."""

    name: str
    paper_section: str
    title: str
    run: Callable[[ExperimentConfig], List[Any]]
    summarize: Callable[[List[Any]], Dict[str, Any]]
    format: Callable[[List[Any]], str]
    metrics: Callable[[List[Any]], List[Metric]]
    row_type: type
    #: record fields that must come back as numpy arrays on rehydrate
    array_fields: Tuple[str, ...] = ()

    def records(self, rows: Sequence[Any]) -> List[Dict[str, Any]]:
        return [jsonify(row) for row in rows]

    def rehydrate(self, records: Sequence[Dict[str, Any]]) -> List[Any]:
        """Rebuild dataclass rows from persisted JSON records."""
        rows = []
        for record in records:
            kwargs = dict(record)
            for name in self.array_fields:
                if name in kwargs:
                    kwargs[name] = np.asarray(kwargs[name], dtype=float)
            rows.append(self.row_type(**kwargs))
        return rows


def _metrics_table1(rows: List[Table1Row]) -> List[Metric]:
    return [Metric(f"p1_rel_err[{r.symbol}]", r.p1_relative_error) for r in rows]


def _metrics_table2(rows: List[Table2Row]) -> List[Metric]:
    return [
        Metric(
            f"avg_imbalance[{r.dataset},W={r.num_workers},{r.scheme}]",
            r.average_imbalance,
        )
        for r in rows
    ]


def _metrics_fig2(rows: List[Fig2Row]) -> List[Metric]:
    return [
        Metric(
            f"imbalance_fraction[{r.dataset},W={r.num_workers},{r.technique}]",
            r.average_imbalance_fraction,
        )
        for r in rows
    ]


def _metrics_fig3(series: List[Fig3Series]) -> List[Metric]:
    out = []
    for s in series:
        key = f"{s.dataset},W={s.num_workers},{s.technique}"
        out.append(Metric(f"mean_fraction[{key}]", s.mean_fraction))
        out.append(Metric(f"final_fraction[{key}]", s.final_fraction))
    return out


def _metrics_fig4(rows: List[Fig4Row]) -> List[Metric]:
    return [
        Metric(
            f"imbalance_fraction[{r.dataset},{r.split},S={r.num_sources},"
            f"W={r.num_workers}]",
            r.average_imbalance_fraction,
        )
        for r in rows
    ]


def _metrics_fig5a(rows: List[Fig5aRow]) -> List[Metric]:
    out = []
    for r in rows:
        key = f"{r.scheme},delay={r.cpu_delay * 1e3:g}ms"
        out.append(Metric(f"throughput[{key}]", r.throughput, "higher"))
        out.append(Metric(f"mean_latency[{key}]", r.mean_latency))
        out.append(Metric(f"p99_latency[{key}]", r.p99_latency))
        out.append(Metric(f"excess_p99[{key}]", r.excess_p99_latency))
    return out


def _metrics_fig5b(rows: List[Fig5bRow]) -> List[Metric]:
    out = []
    for r in rows:
        key = f"{r.scheme},T={r.aggregation_period:g}s"
        out.append(Metric(f"throughput[{key}]", r.throughput, "higher"))
        out.append(Metric(f"excess_p99[{key}]", r.excess_p99_latency))
        out.append(
            Metric(f"avg_memory_counters[{key}]", r.average_memory_counters)
        )
    return out


def _metrics_jaccard(rows: List[JaccardRow]) -> List[Metric]:
    (r,) = rows
    return [
        Metric("imbalance_fraction[G]", r.imbalance_fraction_global),
        Metric(f"imbalance_fraction[L{r.num_sources}]", r.imbalance_fraction_local),
    ]


def _metrics_dchoices(rows: List[DChoicesRow]) -> List[Metric]:
    return [
        Metric(
            f"imbalance_fraction[d={r.num_choices}]", r.average_imbalance_fraction
        )
        for r in rows
    ]


def _metrics_probing(rows: List[ProbingRow]) -> List[Metric]:
    return [
        Metric(f"imbalance_fraction[{r.label}]", r.average_imbalance_fraction)
        for r in rows
    ]


def _metrics_latency(rows: List[LatencyRow]) -> List[Metric]:
    out = []
    for r in rows:
        key = f"{r.scheme},rho={r.utilization:g}"
        out.append(Metric(f"excess_p99[{key}]", r.excess_p99))
        out.append(Metric(f"excess_p999[{key}]", r.excess_p999))
    return out


def _as_list(fn):
    """Wrap a single-row runner so every harness returns a list."""

    def run(config):
        return [fn(config)]

    return run


def _first(fn):
    """Wrap a single-row formatter/summarizer to take the row list."""

    def call(rows):
        return fn(rows[0])

    return call


HARNESSES: Dict[str, ReportHarness] = {
    h.name: h
    for h in (
        ReportHarness(
            name="table1",
            paper_section="Table I",
            title="Datasets: paper statistics vs generated streams",
            run=run_table1,
            summarize=summarize_table1,
            format=format_table1,
            metrics=_metrics_table1,
            row_type=Table1Row,
        ),
        ReportHarness(
            name="table2",
            paper_section="Table II",
            title="Average imbalance: PKG vs greedy/PoTC/hashing",
            run=run_table2,
            summarize=summarize_table2,
            format=format_table2,
            metrics=_metrics_table2,
            row_type=Table2Row,
        ),
        ReportHarness(
            name="fig2",
            paper_section="Figure 2",
            title="Imbalance fraction vs workers: H vs G vs L5..L20",
            run=run_fig2,
            summarize=summarize_fig2,
            format=format_fig2,
            metrics=_metrics_fig2,
            row_type=Fig2Row,
        ),
        ReportHarness(
            name="fig3",
            paper_section="Figure 3",
            title="Imbalance fraction through time: G vs L5 vs L5P1",
            run=run_fig3,
            summarize=summarize_fig3,
            format=format_fig3,
            metrics=_metrics_fig3,
            row_type=Fig3Series,
            array_fields=("hours", "imbalance_fraction"),
        ),
        ReportHarness(
            name="fig4",
            paper_section="Figure 4",
            title="Uniform vs skewed source splits on graph streams",
            run=run_fig4,
            summarize=summarize_fig4,
            format=format_fig4,
            metrics=_metrics_fig4,
            row_type=Fig4Row,
        ),
        ReportHarness(
            name="fig5a",
            paper_section="Figure 5(a)",
            title="Cluster throughput and latency vs per-key CPU delay",
            run=run_fig5a,
            summarize=summarize_fig5a,
            format=format_fig5a,
            metrics=_metrics_fig5a,
            row_type=Fig5aRow,
        ),
        ReportHarness(
            name="fig5b",
            paper_section="Figure 5(b)",
            title="Throughput vs memory across aggregation periods",
            run=run_fig5b,
            summarize=summarize_fig5b,
            format=format_fig5b,
            metrics=_metrics_fig5b,
            row_type=Fig5bRow,
        ),
        ReportHarness(
            name="jaccard",
            paper_section="Section VII-B (Q2)",
            title="Routing agreement of global vs local estimation",
            run=_as_list(run_jaccard),
            summarize=_first(summarize_jaccard),
            format=_first(format_jaccard),
            metrics=_metrics_jaccard,
            row_type=JaccardRow,
        ),
        ReportHarness(
            name="dchoices",
            paper_section="Section III (Greedy-d)",
            title="Ablation: number of choices d",
            run=run_dchoices_ablation,
            summarize=summarize_dchoices,
            format=format_dchoices,
            metrics=_metrics_dchoices,
            row_type=DChoicesRow,
        ),
        ReportHarness(
            name="probing",
            paper_section="Section VII-B (Q2, probing)",
            title="Ablation: probing frequency",
            run=run_probing_ablation,
            summarize=summarize_probing,
            format=format_probing,
            metrics=_metrics_probing,
            row_type=ProbingRow,
        ),
        ReportHarness(
            name="latency_curves",
            paper_section="Beyond the paper (queueing)",
            title="Excess p99/p999 sojourn vs offered load per scheme",
            run=run_latency,
            summarize=summarize_latency,
            format=format_latency,
            metrics=_metrics_latency,
            row_type=LatencyRow,
        ),
    )
}


def harness_names() -> List[str]:
    """All report harness names, in paper order."""
    return list(HARNESSES)


def get_harness(name: str) -> ReportHarness:
    try:
        return HARNESSES[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(HARNESSES)}"
        ) from None
