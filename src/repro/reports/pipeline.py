"""Run experiment harnesses and persist their artifacts.

This is the engine behind ``python -m repro.reports run``: for each
requested experiment it runs the harness under one shared
:class:`ExperimentConfig`, wraps the rows into a validated
:class:`ExperimentArtifact`, writes it to the artifact directory, and
(optionally) records the per-experiment wall-clock durations as a
``BENCH_experiments.json`` snapshot at the repo root so the perf
trajectory accumulates PR over PR.
"""

from __future__ import annotations

import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import ExperimentConfig
from repro.reports.harnesses import get_harness, harness_names
from repro.reports.schema import (
    ExperimentArtifact,
    RunManifest,
    git_sha,
    write_artifact,
)

__all__ = ["reduced_config", "run_experiments", "utc_now_iso"]

#: Default artifact directory, relative to the repo root.
DEFAULT_RESULTS_DIR = "results"


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def reduced_config(scale: float, seed: int = 42) -> ExperimentConfig:
    """An :class:`ExperimentConfig` whose cost tracks ``scale``.

    At ``scale >= 1`` this is the paper-scale default configuration.
    Below 1 the simulated-cluster duration and the checkpoint/source
    grids shrink with the stream length (mirroring the benchmark
    suite's ``bench_config``) so a 0.1-scale run finishes in minutes.
    """
    if scale >= 1.0:
        return ExperimentConfig(scale=scale, seed=seed)
    return ExperimentConfig(
        scale=scale,
        seed=seed,
        sources=(5, 10),
        num_checkpoints=30,
        cluster_duration=max(6.0, 20.0 * scale),
        cluster_warmup=max(1.5, 5.0 * scale),
    )


def run_experiments(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    out_dir=DEFAULT_RESULTS_DIR,
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentArtifact]:
    """Run harnesses and write one artifact per experiment.

    Returns the artifacts keyed by experiment name.  ``progress`` (if
    given) receives one human-readable line per completed experiment.
    ``jobs`` (the ``--jobs`` CLI flag) overrides ``config.jobs``: each
    harness fans its grid cells out over that many worker processes via
    :mod:`repro.core.parallel`.  Artifacts are identical at any job
    count (modulo the wall-clock fields of their manifests).
    """
    config = config or ExperimentConfig()
    if jobs is not None:
        config = replace(config, jobs=int(jobs))
    names = list(names) if names else harness_names()
    sha = git_sha()
    created = utc_now_iso()
    artifacts: Dict[str, ExperimentArtifact] = {}
    for name in names:
        harness = get_harness(name)
        start = time.perf_counter()
        rows = harness.run(config)
        duration = time.perf_counter() - start
        artifact = ExperimentArtifact(
            experiment=harness.name,
            paper_section=harness.paper_section,
            manifest=RunManifest.from_config(
                config, created_utc=created, duration_seconds=duration, sha=sha
            ),
            records=harness.records(rows),
            summary=harness.summarize(rows),
            metrics=harness.metrics(rows),
        )
        path = write_artifact(artifact, out_dir)
        artifacts[name] = artifact
        if progress:
            progress(f"{name}: {len(rows)} records in {duration:.1f}s -> {path}")
    return artifacts


#: name of the suite-level entry in BENCH_experiments.json
SUITE_ENTRY = "_sweep"


def bench_entries_from_artifacts(
    artifacts: Dict[str, ExperimentArtifact],
    sweep_wall_clock_seconds: Optional[float] = None,
    jobs: Optional[int] = None,
) -> List[dict]:
    """Per-experiment wall-clock timings for ``BENCH_experiments.json``.

    When ``sweep_wall_clock_seconds`` is given, a suite-level entry
    (:data:`SUITE_ENTRY`) records the end-to-end sweep wall clock and
    the job count it ran with -- the perf-trajectory metric for the
    parallel executor.
    """
    entries = [
        {
            "name": name,
            "duration_seconds": artifacts[name].manifest.duration_seconds,
            "records": len(artifacts[name].records),
        }
        for name in sorted(artifacts)
    ]
    if sweep_wall_clock_seconds is not None:
        from repro.core.parallel import effective_jobs

        entries.append(
            {
                "name": SUITE_ENTRY,
                "sweep_wall_clock_seconds": float(sweep_wall_clock_seconds),
                # The width the sweep really ran at: pool-availability
                # corrected, so a sandboxed serial fallback is not
                # recorded as a parallel measurement.
                "jobs": effective_jobs(jobs),
                "experiments": len(artifacts),
            }
        )
    return entries
