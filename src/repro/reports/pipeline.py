"""Run experiment harnesses and persist their artifacts.

This is the engine behind ``python -m repro.reports run``: for each
requested experiment it runs the harness under one shared
:class:`ExperimentConfig`, wraps the rows into a validated
:class:`ExperimentArtifact`, writes it to the artifact directory, and
(optionally) records the per-experiment wall-clock durations as a
``BENCH_experiments.json`` snapshot at the repo root so the perf
trajectory accumulates PR over PR.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import ExperimentConfig
from repro.reports.harnesses import get_harness, harness_names
from repro.reports.schema import (
    ExperimentArtifact,
    RunManifest,
    git_sha,
    write_artifact,
)

__all__ = ["reduced_config", "run_experiments", "utc_now_iso"]

#: Default artifact directory, relative to the repo root.
DEFAULT_RESULTS_DIR = "results"


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def reduced_config(scale: float, seed: int = 42) -> ExperimentConfig:
    """An :class:`ExperimentConfig` whose cost tracks ``scale``.

    At ``scale >= 1`` this is the paper-scale default configuration.
    Below 1 the simulated-cluster duration and the checkpoint/source
    grids shrink with the stream length (mirroring the benchmark
    suite's ``bench_config``) so a 0.1-scale run finishes in minutes.
    """
    if scale >= 1.0:
        return ExperimentConfig(scale=scale, seed=seed)
    return ExperimentConfig(
        scale=scale,
        seed=seed,
        sources=(5, 10),
        num_checkpoints=30,
        cluster_duration=max(6.0, 20.0 * scale),
        cluster_warmup=max(1.5, 5.0 * scale),
    )


def run_experiments(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    out_dir=DEFAULT_RESULTS_DIR,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, ExperimentArtifact]:
    """Run harnesses and write one artifact per experiment.

    Returns the artifacts keyed by experiment name.  ``progress`` (if
    given) receives one human-readable line per completed experiment.
    """
    config = config or ExperimentConfig()
    names = list(names) if names else harness_names()
    sha = git_sha()
    created = utc_now_iso()
    artifacts: Dict[str, ExperimentArtifact] = {}
    for name in names:
        harness = get_harness(name)
        start = time.perf_counter()
        rows = harness.run(config)
        duration = time.perf_counter() - start
        artifact = ExperimentArtifact(
            experiment=harness.name,
            paper_section=harness.paper_section,
            manifest=RunManifest.from_config(
                config, created_utc=created, duration_seconds=duration, sha=sha
            ),
            records=harness.records(rows),
            summary=harness.summarize(rows),
            metrics=harness.metrics(rows),
        )
        path = write_artifact(artifact, out_dir)
        artifacts[name] = artifact
        if progress:
            progress(f"{name}: {len(rows)} records in {duration:.1f}s -> {path}")
    return artifacts


def bench_entries_from_artifacts(
    artifacts: Dict[str, ExperimentArtifact],
) -> List[dict]:
    """Per-experiment wall-clock timings for ``BENCH_experiments.json``."""
    return [
        {
            "name": name,
            "duration_seconds": artifacts[name].manifest.duration_seconds,
            "records": len(artifacts[name].records),
        }
        for name in sorted(artifacts)
    ]
