"""Command-line entry point: ``python -m repro.reports <subcommand>``.

Subcommands:

* ``run``    -- run experiment harnesses, write ``results/*.json``
  artifacts and a ``BENCH_experiments.json`` timing snapshot;
* ``render`` -- regenerate EXPERIMENTS.md from the artifacts on disk
  (``--check`` only verifies freshness, for CI);
* ``diff``   -- compare two artifact sets and exit non-zero on metric
  regressions beyond ``--tolerance``;
* ``bench``  -- measure raw partitioner routing throughput and write
  ``BENCH_partitioners.json``.

Typical PR flow::

    PYTHONPATH=src python -m repro.reports run --scale 0.1
    PYTHONPATH=src python -m repro.reports render
    PYTHONPATH=src python -m repro.reports diff <old-results> results
"""

from __future__ import annotations

import argparse
import sys

from repro.reports.bench import bench_partitioners, write_bench_snapshot
from repro.reports.diffing import diff_artifacts, load_artifact_set
from repro.reports.harnesses import harness_names
from repro.reports.pipeline import (
    DEFAULT_RESULTS_DIR,
    bench_entries_from_artifacts,
    reduced_config,
    run_experiments,
)
from repro.reports.render import DEFAULT_OUTPUT, is_stale, render_to_file
from repro.reports.schema import SchemaError, load_artifacts


def _parse_experiments(value: str):
    if value == "all":
        return None
    names = [n.strip() for n in value.split(",") if n.strip()]
    known = set(harness_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown experiments {unknown}; known: {', '.join(sorted(known))}"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reports",
        description="Persist, render, and compare experiment artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run harnesses and write artifacts")
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="stream-length multiplier; <1 also shrinks "
                            "cluster durations (default 1.0)")
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--experiments", type=_parse_experiments, default=None,
                       metavar="NAMES",
                       help="comma-separated subset, or 'all' (default: all of "
                            + ", ".join(harness_names()) + ")")
    run_p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for grid sweeps (default: "
                            "REPRO_PARALLEL or cpu count; results are "
                            "identical at any job count)")
    run_p.add_argument("--out", default=DEFAULT_RESULTS_DIR,
                       help="artifact directory (default: results/)")
    run_p.add_argument("--bench-out", default=".",
                       help="directory for BENCH_experiments.json "
                            "(default: repo root '.')")
    run_p.add_argument("--no-bench", action="store_true",
                       help="skip the BENCH_experiments.json snapshot")

    render_p = sub.add_parser("render", help="regenerate EXPERIMENTS.md")
    render_p.add_argument("--results", default=DEFAULT_RESULTS_DIR,
                          help="artifact directory (default: results/)")
    render_p.add_argument("--out", default=DEFAULT_OUTPUT,
                          help=f"output markdown file (default: {DEFAULT_OUTPUT})")
    render_p.add_argument("--check", action="store_true",
                          help="don't write; exit 1 if the file is stale "
                               "relative to the artifacts")

    diff_p = sub.add_parser("diff", help="compare two artifact sets")
    diff_p.add_argument("old", help="baseline artifact directory or file")
    diff_p.add_argument("new", help="candidate artifact directory or file")
    diff_p.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance before a metric counts as "
                             "regressed (default 0.25)")
    diff_p.add_argument("--verbose", action="store_true",
                        help="also list unchanged metrics")

    bench_p = sub.add_parser("bench", help="partitioner throughput snapshot")
    bench_p.add_argument("--messages", type=int, default=200_000)
    bench_p.add_argument("--workers", type=int, default=10)
    bench_p.add_argument("--seed", type=int, default=42)
    bench_p.add_argument("--out", default=".",
                         help="directory for BENCH_partitioners.json")
    return parser


def _cmd_run(args) -> int:
    import time

    config = reduced_config(args.scale, seed=args.seed)
    start = time.perf_counter()
    artifacts = run_experiments(
        names=args.experiments,
        config=config,
        out_dir=args.out,
        progress=lambda line: print(line, flush=True),
        jobs=args.jobs,
    )
    wall_clock = time.perf_counter() - start
    if not args.no_bench:
        path = write_bench_snapshot(
            "experiments",
            bench_entries_from_artifacts(
                artifacts, sweep_wall_clock_seconds=wall_clock, jobs=args.jobs
            ),
            directory=args.bench_out,
        )
        print(f"wrote {path} (sweep wall clock {wall_clock:.1f}s)")
    return 0


def _cmd_render(args) -> int:
    artifacts = load_artifacts(args.results)
    if not artifacts:
        print(f"no artifacts found in {args.results!r}; run "
              "`python -m repro.reports run` first", file=sys.stderr)
        return 2
    if args.check:
        if is_stale(artifacts, args.out):
            print(f"{args.out} is stale relative to {args.results}/; "
                  "regenerate with `python -m repro.reports render`",
                  file=sys.stderr)
            return 1
        print(f"{args.out} is up to date with {args.results}/")
        return 0
    path = render_to_file(artifacts, args.out)
    print(f"wrote {path} from {len(artifacts)} artifact(s)")
    return 0


def _cmd_diff(args) -> int:
    old = load_artifact_set(args.old)
    new = load_artifact_set(args.new)
    report = diff_artifacts(old, new, tolerance=args.tolerance)
    print(report.format(verbose=args.verbose))
    return 1 if report.has_regressions else 0


def _cmd_bench(args) -> int:
    results = bench_partitioners(
        num_messages=args.messages, num_workers=args.workers, seed=args.seed
    )
    path = write_bench_snapshot("partitioners", results, directory=args.out)
    for entry in results:
        print(f"{entry['name']:14s} {entry['keys_per_second']:12.0f} keys/s")
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "render": _cmd_render,
        "diff": _cmd_diff,
        "bench": _cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except SchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
