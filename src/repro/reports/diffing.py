"""Compare two artifact sets and flag metric regressions.

``python -m repro.reports diff OLD NEW`` loads both artifact sets
(directories of ``*.json`` or single files), matches metrics by name,
and classifies each pair using the metric's declared direction.
``BENCH_*.json`` snapshots are accepted too: each scheme's
``keys_per_second`` becomes a higher-is-better metric, which is how the
CI ``bench-smoke`` job gates routing-throughput regressions against the
committed snapshot.  Classification:

* ``regressed`` -- the value moved in the *worse* direction by more
  than the relative tolerance (and more than the absolute floor, so
  noise around zero never fails a build);
* ``improved`` -- moved in the better direction by more than tolerance;
* ``ok`` -- within tolerance;
* ``added`` / ``removed`` -- present on only one side (informational).

The CLI exits non-zero iff any metric regressed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping

from repro.reports.schema import (
    BENCH_KIND,
    ExperimentArtifact,
    Metric,
    RunManifest,
    SchemaError,
    load_artifact,
    load_artifacts,
)

__all__ = [
    "MetricChange",
    "DiffReport",
    "diff_artifacts",
    "load_artifact_set",
    "bench_snapshot_artifact",
]

#: Ignore absolute movements below this: imbalance fractions of 1e-7 vs
#: 2e-7 are both "perfectly balanced", not a 2x regression.
DEFAULT_ABS_FLOOR = 1e-6


@dataclass(frozen=True)
class MetricChange:
    experiment: str
    name: str
    status: str  # "ok" | "improved" | "regressed" | "added" | "removed"
    old: float = float("nan")
    new: float = float("nan")
    direction: str = "lower"

    @property
    def relative_change(self) -> float:
        if self.status in ("added", "removed") or self.old == 0:
            return float("nan")
        return (self.new - self.old) / abs(self.old)

    def describe(self) -> str:
        if self.status == "added":
            return f"[{self.experiment}] {self.name}: added ({self.new:.4g})"
        if self.status == "removed":
            return f"[{self.experiment}] {self.name}: removed (was {self.old:.4g})"
        arrow = {"ok": "~", "improved": "+", "regressed": "!"}[self.status]
        return (
            f"[{self.experiment}] {arrow} {self.name}: "
            f"{self.old:.4g} -> {self.new:.4g} "
            f"({self.relative_change * 100:+.1f}%, better={self.direction})"
        )


@dataclass
class DiffReport:
    changes: List[MetricChange]
    tolerance: float

    @property
    def regressions(self) -> List[MetricChange]:
        return [c for c in self.changes if c.status == "regressed"]

    @property
    def improvements(self) -> List[MetricChange]:
        return [c for c in self.changes if c.status == "improved"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def format(self, verbose: bool = False) -> str:
        lines = []
        interesting = [c for c in self.changes if c.status != "ok" or verbose]
        for change in interesting:
            lines.append(change.describe())
        counts = {}
        for c in self.changes:
            counts[c.status] = counts.get(c.status, 0) + 1
        total = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines.append(
            f"diff: {len(self.changes)} metrics compared "
            f"(tolerance {self.tolerance * 100:.0f}%): {total or 'none'}"
        )
        return "\n".join(lines)


def _classify(
    old: Metric, new: Metric, tolerance: float, abs_floor: float
) -> str:
    delta = new.value - old.value
    if abs(delta) <= abs_floor:
        return "ok"
    # Positive "worseness": movement in the bad direction.
    worse = delta if old.direction == "lower" else -delta
    scale = max(abs(old.value), abs_floor)
    if worse > tolerance * scale:
        return "regressed"
    if -worse > tolerance * scale:
        return "improved"
    return "ok"


def diff_artifacts(
    old: Mapping[str, ExperimentArtifact],
    new: Mapping[str, ExperimentArtifact],
    tolerance: float = 0.25,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> DiffReport:
    """Compare two artifact sets metric-by-metric."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    changes: List[MetricChange] = []
    for name in sorted(set(old) | set(new)):
        old_metrics = old[name].metric_map() if name in old else {}
        new_metrics = new[name].metric_map() if name in new else {}
        for metric_name in sorted(set(old_metrics) | set(new_metrics)):
            o = old_metrics.get(metric_name)
            n = new_metrics.get(metric_name)
            if o is None:
                changes.append(
                    MetricChange(name, metric_name, "added", new=n.value,
                                 direction=n.direction)
                )
            elif n is None:
                changes.append(
                    MetricChange(name, metric_name, "removed", old=o.value,
                                 direction=o.direction)
                )
            else:
                if o.direction != n.direction:
                    raise SchemaError(
                        f"metric {metric_name!r} changed direction between "
                        f"artifact sets ({o.direction} vs {n.direction})"
                    )
                status = _classify(o, n, tolerance, abs_floor)
                changes.append(
                    MetricChange(
                        name, metric_name, status,
                        old=o.value, new=n.value, direction=o.direction,
                    )
                )
    return DiffReport(changes=changes, tolerance=tolerance)


def bench_snapshot_artifact(data: Mapping) -> ExperimentArtifact:
    """View a ``BENCH_*.json`` snapshot as a diffable artifact.

    Every result entry's ``keys_per_second`` becomes one
    higher-is-better metric named ``<scheme>.keys_per_second``, so the
    standard diff gate (tolerance, direction, exit code) applies to
    throughput trajectories unchanged.  The sharded runtime's
    ``<scheme>@e2e`` entries map the same way:
    ``e2e_messages_per_second`` is higher-is-better;
    ``p99_sojourn_seconds``, the per-stage transport breakdown
    (``route_seconds`` / ``scatter_seconds`` / ``flush_stall_seconds``
    / ``drain_seconds`` / ``recovery_seconds``), the
    ``transport_overhead_ratio`` and the robustness counters (``lost``,
    ``restarts``, ``stall_timeouts``) are lower-is-better.
    Suite-level entries
    carrying ``sweep_wall_clock_seconds`` (the experiments-sweep wall
    clock written by ``repro.reports run``) become lower-is-better
    metrics, so the parallel executor's end-to-end time is gated the
    same way.
    """
    manifest = data.get("manifest", {}) or {}
    metrics = []
    for entry in data.get("results", []):
        if not isinstance(entry, dict) or not entry.get("name"):
            continue
        if "keys_per_second" in entry:
            metrics.append(
                Metric(
                    name=f"{entry['name']}.keys_per_second",
                    value=float(entry["keys_per_second"]),
                    direction="higher",
                )
            )
        if "e2e_messages_per_second" in entry:
            metrics.append(
                Metric(
                    name=f"{entry['name']}.e2e_messages_per_second",
                    value=float(entry["e2e_messages_per_second"]),
                    direction="higher",
                )
            )
        if "p99_sojourn_seconds" in entry:
            metrics.append(
                Metric(
                    name=f"{entry['name']}.p99_sojourn_seconds",
                    value=float(entry["p99_sojourn_seconds"]),
                    direction="lower",
                )
            )
        # The e2e transport breakdown: every stage second and the
        # overhead ratio shrink as the transport path gets cheaper, so
        # all are lower-is-better and gated like the throughputs.
        for stage_field in (
            "route_seconds",
            "scatter_seconds",
            "flush_stall_seconds",
            "drain_seconds",
            "recovery_seconds",
            "transport_overhead_ratio",
            # Robustness telemetry: messages lost, worker respawns and
            # pushes that tripped their deadline all shrink as the
            # runtime gets more resilient.
            "lost",
            "restarts",
            "stall_timeouts",
        ):
            if stage_field in entry:
                metrics.append(
                    Metric(
                        name=f"{entry['name']}.{stage_field}",
                        value=float(entry[stage_field]),
                        direction="lower",
                    )
                )
        if "sweep_wall_clock_seconds" in entry:
            # The job count is part of the metric name: wall clocks are
            # only like-for-like at the same fan-out width, so runs at
            # different widths diff as added/removed (informational)
            # instead of as regressions.
            name = f"{entry['name']}.sweep_wall_clock_seconds"
            if entry.get("jobs") is not None:
                name = f"{name}@jobs={int(entry['jobs'])}"
            metrics.append(
                Metric(
                    name=name,
                    value=float(entry["sweep_wall_clock_seconds"]),
                    direction="lower",
                )
            )
    return ExperimentArtifact(
        experiment=f"bench-{data.get('suite', 'unknown')}",
        paper_section="",
        manifest=RunManifest(
            seed=0,
            scale=1.0,
            git_sha=str(manifest.get("git_sha", "unknown")) or "unknown",
            created_utc=str(manifest.get("created_utc", "unknown")) or "unknown",
        ),
        records=[e for e in data.get("results", []) if isinstance(e, dict)],
        metrics=metrics,
    )


def load_artifact_set(path) -> Dict[str, ExperimentArtifact]:
    """Load an artifact set: a directory, artifact file, or bench snapshot."""
    path = Path(path)
    if path.is_dir():
        return load_artifacts(path)
    if not path.exists():
        raise SchemaError(f"artifact path {path} does not exist")
    try:
        kind = json.loads(path.read_text()).get("kind")
    except (ValueError, AttributeError):
        kind = None
    if kind == BENCH_KIND:
        from repro.reports.bench import load_bench_snapshot

        artifact = bench_snapshot_artifact(load_bench_snapshot(path))
        return {artifact.experiment: artifact}
    artifact = load_artifact(path)
    return {artifact.experiment: artifact}
