"""Compare two artifact sets and flag metric regressions.

``python -m repro.reports diff OLD NEW`` loads both artifact sets
(directories of ``*.json`` or single files), matches metrics by name,
and classifies each pair using the metric's declared direction:

* ``regressed`` -- the value moved in the *worse* direction by more
  than the relative tolerance (and more than the absolute floor, so
  noise around zero never fails a build);
* ``improved`` -- moved in the better direction by more than tolerance;
* ``ok`` -- within tolerance;
* ``added`` / ``removed`` -- present on only one side (informational).

The CLI exits non-zero iff any metric regressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping

from repro.reports.schema import (
    ExperimentArtifact,
    Metric,
    SchemaError,
    load_artifact,
    load_artifacts,
)

__all__ = ["MetricChange", "DiffReport", "diff_artifacts", "load_artifact_set"]

#: Ignore absolute movements below this: imbalance fractions of 1e-7 vs
#: 2e-7 are both "perfectly balanced", not a 2x regression.
DEFAULT_ABS_FLOOR = 1e-6


@dataclass(frozen=True)
class MetricChange:
    experiment: str
    name: str
    status: str  # "ok" | "improved" | "regressed" | "added" | "removed"
    old: float = float("nan")
    new: float = float("nan")
    direction: str = "lower"

    @property
    def relative_change(self) -> float:
        if self.status in ("added", "removed") or self.old == 0:
            return float("nan")
        return (self.new - self.old) / abs(self.old)

    def describe(self) -> str:
        if self.status == "added":
            return f"[{self.experiment}] {self.name}: added ({self.new:.4g})"
        if self.status == "removed":
            return f"[{self.experiment}] {self.name}: removed (was {self.old:.4g})"
        arrow = {"ok": "~", "improved": "+", "regressed": "!"}[self.status]
        return (
            f"[{self.experiment}] {arrow} {self.name}: "
            f"{self.old:.4g} -> {self.new:.4g} "
            f"({self.relative_change * 100:+.1f}%, better={self.direction})"
        )


@dataclass
class DiffReport:
    changes: List[MetricChange]
    tolerance: float

    @property
    def regressions(self) -> List[MetricChange]:
        return [c for c in self.changes if c.status == "regressed"]

    @property
    def improvements(self) -> List[MetricChange]:
        return [c for c in self.changes if c.status == "improved"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def format(self, verbose: bool = False) -> str:
        lines = []
        interesting = [c for c in self.changes if c.status != "ok" or verbose]
        for change in interesting:
            lines.append(change.describe())
        counts = {}
        for c in self.changes:
            counts[c.status] = counts.get(c.status, 0) + 1
        total = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        lines.append(
            f"diff: {len(self.changes)} metrics compared "
            f"(tolerance {self.tolerance * 100:.0f}%): {total or 'none'}"
        )
        return "\n".join(lines)


def _classify(
    old: Metric, new: Metric, tolerance: float, abs_floor: float
) -> str:
    delta = new.value - old.value
    if abs(delta) <= abs_floor:
        return "ok"
    # Positive "worseness": movement in the bad direction.
    worse = delta if old.direction == "lower" else -delta
    scale = max(abs(old.value), abs_floor)
    if worse > tolerance * scale:
        return "regressed"
    if -worse > tolerance * scale:
        return "improved"
    return "ok"


def diff_artifacts(
    old: Mapping[str, ExperimentArtifact],
    new: Mapping[str, ExperimentArtifact],
    tolerance: float = 0.25,
    abs_floor: float = DEFAULT_ABS_FLOOR,
) -> DiffReport:
    """Compare two artifact sets metric-by-metric."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    changes: List[MetricChange] = []
    for name in sorted(set(old) | set(new)):
        old_metrics = old[name].metric_map() if name in old else {}
        new_metrics = new[name].metric_map() if name in new else {}
        for metric_name in sorted(set(old_metrics) | set(new_metrics)):
            o = old_metrics.get(metric_name)
            n = new_metrics.get(metric_name)
            if o is None:
                changes.append(
                    MetricChange(name, metric_name, "added", new=n.value,
                                 direction=n.direction)
                )
            elif n is None:
                changes.append(
                    MetricChange(name, metric_name, "removed", old=o.value,
                                 direction=o.direction)
                )
            else:
                if o.direction != n.direction:
                    raise SchemaError(
                        f"metric {metric_name!r} changed direction between "
                        f"artifact sets ({o.direction} vs {n.direction})"
                    )
                status = _classify(o, n, tolerance, abs_floor)
                changes.append(
                    MetricChange(
                        name, metric_name, status,
                        old=o.value, new=n.value, direction=o.direction,
                    )
                )
    return DiffReport(changes=changes, tolerance=tolerance)


def load_artifact_set(path) -> Dict[str, ExperimentArtifact]:
    """Load an artifact set from a directory or a single artifact file."""
    path = Path(path)
    if path.is_dir():
        return load_artifacts(path)
    if not path.exists():
        raise SchemaError(f"artifact path {path} does not exist")
    artifact = load_artifact(path)
    return {artifact.experiment: artifact}
