"""Markdown renderer: persisted artifacts -> EXPERIMENTS.md.

Rendering is a pure function of the artifact JSON on disk -- no
experiment is re-run and no timestamp is injected at render time -- so
``render --check`` can verify that the committed EXPERIMENTS.md is
exactly what the committed artifacts produce.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping

from repro.reports.harnesses import HARNESSES
from repro.reports.schema import ExperimentArtifact

__all__ = ["render_markdown", "render_to_file", "is_stale", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = "EXPERIMENTS.md"

_HEADER = """\
# EXPERIMENTS — paper tables and figures, from persisted artifacts

<!-- GENERATED FILE: do not edit by hand.
     Regenerate with:
       PYTHONPATH=src python -m repro.reports run --scale <s>
       PYTHONPATH=src python -m repro.reports render -->

Every table/figure of *"The Power of Both Choices"* (ICDE 2015) is
reproduced by a harness in `src/repro/experiments/`; each run persists
a versioned JSON artifact under `results/`, and this file is rendered
from those artifacts by `python -m repro.reports render`.  Compare two
runs with `python -m repro.reports diff <old> <new>`; per-PR timing
snapshots accumulate in `BENCH_experiments.json` /
`BENCH_partitioners.json` at the repo root.
"""


def _fmt(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _provenance_table(artifacts: Mapping[str, ExperimentArtifact]) -> List[str]:
    lines = [
        "| experiment | paper section | records | scale | seed | git | run at (UTC) | duration |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name in _ordered(artifacts):
        a = artifacts[name]
        m = a.manifest
        lines.append(
            f"| {a.experiment} | {a.paper_section} | {len(a.records)} "
            f"| {_fmt(m.scale)} | {m.seed} | `{m.git_sha[:10]}` "
            f"| {m.created_utc} | {m.duration_seconds:.1f}s |"
        )
    return lines


def _ordered(artifacts: Mapping[str, ExperimentArtifact]) -> List[str]:
    """Paper order for known harnesses, then alphabetical extras."""
    known = [n for n in HARNESSES if n in artifacts]
    extras = sorted(set(artifacts) - set(known))
    return known + extras


def _section(artifact: ExperimentArtifact) -> List[str]:
    name = artifact.experiment
    lines = [f"## {artifact.paper_section} — {_title(artifact)}", ""]
    harness = HARNESSES.get(name)
    if harness is not None and artifact.records:
        try:
            table = harness.format(harness.rehydrate(artifact.records))
        except (TypeError, ValueError) as exc:
            table = f"(could not re-render table from records: {exc})"
        lines += ["```text", table, "```", ""]
    if artifact.summary:
        lines += ["**Headline numbers**", "", "| stat | value |", "|---|---|"]
        for key in sorted(artifact.summary):
            lines.append(f"| `{key}` | {_fmt(artifact.summary[key])} |")
        lines.append("")
    return lines


def _title(artifact: ExperimentArtifact) -> str:
    harness = HARNESSES.get(artifact.experiment)
    return harness.title if harness is not None else artifact.experiment


def render_markdown(artifacts: Mapping[str, ExperimentArtifact]) -> str:
    """Render the full EXPERIMENTS.md text from loaded artifacts."""
    if not artifacts:
        raise ValueError(
            "no artifacts to render; run `python -m repro.reports run` first"
        )
    lines = [_HEADER, "## Provenance", ""]
    lines += _provenance_table(artifacts)
    lines.append("")
    for name in _ordered(artifacts):
        lines += _section(artifacts[name])
    return "\n".join(lines).rstrip() + "\n"


def render_to_file(
    artifacts: Mapping[str, ExperimentArtifact], path=DEFAULT_OUTPUT
) -> Path:
    path = Path(path)
    path.write_text(render_markdown(artifacts))
    return path


def is_stale(artifacts: Mapping[str, ExperimentArtifact], path=DEFAULT_OUTPUT) -> bool:
    """True when ``path`` differs from what the artifacts render to."""
    path = Path(path)
    if not path.exists():
        return True
    return path.read_text() != render_markdown(artifacts)
