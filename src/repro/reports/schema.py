"""Versioned JSON artifact schema for persisted experiment results.

One **artifact** is the durable record of one experiment harness run:
a :class:`RunManifest` (provenance: git SHA, seed, scale, config knobs,
library versions, wall-clock duration), the harness's structured
``records`` (one dict per result row), a small human-oriented
``summary`` (the headline numbers rendered into EXPERIMENTS.md), and a
flat list of directed :class:`Metric` values that
:mod:`repro.reports.diffing` compares across runs.

Artifacts are plain JSON files -- one per experiment, conventionally in
``results/`` at the repo root -- so that the perf/fidelity trajectory
lives in git history, diffable and greppable without any tooling.

The ``schema_version`` field gates forward compatibility: loaders
reject artifacts written by a newer schema instead of misreading them.
"""

from __future__ import annotations

import dataclasses
import json
import math
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

#: Bump on any breaking change to the artifact layout.
SCHEMA_VERSION = 1

ARTIFACT_KIND = "repro-experiment-artifact"
BENCH_KIND = "repro-bench-snapshot"

#: Metric directions: which way is *better*.
DIRECTIONS = ("lower", "higher")


class SchemaError(ValueError):
    """An artifact (or manifest/metric) failed validation."""


def git_sha(default: str = "unknown") -> str:
    """Current git HEAD SHA, or ``default`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serialisable types.

    Handles numpy scalars/arrays, dataclasses, paths, and containers;
    anything else must already be JSON-native.
    """
    if isinstance(value, (str, bool, int, type(None))):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(v) for v in value]
    raise SchemaError(
        f"cannot serialise value of type {type(value).__name__!r} into an artifact"
    )


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one experiment run: enough to reproduce it."""

    seed: int
    scale: float
    git_sha: str = "unknown"
    created_utc: str = "unknown"
    workers: Sequence[int] = ()
    sources: Sequence[int] = ()
    num_checkpoints: int = 0
    cluster_duration: float = 0.0
    cluster_warmup: float = 0.0
    python_version: str = ""
    numpy_version: str = ""
    repro_version: str = ""
    duration_seconds: float = 0.0

    def __post_init__(self) -> None:
        # Normalise sequences so JSON round-trips compare equal.
        object.__setattr__(self, "workers", tuple(self.workers))
        object.__setattr__(self, "sources", tuple(self.sources))
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SchemaError(f"manifest seed must be an int, got {self.seed!r}")
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise SchemaError(f"manifest scale must be positive, got {self.scale!r}")
        if not isinstance(self.git_sha, str) or not self.git_sha:
            raise SchemaError("manifest git_sha must be a non-empty string")
        if not isinstance(self.created_utc, str) or not self.created_utc:
            raise SchemaError("manifest created_utc must be a non-empty string")
        if self.duration_seconds < 0:
            raise SchemaError(
                f"manifest duration_seconds must be >= 0, got {self.duration_seconds!r}"
            )

    @classmethod
    def from_config(
        cls,
        config,
        *,
        created_utc: str,
        duration_seconds: float = 0.0,
        sha: Optional[str] = None,
    ) -> "RunManifest":
        """Build a manifest from an :class:`ExperimentConfig`."""
        import repro

        return cls(
            seed=int(config.seed),
            scale=float(config.scale),
            git_sha=sha if sha is not None else git_sha(),
            created_utc=created_utc,
            workers=tuple(int(w) for w in config.workers),
            sources=tuple(int(s) for s in config.sources),
            num_checkpoints=int(config.num_checkpoints),
            cluster_duration=float(config.cluster_duration),
            cluster_warmup=float(config.cluster_warmup),
            python_version=platform.python_version(),
            numpy_version=np.__version__,
            repro_version=repro.__version__,
            duration_seconds=float(duration_seconds),
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        if not isinstance(data, Mapping):
            raise SchemaError(f"manifest must be an object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        missing = {"seed", "scale"} - set(data)
        if missing:
            raise SchemaError(f"manifest missing required fields: {sorted(missing)}")
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class Metric:
    """One directed scalar: ``direction`` says which way is better."""

    name: str
    value: float
    direction: str = "lower"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"metric name must be a non-empty string, got {self.name!r}")
        if self.direction not in DIRECTIONS:
            raise SchemaError(
                f"metric {self.name!r} direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise SchemaError(f"metric {self.name!r} value must be a number")
        if not math.isfinite(self.value):
            # NaN/inf would fail open through the diff gate (every NaN
            # comparison is False -> "ok") and break strict JSON.
            raise SchemaError(
                f"metric {self.name!r} value must be finite, got {self.value!r}"
            )


@dataclass
class ExperimentArtifact:
    """The persisted result of one experiment harness run."""

    experiment: str
    paper_section: str
    manifest: RunManifest
    records: List[Dict[str, Any]] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)
    metrics: List[Metric] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise SchemaError("artifact experiment name must be a non-empty string")
        if not isinstance(self.schema_version, int):
            raise SchemaError("artifact schema_version must be an int")
        if self.schema_version > SCHEMA_VERSION:
            raise SchemaError(
                f"artifact schema_version {self.schema_version} is newer than "
                f"supported version {SCHEMA_VERSION}; upgrade repro.reports"
            )
        if self.schema_version < 1:
            raise SchemaError(
                f"artifact schema_version must be >= 1, got {self.schema_version}"
            )
        if not isinstance(self.manifest, RunManifest):
            raise SchemaError("artifact manifest must be a RunManifest")
        if not isinstance(self.records, list) or any(
            not isinstance(r, dict) for r in self.records
        ):
            raise SchemaError("artifact records must be a list of objects")
        names = [m.name for m in self.metrics]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate metric names in artifact: {sorted(dupes)}")

    def metric_map(self) -> Dict[str, Metric]:
        return {m.name: m for m in self.metrics}

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "kind": ARTIFACT_KIND,
            "experiment": self.experiment,
            "paper_section": self.paper_section,
            "manifest": jsonify(self.manifest),
            "records": jsonify(self.records),
            "summary": jsonify(self.summary),
            "metrics": jsonify(self.metrics),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ExperimentArtifact":
        if not isinstance(data, Mapping):
            raise SchemaError(f"artifact must be an object, got {type(data).__name__}")
        kind = data.get("kind", ARTIFACT_KIND)
        if kind != ARTIFACT_KIND:
            raise SchemaError(f"not an experiment artifact (kind={kind!r})")
        try:
            metrics = [
                Metric(
                    name=m["name"],
                    value=m["value"],
                    direction=m.get("direction", "lower"),
                )
                for m in data.get("metrics", [])
            ]
        except (TypeError, KeyError) as exc:
            raise SchemaError(f"malformed metric entry: {exc}") from exc
        return cls(
            experiment=data.get("experiment", ""),
            paper_section=data.get("paper_section", ""),
            manifest=RunManifest.from_json_dict(data.get("manifest", {})),
            records=list(data.get("records", [])),
            summary=dict(data.get("summary", {})),
            metrics=metrics,
            schema_version=data.get("schema_version", 0),
        )


# ---------------------------------------------------------------------------
# Disk IO


def artifact_path(directory: Path, experiment: str) -> Path:
    return Path(directory) / f"{experiment}.json"


def write_artifact(artifact: ExperimentArtifact, directory) -> Path:
    """Write one artifact as ``<directory>/<experiment>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = artifact_path(directory, artifact.experiment)
    try:
        # allow_nan=False: a NaN/inf smuggled through records or summary
        # must fail loudly here, not poison downstream parsers.
        text = json.dumps(
            artifact.to_json_dict(), indent=2, sort_keys=True, allow_nan=False
        )
    except ValueError as exc:
        raise SchemaError(
            f"artifact {artifact.experiment!r} contains non-finite values: {exc}"
        ) from exc
    path.write_text(text + "\n")
    return path


def load_artifact(path) -> ExperimentArtifact:
    """Load and validate a single artifact file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return ExperimentArtifact.from_json_dict(data)
    except SchemaError as exc:
        raise SchemaError(f"{path}: {exc}") from exc


def load_artifacts(directory) -> Dict[str, ExperimentArtifact]:
    """Load every ``*.json`` artifact in a directory, keyed by experiment.

    Non-artifact JSON files (e.g. bench snapshots) are skipped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise SchemaError(f"artifact directory {directory} does not exist")
    out: Dict[str, ExperimentArtifact] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: invalid JSON: {exc}") from exc
        if isinstance(data, Mapping) and data.get("kind", ARTIFACT_KIND) != ARTIFACT_KIND:
            continue
        artifact = load_artifact(path)
        out[artifact.experiment] = artifact
    return out
