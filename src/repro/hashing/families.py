"""Seeded hash functions and families of independent hash functions.

A :class:`HashFamily` produces the ``d`` independent hash functions
``H1, ..., Hd : K -> [n]`` required by the Greedy-d process of
Section IV of the paper.  Each member is an independently-seeded 64-bit
hash reduced modulo the number of workers, exactly as in the paper's
``Pt(k) = H1(k) mod W`` formulation for key grouping.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.hashing.murmur import murmur2_64a, splitmix64, splitmix64_array

_MASK64 = 0xFFFFFFFFFFFFFFFF


def key_to_bytes(key) -> bytes:
    """Canonical byte representation of a message key.

    Integers map to their 8-byte little-endian two's-complement form,
    strings to UTF-8, bytes pass through.  Any other hashable object
    falls back to its ``repr``, which is stable within a process.
    """
    if isinstance(key, (int, np.integer)):
        return (int(key) & _MASK64).to_bytes(8, "little")
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (bytes, bytearray, memoryview)):
        return bytes(key)
    return repr(key).encode("utf-8")


class HashFunction:
    """A single seeded 64-bit hash function over arbitrary keys.

    Integer keys take a fast splitmix64 path; all other keys are
    canonicalized to bytes and hashed with MurmurHash64A.  Both paths
    incorporate the seed, so two functions with different seeds behave
    as independent draws from the family.
    """

    __slots__ = ("seed", "_seed_mix")

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._seed_mix = splitmix64(self.seed)

    def __call__(self, key) -> int:
        if isinstance(key, (int, np.integer)):
            return splitmix64((int(key) & _MASK64) ^ self._seed_mix)
        return murmur2_64a(key_to_bytes(key), self.seed)

    def bucket(self, key, n: int) -> int:
        """Hash ``key`` into ``[0, n)``."""
        return self(key) % n

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized hash of an integer key array (uint64 result)."""
        return splitmix64_array(keys, self.seed)

    def bucket_array(self, keys: np.ndarray, n: int) -> np.ndarray:
        """Vectorized :meth:`bucket` of an integer key array (int64)."""
        return (self.hash_array(keys) % np.uint64(n)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFunction(seed={self.seed})"


class HashFamily:
    """A family of ``size`` independent hash functions ``H1 .. Hd``.

    The family is the randomness source of the chromatic balls-and-bins
    process: each key's candidate workers are
    ``{H1(k) mod n, ..., Hd(k) mod n}``.

    Parameters
    ----------
    size:
        Number of functions ``d`` (2 for the paper's PKG).
    seed:
        Master seed; function ``i`` is seeded with a mix of
        ``(seed, i)`` so families with different master seeds are
        independent.
    """

    __slots__ = ("size", "seed", "functions")

    def __init__(self, size: int = 2, seed: int = 0):
        if size < 1:
            raise ValueError(f"hash family size must be >= 1, got {size}")
        self.size = int(size)
        self.seed = int(seed)
        self.functions: Tuple[HashFunction, ...] = tuple(
            HashFunction(splitmix64((self.seed << 8) ^ (i + 1))) for i in range(size)
        )

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, i: int) -> HashFunction:
        return self.functions[i]

    def __iter__(self) -> Iterable[HashFunction]:
        return iter(self.functions)

    def choices(self, key, n: int) -> Tuple[int, ...]:
        """The candidate buckets of ``key`` among ``n`` workers.

        Duplicates are possible (``H1(k) == H2(k)``) and preserved, as
        in the paper's process: a key whose two hashes collide
        effectively has a single choice.
        """
        return tuple(f(key) % n for f in self.functions)

    def choice_matrix(self, keys: np.ndarray, n: int) -> np.ndarray:
        """Vectorized choices: an ``(len(keys), size)`` int64 matrix.

        Only valid for integer key arrays; this is the fast path used by
        the simulation harness to hoist hashing out of the sequential
        routing loop.
        """
        keys = np.asarray(keys)
        cols = [f.bucket_array(keys, n) for f in self.functions]
        return np.stack(cols, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(size={self.size}, seed={self.seed})"


def default_family(num_choices: int = 2, seed: int = 0) -> HashFamily:
    """Convenience constructor mirroring the paper's two-choice setup."""
    return HashFamily(size=num_choices, seed=seed)


def family_from_seeds(seeds: Sequence[int]) -> HashFamily:
    """Build a family whose members use exactly the given seeds."""
    family = HashFamily(size=len(seeds), seed=0)
    family.functions = tuple(HashFunction(s) for s in seeds)
    return family
