"""Hash functions and seeded hash families.

This package provides the hashing substrate used by every partitioning
scheme in the library.  The paper uses a 64-bit Murmur hash "to minimize
the probability of collision" (Section V-B); we provide:

* :func:`murmur3_32` -- MurmurHash3 x86_32, validated against the
  reference vectors of the original C++ implementation.
* :func:`murmur2_64a` -- MurmurHash64A, the classic 64-bit Murmur variant.
* :func:`splitmix64` -- a fast 64-bit finalizer used on integer keys,
  with a vectorized numpy counterpart (:func:`splitmix64_array`).
* :class:`HashFunction` / :class:`HashFamily` -- seeded, independent hash
  functions ``H1 .. Hd`` mapping arbitrary keys to ``[0, n)`` as required
  by the Greedy-d process of Section IV.
"""

from repro.hashing.murmur import (
    fmix32,
    fmix64,
    murmur2_64a,
    murmur3_32,
    splitmix64,
    splitmix64_array,
)
from repro.hashing.families import HashFamily, HashFunction, key_to_bytes

__all__ = [
    "fmix32",
    "fmix64",
    "murmur2_64a",
    "murmur3_32",
    "splitmix64",
    "splitmix64_array",
    "HashFamily",
    "HashFunction",
    "key_to_bytes",
]
