"""Pure-Python implementations of the Murmur hash family.

The implementations follow Austin Appleby's reference C++ code
(SMHasher).  They are deliberately dependency-free; the only fast path
is :func:`splitmix64_array`, a vectorized numpy version of the 64-bit
mixer used for integer key streams in large simulations.
"""

from __future__ import annotations

import numpy as np

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

# MurmurHash3 x86_32 constants.
_C1_32 = 0xCC9E2D51
_C2_32 = 0x1B873593

# MurmurHash64A constants.
_M64 = 0xC6A4A7935BD1E995
_R64 = 47

# splitmix64 constants (Steele, Lea & Flood; also Murmur3's fmix64 cousins).
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB


def fmix32(h: int) -> int:
    """MurmurHash3 32-bit finalization mix; full avalanche on 32 bits."""
    h &= _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def fmix64(h: int) -> int:
    """MurmurHash3 64-bit finalization mix; full avalanche on 64 bits."""
    h &= _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86_32 of ``data`` with the given ``seed``.

    Matches the reference implementation bit-for-bit (see the test
    vectors in ``tests/test_hashing.py``).
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"murmur3_32 expects bytes, got {type(data).__name__}")
    data = bytes(data)
    h = seed & _MASK32
    length = len(data)
    n_blocks = length // 4

    for i in range(n_blocks):
        k = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k = (k * _C1_32) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * _C2_32) & _MASK32
        h ^= k
        h = ((h << 13) | (h >> 19)) & _MASK32
        h = (h * 5 + 0xE6546B64) & _MASK32

    tail = data[4 * n_blocks :]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * _C1_32) & _MASK32
        k = ((k << 15) | (k >> 17)) & _MASK32
        k = (k * _C2_32) & _MASK32
        h ^= k

    h ^= length
    return fmix32(h)


def murmur2_64a(data: bytes, seed: int = 0) -> int:
    """MurmurHash64A (the 64-bit MurmurHash2 variant) of ``data``.

    This is the "64-bit Murmur hash" class of function the paper uses
    for key grouping; any avalanche-quality 64-bit hash yields the same
    statistical behaviour.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"murmur2_64a expects bytes, got {type(data).__name__}")
    data = bytes(data)
    length = len(data)
    h = (seed ^ ((length * _M64) & _MASK64)) & _MASK64
    n_blocks = length // 8

    for i in range(n_blocks):
        k = int.from_bytes(data[8 * i : 8 * i + 8], "little")
        k = (k * _M64) & _MASK64
        k ^= k >> _R64
        k = (k * _M64) & _MASK64
        h ^= k
        h = (h * _M64) & _MASK64

    tail = data[8 * n_blocks :]
    if tail:
        h ^= int.from_bytes(tail, "little")
        h = (h * _M64) & _MASK64

    h ^= h >> _R64
    h = (h * _M64) & _MASK64
    h ^= h >> _R64
    return h


def splitmix64(x: int) -> int:
    """One step of the splitmix64 generator: a high-quality 64-bit mixer.

    Used as the fast hash for integer keys: it passes avalanche tests and
    is two orders of magnitude faster than byte-oriented Murmur in pure
    Python.
    """
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_MUL1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_MUL2) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`splitmix64` over an integer array.

    ``seed`` perturbs the mix so that different seeds yield independent
    hash functions over the same keys (the H1..Hd of Section IV).
    Returns a ``uint64`` array of the same shape.
    """
    # Always mix the seed (splitmix64(0) != 0) so the array path agrees
    # with HashFunction.__call__ for every seed, zero included.
    x = np.asarray(keys).astype(np.uint64, copy=True)
    x ^= np.uint64(splitmix64(seed))
    x += np.uint64(_SM_GAMMA)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_SM_MUL1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_SM_MUL2)
    return x ^ (x >> np.uint64(31))
