"""Command-line entry point: ``python -m repro.experiments <name>``.

Runs one experiment harness (or ``all``) and prints the paper-style
table.  ``--scale`` shrinks/extends the stream lengths.  This entry
point only prints; to *persist* results as JSON artifacts and
regenerate EXPERIMENTS.md (whose provenance table records the scale of
every run), use ``python -m repro.reports run`` / ``render``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentConfig

# The single name->harness registry lives in repro.reports.harnesses
# (it also carries the records/metrics adapters used for persisted
# artifacts); this CLI is the print-only view of the same table.
from repro.reports.harnesses import HARNESSES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(HARNESSES) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream-length multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid sweeps (default: REPRO_PARALLEL or "
             "cpu count; results are identical at any job count)",
    )
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, seed=args.seed, jobs=args.jobs)
    names = sorted(HARNESSES) if args.experiment == "all" else [args.experiment]
    for name in names:
        harness = HARNESSES[name]
        start = time.time()
        print(harness.format(harness.run(config)))
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
