"""Command-line entry point: ``python -m repro.experiments <name>``.

Runs one experiment harness (or ``all``) and prints the paper-style
table.  ``--scale`` shrinks/extends the stream lengths; the scales used
for the recorded results are noted in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ExperimentConfig,
    format_dchoices,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5a,
    format_fig5b,
    format_jaccard,
    format_probing,
    format_table1,
    format_table2,
    run_dchoices_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_jaccard,
    run_probing_ablation,
    run_table1,
    run_table2,
)

EXPERIMENTS = {
    "table1": lambda cfg: format_table1(run_table1(cfg)),
    "table2": lambda cfg: format_table2(run_table2(cfg)),
    "fig2": lambda cfg: format_fig2(run_fig2(cfg)),
    "fig3": lambda cfg: format_fig3(run_fig3(cfg)),
    "fig4": lambda cfg: format_fig4(run_fig4(cfg)),
    "fig5a": lambda cfg: format_fig5a(run_fig5a(cfg)),
    "fig5b": lambda cfg: format_fig5b(run_fig5b(cfg)),
    "jaccard": lambda cfg: format_jaccard(run_jaccard(cfg)),
    "dchoices": lambda cfg: format_dchoices(run_dchoices_ablation(cfg)),
    "probing": lambda cfg: format_probing(run_probing_ablation(cfg)),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream-length multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.time()
        print(EXPERIMENTS[name](config))
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
