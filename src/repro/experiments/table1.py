"""Table I: summary of the datasets used in the experiments.

Regenerates the paper's dataset summary from the synthetic equivalents:
for each dataset we report the paper's published statistics next to the
measured statistics of the generated stream, demonstrating that the
calibration hits the published ``p1`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.streams.datasets import DATASETS, DatasetSpec


@dataclass
class Table1Row:
    symbol: str
    paper_messages: float
    paper_keys: float
    paper_p1_percent: float
    generated_messages: int
    generated_keys: int
    measured_p1_percent: float

    @property
    def p1_relative_error(self) -> float:
        """|measured - paper| / paper for the head probability."""
        return abs(
            self.measured_p1_percent - self.paper_p1_percent
        ) / self.paper_p1_percent


def _table1_cell(cell) -> Table1Row:
    """Measure one generated dataset stream."""
    symbol, messages, seed = cell
    spec = DATASETS[symbol]
    keys = dataset_stream_cached(symbol, messages, seed)
    counts = np.bincount(keys)
    return Table1Row(
        symbol=spec.symbol,
        paper_messages=spec.paper_messages,
        paper_keys=spec.paper_keys,
        paper_p1_percent=spec.paper_p1_percent,
        generated_messages=int(keys.size),
        generated_keys=int((counts > 0).sum()),
        measured_p1_percent=float(counts.max() / keys.size * 100.0),
    )


def run_table1(config: Optional[ExperimentConfig] = None) -> List[Table1Row]:
    """Generate every dataset and measure its stream statistics."""
    config = config or ExperimentConfig()
    cells = [
        (symbol, config.messages_for(spec), config.seed)
        for symbol, spec in DATASETS.items()
    ]
    streams = [("dataset", symbol, messages, seed) for symbol, messages, seed in cells]
    return parallel_map(_table1_cell, cells, jobs=config.jobs, streams=streams)


def summarize_table1(rows: List[Table1Row]) -> dict:
    """Headline stats for EXPERIMENTS.md: p1 calibration fidelity."""
    out = {}
    for r in rows:
        out[f"measured_p1_percent[{r.symbol}]"] = r.measured_p1_percent
        out[f"p1_rel_err[{r.symbol}]"] = r.p1_relative_error
    out["max_p1_rel_err"] = max(r.p1_relative_error for r in rows)
    return out


def format_table1(rows: List[Table1Row]) -> str:
    def human(x: float) -> str:
        if x >= 1e9:
            return f"{x / 1e9:.1f}G"
        if x >= 1e6:
            return f"{x / 1e6:.1f}M"
        if x >= 1e3:
            return f"{x / 1e3:.0f}k"
        return f"{x:.0f}"

    return format_table(
        ["Dataset", "paper msgs", "paper keys", "paper p1%",
         "gen msgs", "gen keys", "measured p1%"],
        [
            [
                r.symbol,
                human(r.paper_messages),
                human(r.paper_keys),
                f"{r.paper_p1_percent:.2f}",
                human(r.generated_messages),
                human(r.generated_keys),
                f"{r.measured_p1_percent:.2f}",
            ]
            for r in rows
        ],
        title="Table I: datasets (paper statistics vs generated streams)",
    )
