"""Figure 5(a): cluster throughput and latency vs per-key CPU delay.

Runs the simulated word-count cluster (1 spout + 9 counters, no
aggregation) for PKG, SG and KG across the paper's CPU-delay sweep
(0.1 ms to 1 ms).

Expected shape: PKG and SG indistinguishable and above KG everywhere;
KG saturates around 0.4 ms and loses ~60% of its throughput over the
tenfold delay increase while PKG/SG lose ~37%; KG's average latency is
substantially higher once saturated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.parallel import parallel_map
from repro.dspe import ClusterConfig, run_wordcount
from repro.experiments.config import ExperimentConfig, format_table
from repro.streams.datasets import get_dataset

DEFAULT_DELAYS = (0.1e-3, 0.2e-3, 0.4e-3, 0.6e-3, 0.8e-3, 1.0e-3)
SCHEMES = ("pkg", "sg", "kg")


@dataclass
class Fig5aRow:
    scheme: str
    cpu_delay: float
    throughput: float
    mean_latency: float
    p99_latency: float
    #: p99 sojourn minus the per-message CPU delay: pure queueing tail,
    #: comparable across delay settings (and with the sharded runtime's
    #: p99 sojourn entries in BENCH_partitioners.json).
    excess_p99_latency: float
    load_imbalance: float


def _fig5a_cell(cell) -> Fig5aRow:
    """One cluster simulation: (delay, scheme)."""
    dataset, delay, scheme, duration, warmup, seed = cell
    distribution = get_dataset(dataset).distribution()
    metrics = run_wordcount(
        scheme,
        distribution,
        ClusterConfig(cpu_delay=delay, duration=duration, warmup=warmup, seed=seed),
    )
    p99 = metrics.latency.percentile(99)
    return Fig5aRow(
        scheme=scheme.upper(),
        cpu_delay=delay,
        throughput=metrics.throughput,
        mean_latency=metrics.latency.mean,
        p99_latency=p99,
        excess_p99_latency=p99 - delay,
        load_imbalance=metrics.load_imbalance,
    )


def run_fig5a(
    config: Optional[ExperimentConfig] = None,
    delays: Sequence[float] = DEFAULT_DELAYS,
    dataset: str = "WP",
) -> List[Fig5aRow]:
    config = config or ExperimentConfig()
    cells = [
        (dataset, delay, scheme, config.cluster_duration, config.cluster_warmup,
         config.seed)
        for delay in delays
        for scheme in SCHEMES
    ]
    return parallel_map(_fig5a_cell, cells, jobs=config.jobs)


def degradations(rows: List[Fig5aRow]) -> dict:
    """Relative throughput loss from the lowest to the highest delay.

    The paper's headline: ~60% for KG, ~37% for PKG and SG.
    """
    out = {}
    for scheme in {r.scheme for r in rows}:
        mine = sorted(
            (r for r in rows if r.scheme == scheme), key=lambda r: r.cpu_delay
        )
        first, last = mine[0].throughput, mine[-1].throughput
        out[scheme] = 1.0 - last / first if first > 0 else 0.0
    return out


def summarize_fig5a(rows: List[Fig5aRow]) -> dict:
    """Headline stats for EXPERIMENTS.md: throughput degradation per
    scheme over the delay sweep and PKG's edge over KG at the highest
    delay (the paper: KG loses ~60%, PKG/SG ~37%)."""
    out = {f"throughput_loss[{s}]": d for s, d in sorted(degradations(rows).items())}
    max_delay = max(r.cpu_delay for r in rows)
    at_max = {r.scheme: r for r in rows if r.cpu_delay == max_delay}
    kg = at_max.get("KG")
    if kg and kg.throughput > 0:
        for scheme in ("PKG", "SG"):
            r = at_max.get(scheme)
            if r:
                out[f"{scheme.lower()}_over_kg_throughput_at_max_delay"] = (
                    r.throughput / kg.throughput
                )
    return out


def format_fig5a(rows: List[Fig5aRow]) -> str:
    table_rows = [
        [
            r.scheme,
            f"{r.cpu_delay * 1e3:.1f}",
            f"{r.throughput:.0f}",
            f"{r.mean_latency * 1e3:.2f}",
            f"{r.p99_latency * 1e3:.2f}",
            f"{r.excess_p99_latency * 1e3:.2f}",
        ]
        for r in sorted(rows, key=lambda r: (r.cpu_delay, r.scheme))
    ]
    table = format_table(
        ["scheme", "delay ms", "keys/s", "mean lat ms", "p99 lat ms",
         "xs p99 ms"],
        table_rows,
        title="Figure 5(a): throughput and latency vs CPU delay",
    )
    degr = degradations(rows)
    footer = "  ".join(
        f"{s}: -{d * 100:.0f}%" for s, d in sorted(degr.items())
    )
    return f"{table}\nthroughput loss over sweep: {footer}"
