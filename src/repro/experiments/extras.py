"""Additional measurements and ablations from the paper's text.

* **Jaccard(G, L)** -- Q2's observation that the global-oracle and
  local-estimation routings agree on only ~47% of message destinations
  while achieving equal balance (they reach different, equally good
  local minima).
* **d-choices ablation** -- Section III's justification for d = 2:
  "using more than two choices only brings constant factor
  improvements" while d = 1 (hashing) is exponentially worse.
* **Probing ablation** -- Q2's negative result: probing true loads,
  at any frequency, does not improve on purely local estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.simulation import jaccard_overlap, simulate_multisource_pkg
from repro.streams.datasets import get_dataset


@dataclass
class JaccardRow:
    dataset: str
    num_workers: int
    num_sources: int
    jaccard: float
    imbalance_fraction_global: float
    imbalance_fraction_local: float


def run_jaccard(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "WP",
    num_workers: int = 10,
    num_sources: int = 5,
) -> JaccardRow:
    """Measure routing agreement between G and L on one dataset."""
    config = config or ExperimentConfig()
    spec = get_dataset(dataset)
    keys = dataset_stream_cached(dataset, config.messages_for(spec), config.seed)
    common = dict(
        num_workers=num_workers,
        num_sources=num_sources,
        seed=config.seed,
        keep_assignments=True,
        num_checkpoints=config.num_checkpoints,
    )
    g = simulate_multisource_pkg(keys, mode="global", **common)
    l = simulate_multisource_pkg(keys, mode="local", **common)
    return JaccardRow(
        dataset=dataset,
        num_workers=num_workers,
        num_sources=num_sources,
        jaccard=jaccard_overlap(g.assignments, l.assignments),
        imbalance_fraction_global=g.average_imbalance_fraction,
        imbalance_fraction_local=l.average_imbalance_fraction,
    )


def summarize_jaccard(row: JaccardRow) -> dict:
    """Headline stats for EXPERIMENTS.md (paper: ~47% agreement)."""
    return {
        "jaccard": row.jaccard,
        "imbalance_fraction_global": row.imbalance_fraction_global,
        "imbalance_fraction_local": row.imbalance_fraction_local,
    }


def format_jaccard(row: JaccardRow) -> str:
    return (
        f"Jaccard overlap of G vs L{row.num_sources} destinations on "
        f"{row.dataset} (W={row.num_workers}): {row.jaccard * 100:.0f}% "
        f"(paper: ~47%)\n"
        f"imbalance fraction: G={row.imbalance_fraction_global:.2e} "
        f"L={row.imbalance_fraction_local:.2e} (equally balanced)"
    )


@dataclass
class DChoicesRow:
    num_choices: int
    num_workers: int
    average_imbalance_fraction: float


def _dchoices_cell(cell) -> DChoicesRow:
    """One ablation point: Greedy-d on the shared stream."""
    symbol, messages, d, num_workers, seed, num_checkpoints = cell
    keys = dataset_stream_cached(symbol, messages, seed)
    result = simulate_multisource_pkg(
        keys,
        num_workers=num_workers,
        num_sources=1,
        mode="local",
        num_choices=d,
        seed=seed,
        num_checkpoints=num_checkpoints,
        scheme_name=f"Greedy-{d}",
    )
    return DChoicesRow(
        num_choices=d,
        num_workers=num_workers,
        average_imbalance_fraction=result.average_imbalance_fraction,
    )


def run_dchoices_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "WP",
    choices: Sequence[int] = (1, 2, 3, 4),
    num_workers: int = 10,
) -> List[DChoicesRow]:
    """Greedy-d imbalance for d = 1..4 on one dataset."""
    config = config or ExperimentConfig()
    messages = config.messages_for(get_dataset(dataset))
    cells = [
        (dataset, messages, d, num_workers, config.seed, config.num_checkpoints)
        for d in choices
    ]
    streams = [("dataset", dataset.upper(), messages, config.seed)]
    return parallel_map(_dchoices_cell, cells, jobs=config.jobs, streams=streams)


def summarize_dchoices(rows: List[DChoicesRow]) -> dict:
    """Headline stats for EXPERIMENTS.md: the d=1 cliff and the
    marginal gain beyond d=2 (paper: only constant factors)."""
    by_d = {r.num_choices: r.average_imbalance_fraction for r in rows}
    out = {f"imbalance_fraction[d={d}]": v for d, v in sorted(by_d.items())}
    if by_d.get(2):
        if 1 in by_d:
            out["d1_over_d2"] = by_d[1] / by_d[2]
        best_beyond = min((v for d, v in by_d.items() if d > 2), default=None)
        if best_beyond is not None and best_beyond > 0:
            out["d2_over_best_beyond"] = by_d[2] / best_beyond
    return out


def format_dchoices(rows: List[DChoicesRow]) -> str:
    return format_table(
        ["d", "W", "avg imbalance fraction"],
        [
            [r.num_choices, r.num_workers, f"{r.average_imbalance_fraction:.2e}"]
            for r in rows
        ],
        title="Ablation: number of choices d (d=1 is hashing; d=2 is PKG)",
    )


@dataclass
class ProbingRow:
    label: str
    probe_period: float  # minutes; 0 = pure local
    average_imbalance_fraction: float


def _probing_cell(cell) -> ProbingRow:
    """One ablation point: probe period P on the shared stream."""
    import numpy as np

    (symbol, messages, period, num_workers, num_sources, stream_minutes,
     seed, num_checkpoints) = cell
    keys = dataset_stream_cached(symbol, messages, seed)
    timestamps = np.linspace(0.0, stream_minutes, messages)
    if period == 0.0:
        result = simulate_multisource_pkg(
            keys,
            num_workers=num_workers,
            num_sources=num_sources,
            mode="local",
            timestamps=timestamps,
            seed=seed,
            num_checkpoints=num_checkpoints,
        )
        label = f"L{num_sources}"
    else:
        result = simulate_multisource_pkg(
            keys,
            num_workers=num_workers,
            num_sources=num_sources,
            mode="probing",
            probe_period=period,
            timestamps=timestamps,
            seed=seed,
            num_checkpoints=num_checkpoints,
        )
        label = f"L{num_sources}P{period:g}"
    return ProbingRow(
        label=label,
        probe_period=period,
        average_imbalance_fraction=result.average_imbalance_fraction,
    )


def run_probing_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset: str = "WP",
    periods_minutes: Sequence[float] = (0.0, 0.5, 1.0, 5.0, 15.0),
    num_workers: int = 10,
    num_sources: int = 5,
    stream_minutes: float = 40 * 60.0,
) -> List[ProbingRow]:
    """Local estimation vs probing at several probe frequencies."""
    config = config or ExperimentConfig()
    messages = config.messages_for(get_dataset(dataset))
    cells = [
        (dataset, messages, period, num_workers, num_sources, stream_minutes,
         config.seed, config.num_checkpoints)
        for period in periods_minutes
    ]
    streams = [("dataset", dataset.upper(), messages, config.seed)]
    return parallel_map(_probing_cell, cells, jobs=config.jobs, streams=streams)


def summarize_probing(rows: List[ProbingRow]) -> dict:
    """Headline stats for EXPERIMENTS.md: best probing improvement over
    pure local estimation (paper: probing does not help)."""
    local = next((r for r in rows if r.probe_period == 0.0), None)
    out = {
        f"imbalance_fraction[{r.label}]": r.average_imbalance_fraction for r in rows
    }
    if local and local.average_imbalance_fraction > 0:
        probed = [r for r in rows if r.probe_period > 0]
        if probed:
            out["best_probing_over_local"] = (
                min(r.average_imbalance_fraction for r in probed)
                / local.average_imbalance_fraction
            )
    return out


def format_probing(rows: List[ProbingRow]) -> str:
    return format_table(
        ["technique", "probe period (min)", "avg imbalance fraction"],
        [
            [
                r.label,
                "-" if r.probe_period == 0 else f"{r.probe_period:g}",
                f"{r.average_imbalance_fraction:.2e}",
            ]
            for r in rows
        ],
        title="Ablation: probing frequency (paper: probing does not help)",
    )
