"""Figure 5(b): throughput vs memory across aggregation periods.

Fixes the CPU delay just past KG's saturation point (0.4 ms in the
paper's cluster, 0.5 ms in our calibration -- robust to hash-seed
variation in the hot worker's share) and enables the aggregation stage
with periods T; for each T, PKG and SG trade worker memory (live
partial counters) against flush overhead.  KG, which needs no partial
aggregation, is the horizontal reference line.

Expected shape: at every T, PKG delivers more throughput than SG with
roughly half the memory; very short periods depress PKG below KG's
saturated line, and PKG overtakes KG as the period grows (the paper
places the crossover around T = 30 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.parallel import parallel_map
from repro.dspe import ClusterConfig, run_wordcount
from repro.experiments.config import ExperimentConfig, format_table
from repro.streams.datasets import get_dataset

DEFAULT_PERIODS = (1.0, 3.0, 6.0, 15.0, 30.0)


@dataclass
class Fig5bRow:
    scheme: str
    aggregation_period: float  # seconds; 0 = no aggregation (KG line)
    throughput: float
    mean_latency: float
    p99_latency: float
    #: p99 sojourn minus the per-message CPU delay (pure queueing tail),
    #: so throughput and tail latency live in the same record.
    excess_p99_latency: float
    average_memory_counters: float
    peak_memory_counters: int
    aggregation_messages: int


def _fig5b_cell(cell) -> Fig5bRow:
    """One cluster simulation: (scheme, T); T=0 is the KG reference."""
    dataset, scheme, period, cpu_delay, duration, warmup, seed = cell
    distribution = get_dataset(dataset).distribution()
    metrics = run_wordcount(
        scheme,
        distribution,
        ClusterConfig(
            cpu_delay=cpu_delay,
            duration=duration,
            warmup=warmup,
            aggregation_period=period,
            seed=seed,
        ),
    )
    p99 = metrics.latency.percentile(99)
    return Fig5bRow(
        scheme=scheme.upper(),
        aggregation_period=period,
        throughput=metrics.throughput,
        mean_latency=metrics.latency.mean,
        p99_latency=p99,
        excess_p99_latency=p99 - cpu_delay,
        average_memory_counters=metrics.average_memory_counters,
        peak_memory_counters=metrics.peak_memory_counters,
        aggregation_messages=0 if scheme == "kg" else metrics.aggregation_messages,
    )


def run_fig5b(
    config: Optional[ExperimentConfig] = None,
    periods: Sequence[float] = DEFAULT_PERIODS,
    dataset: str = "WP",
    cpu_delay: float = 0.5e-3,
) -> List[Fig5bRow]:
    config = config or ExperimentConfig()
    # Aggregation needs several periods of steady state to measure.
    duration = max(config.cluster_duration, 3.0 * max(periods) + 10.0)
    warmup = max(config.cluster_warmup, max(periods))
    cells = [
        (dataset, scheme, period, cpu_delay, duration, warmup, config.seed)
        for scheme in ("pkg", "sg")
        for period in periods
    ]
    # KG reference: no aggregation stage, same delay.
    cells.append((dataset, "kg", 0.0, cpu_delay, duration, warmup, config.seed))
    return parallel_map(_fig5b_cell, cells, jobs=config.jobs)


def summarize_fig5b(rows: List[Fig5bRow]) -> dict:
    """Headline stats for EXPERIMENTS.md.

    Per aggregation period T: PKG/SG throughput and memory ratios (the
    paper: PKG beats SG with roughly half the memory), plus the smallest
    T at which PKG overtakes the saturated KG reference line.
    """
    by_key = {(r.scheme, r.aggregation_period): r for r in rows}
    periods = sorted({r.aggregation_period for r in rows if r.aggregation_period > 0})
    out = {}
    for t in periods:
        pkg, sg = by_key.get(("PKG", t)), by_key.get(("SG", t))
        if pkg and sg and sg.throughput > 0:
            out[f"pkg_over_sg_throughput[T={t:g}s]"] = pkg.throughput / sg.throughput
        if pkg and sg and sg.average_memory_counters > 0:
            out[f"pkg_over_sg_memory[T={t:g}s]"] = (
                pkg.average_memory_counters / sg.average_memory_counters
            )
    kg = by_key.get(("KG", 0.0))
    if kg and kg.throughput > 0:
        crossover = next(
            (
                t
                for t in periods
                if ("PKG", t) in by_key
                and by_key[("PKG", t)].throughput > kg.throughput
            ),
            None,
        )
        if crossover is not None:
            out["pkg_over_kg_crossover_period_s"] = crossover
    return out


def format_fig5b(rows: List[Fig5bRow]) -> str:
    table_rows = [
        [
            r.scheme,
            "none" if r.aggregation_period == 0 else f"{r.aggregation_period:.0f}s",
            f"{r.throughput:.0f}",
            f"{r.excess_p99_latency * 1e3:.2f}",
            f"{r.average_memory_counters:.0f}",
            f"{r.aggregation_messages}",
        ]
        for r in rows
    ]
    return format_table(
        ["scheme", "T", "keys/s", "xs p99 ms", "avg counters", "agg msgs"],
        table_rows,
        title="Figure 5(b): throughput vs memory across aggregation periods",
    )
