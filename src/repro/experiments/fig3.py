"""Figure 3: fraction of imbalance through time.

For TW and WP (W = 10 and 50) and the drifting CT dataset, track
``I(t) / t`` over the stream under three techniques with S = 5 sources:
the global oracle (G), local estimation (L5), and local estimation with
periodic probing every simulated minute (L5P1).

Expected shape: G and L5 indistinguishable; probing adds nothing; CT's
drift causes occasional spikes that all techniques absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.simulation import simulate_multisource_pkg
from repro.streams.datasets import get_dataset

#: dataset -> simulated stream span in hours (mirrors the paper's x-axes)
STREAM_HOURS = {"TW": 30.0, "WP": 40.0, "CT": 600.0}

DEFAULT_CASES: Tuple[Tuple[str, int], ...] = (
    ("TW", 10),
    ("TW", 50),
    ("WP", 10),
    ("WP", 50),
    ("CT", 10),
    ("CT", 50),
)


@dataclass
class Fig3Series:
    dataset: str
    technique: str
    num_workers: int
    #: checkpoint times in hours
    hours: np.ndarray = field(repr=False)
    #: I(t) / messages-so-far at each checkpoint
    imbalance_fraction: np.ndarray = field(repr=False)

    @property
    def final_fraction(self) -> float:
        return float(self.imbalance_fraction[-1])

    @property
    def mean_fraction(self) -> float:
        return float(self.imbalance_fraction.mean())


def _fig3_cell(cell) -> Fig3Series:
    """One series: (dataset, W, technique) on the shared stream."""
    (symbol, messages, w, name, mode, probe_period, num_sources, seed,
     num_checkpoints) = cell
    keys = dataset_stream_cached(symbol, messages, seed)
    hours = STREAM_HOURS.get(symbol, 30.0)
    # Timestamps in minutes, spread uniformly over the span.
    timestamps = np.linspace(0.0, hours * 60.0, messages)
    result = simulate_multisource_pkg(
        keys,
        num_workers=w,
        num_sources=num_sources,
        mode=mode,
        probe_period=probe_period,
        timestamps=timestamps,
        seed=seed,
        num_checkpoints=num_checkpoints,
        scheme_name=name,
    )
    positions = result.checkpoint_positions
    return Fig3Series(
        dataset=symbol,
        technique=name,
        num_workers=w,
        hours=timestamps[np.minimum(positions, messages) - 1] / 60.0,
        imbalance_fraction=result.imbalance_fraction_series,
    )


def run_fig3(
    config: Optional[ExperimentConfig] = None,
    cases: Sequence[Tuple[str, int]] = DEFAULT_CASES,
    num_sources: int = 5,
    probe_minutes: float = 1.0,
) -> List[Fig3Series]:
    config = config or ExperimentConfig()
    runs = (
        ("G", "global", 0.0),
        (f"L{num_sources}", "local", 0.0),
        (f"L{num_sources}P1", "probing", probe_minutes),
    )
    cells, streams = [], []
    for symbol, w in cases:
        messages = config.messages_for(get_dataset(symbol))
        streams.append(("dataset", symbol.upper(), messages, config.seed))
        for name, mode, probe_period in runs:
            cells.append(
                (symbol, messages, w, name, mode, probe_period, num_sources,
                 config.seed, max(config.num_checkpoints, 40))
            )
    return parallel_map(_fig3_cell, cells, jobs=config.jobs, streams=streams)


def summarize_fig3(series: List[Fig3Series]) -> dict:
    """Headline stats for EXPERIMENTS.md.

    Per case: the local/global ratio of mean imbalance fraction (the
    paper's claim: G and L5 are indistinguishable) and the probing/local
    ratio (probing adds nothing).
    """
    out = {}
    by_case = {}
    for s in series:
        by_case.setdefault((s.dataset, s.num_workers), {})[s.technique] = s
    for (d, w), techs in sorted(by_case.items()):
        g = next((s for t, s in techs.items() if t == "G"), None)
        local = next(
            (s for t, s in techs.items() if t.startswith("L") and "P" not in t), None
        )
        probing = next((s for t, s in techs.items() if "P" in t), None)
        if g and local and g.mean_fraction > 0:
            out[f"local_over_global[{d},W={w}]"] = local.mean_fraction / g.mean_fraction
        if local and probing and local.mean_fraction > 0:
            out[f"probing_over_local[{d},W={w}]"] = (
                probing.mean_fraction / local.mean_fraction
            )
    return out


def format_fig3(series: List[Fig3Series]) -> str:
    table_rows = []
    for s in series:
        table_rows.append(
            [
                s.dataset,
                s.num_workers,
                s.technique,
                f"{s.mean_fraction:.2e}",
                f"{s.final_fraction:.2e}",
            ]
        )
    return format_table(
        ["dataset", "W", "tech", "mean I(t)/t", "final I(m)/m"],
        table_rows,
        title="Figure 3: imbalance fraction through time (summary)",
    )
