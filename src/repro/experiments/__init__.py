"""Experiment harnesses: one per table/figure of the paper.

Each module exposes ``run_*`` (returns structured rows) and
``format_*`` (renders the paper-style table).  The CLI
(``python -m repro.experiments <experiment>``) runs any of them;
``benchmarks/`` wraps each in a pytest-benchmark target.

========  =====================================================
table1    dataset summary (messages, keys, p1)
table2    avg imbalance: PKG vs greedy/PoTC/hashing, WP and TW
fig2      imbalance fraction vs workers: H vs G vs L5..L20
fig3      imbalance fraction through time: G vs L5 vs L5P1
fig4      uniform vs skewed source splits on graph streams
fig5a     cluster throughput/latency vs per-key CPU delay
fig5b     cluster throughput vs memory across aggregation periods
extras    Jaccard(G, L), d-choices ablation, probing ablation
latency   excess p99/p999 sojourn vs offered load (queueing)
========  =====================================================
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import format_table1, run_table1, summarize_table1
from repro.experiments.table2 import format_table2, run_table2, summarize_table2
from repro.experiments.fig2 import format_fig2, run_fig2, summarize_fig2
from repro.experiments.fig3 import format_fig3, run_fig3, summarize_fig3
from repro.experiments.fig4 import format_fig4, run_fig4, summarize_fig4
from repro.experiments.fig5a import format_fig5a, run_fig5a, summarize_fig5a
from repro.experiments.fig5b import format_fig5b, run_fig5b, summarize_fig5b
from repro.experiments.extras import (
    format_dchoices,
    format_jaccard,
    format_probing,
    run_dchoices_ablation,
    run_jaccard,
    run_probing_ablation,
    summarize_dchoices,
    summarize_jaccard,
    summarize_probing,
)
from repro.experiments.latency import (
    format_latency,
    run_latency,
    summarize_latency,
)

__all__ = [
    "ExperimentConfig",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_fig2",
    "format_fig2",
    "run_fig3",
    "format_fig3",
    "run_fig4",
    "format_fig4",
    "run_fig5a",
    "format_fig5a",
    "run_fig5b",
    "format_fig5b",
    "run_jaccard",
    "format_jaccard",
    "run_dchoices_ablation",
    "format_dchoices",
    "run_probing_ablation",
    "format_probing",
    "run_latency",
    "format_latency",
    "summarize_table1",
    "summarize_table2",
    "summarize_fig2",
    "summarize_fig3",
    "summarize_fig4",
    "summarize_fig5a",
    "summarize_fig5b",
    "summarize_jaccard",
    "summarize_dchoices",
    "summarize_probing",
    "summarize_latency",
]
