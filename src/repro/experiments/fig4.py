"""Figure 4: robustness to skewed splits of keys onto sources.

The Q3 experiment streams graph edges: source PEIs are keyed by the
edge's *source vertex* (so the out-degree skew lands on the sources)
while workers are keyed by the *destination vertex* (in-degree skew).
We compare PKG-local when the stream is split uniformly over sources
(shuffle) against the skewed key-grouped split.

Expected shape: skewed ~ uniform (PKG is robust and can be chained
after key grouping); imbalance grows mildly with S and W but stays at
very low absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.parallel import edge_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.simulation import assign_sources, simulate_multisource_pkg
from repro.streams.datasets import get_dataset


@dataclass
class Fig4Row:
    dataset: str
    split: str  # "uniform" | "skewed"
    num_sources: int
    num_workers: int
    average_imbalance_fraction: float


def _fig4_cell(cell) -> Fig4Row:
    """One grid cell: (dataset, S, split, W) on the shared edge stream."""
    symbol, num_edges, s, split, w, seed, num_checkpoints = cell
    source_keys, worker_keys = edge_stream_cached(num_edges, seed)
    if split == "uniform":
        source_ids = assign_sources(len(worker_keys), s)
    else:
        source_ids = assign_sources(
            len(worker_keys), s, source_keys=source_keys, seed=seed
        )
    result = simulate_multisource_pkg(
        worker_keys,
        num_workers=w,
        num_sources=s,
        mode="local",
        source_ids=source_ids,
        seed=seed,
        num_checkpoints=num_checkpoints,
        scheme_name=f"{split} L{s}",
    )
    return Fig4Row(
        dataset=symbol,
        split=split,
        num_sources=s,
        num_workers=w,
        average_imbalance_fraction=result.average_imbalance_fraction,
    )


def run_fig4(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = ("LJ",),
) -> List[Fig4Row]:
    config = config or ExperimentConfig()
    cells, streams = [], []
    for symbol in datasets:
        num_edges = config.messages_for(get_dataset(symbol))
        streams.append(("edges", num_edges, config.seed))
        for s in config.sources:
            for split in ("uniform", "skewed"):
                for w in config.workers:
                    cells.append(
                        (symbol, num_edges, s, split, w, config.seed,
                         config.num_checkpoints)
                    )
    return parallel_map(_fig4_cell, cells, jobs=config.jobs, streams=streams)


def summarize_fig4(rows: List[Fig4Row]) -> dict:
    """Headline stats for EXPERIMENTS.md.

    The worst skewed/uniform imbalance ratio over all (S, W) per dataset
    (the paper's claim: PKG is robust to skewed source splits, so the
    ratio stays near 1) plus the overall worst absolute fraction.
    """
    out = {}
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    by_key = {
        (r.dataset, r.split, r.num_sources, r.num_workers): (
            r.average_imbalance_fraction
        )
        for r in rows
    }
    for d in datasets:
        ratios = []
        for r in rows:
            if r.dataset != d or r.split != "skewed":
                continue
            uniform = by_key.get((d, "uniform", r.num_sources, r.num_workers))
            if uniform:
                ratios.append(r.average_imbalance_fraction / uniform)
        if ratios:
            out[f"skewed_over_uniform_max[{d}]"] = max(ratios)
        out[f"max_imbalance_fraction[{d}]"] = max(
            r.average_imbalance_fraction for r in rows if r.dataset == d
        )
    return out


def format_fig4(rows: List[Fig4Row]) -> str:
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    workers = sorted({r.num_workers for r in rows})
    blocks = []
    for d in datasets:
        table_rows = []
        combos = list(
            dict.fromkeys(
                (r.split, r.num_sources) for r in rows if r.dataset == d
            )
        )
        by_key: Dict = {
            (r.split, r.num_sources, r.num_workers): r.average_imbalance_fraction
            for r in rows
            if r.dataset == d
        }
        for split, s in combos:
            row = [f"{split} L{s}"]
            for w in workers:
                v = by_key.get((split, s, w))
                row.append("-" if v is None else f"{v:.2e}")
            table_rows.append(row)
        blocks.append(
            format_table(
                ["split"] + [f"W={w}" for w in workers],
                table_rows,
                title=f"Figure 4 [{d}]: imbalance fraction, uniform vs skewed sources",
            )
        )
    return "\n\n".join(blocks)
