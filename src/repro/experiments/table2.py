"""Table II: average imbalance of PKG vs the key-grouping baselines.

Paper setup: single source, WP and TW, W in {5, 10, 50, 100}; schemes
PKG, Off-Greedy, On-Greedy, PoTC, Hashing.  The headline shape: hashing
is orders of magnitude worse; PoTC alone is not enough; PKG matches or
beats even the offline greedy assignment until W crosses the O(1/p1)
feasibility threshold, where every scheme degrades ("binary" behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.api.registry import make_partitioner
from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table, sci
from repro.partitioning import OfflineGreedy
from repro.simulation import simulate_multisource_pkg, simulate_stream
from repro.streams.datasets import get_dataset

SCHEME_ORDER = ("PKG", "Off-Greedy", "On-Greedy", "PoTC", "H")

#: Table II display label -> registry spec (PKG and Off-Greedy are
#: special-cased: PKG runs through the fast multi-source path, and
#: Off-Greedy must be fitted on the stream before routing it)
_REGISTRY_SPECS = {"On-Greedy": "on-greedy", "PoTC": "potc", "H": "kg"}


@dataclass
class Table2Row:
    dataset: str
    scheme: str
    num_workers: int
    average_imbalance: float
    final_imbalance: float
    num_messages: int

    @property
    def average_imbalance_fraction(self) -> float:
        return self.average_imbalance / self.num_messages


def _run_scheme(scheme: str, keys, num_workers: int, config: ExperimentConfig):
    if scheme == "PKG":
        return simulate_multisource_pkg(
            keys,
            num_workers=num_workers,
            num_sources=1,
            mode="local",
            seed=config.seed,
            num_checkpoints=config.num_checkpoints,
            scheme_name="PKG",
        )
    if scheme == "Off-Greedy":
        partitioner = OfflineGreedy.from_stream(keys, num_workers)
    elif scheme in _REGISTRY_SPECS:
        partitioner = make_partitioner(
            _REGISTRY_SPECS[scheme], num_workers, seed=config.seed
        )
    else:
        raise ValueError(f"unknown Table II scheme {scheme!r}")
    return simulate_stream(
        keys, partitioner, num_checkpoints=config.num_checkpoints
    )


def _table2_cell(cell) -> Table2Row:
    """One grid cell: (dataset, W, scheme) on the shared stream."""
    symbol, messages, w, scheme, seed, num_checkpoints = cell
    keys = dataset_stream_cached(symbol, messages, seed)
    config = ExperimentConfig(seed=seed, num_checkpoints=num_checkpoints)
    result = _run_scheme(scheme, keys, w, config)
    return Table2Row(
        dataset=symbol,
        scheme=scheme,
        num_workers=w,
        average_imbalance=result.average_imbalance,
        final_imbalance=result.final_imbalance,
        num_messages=result.num_messages,
    )


def run_table2(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = ("WP", "TW"),
    schemes: Sequence[str] = SCHEME_ORDER,
) -> List[Table2Row]:
    """Average imbalance of every scheme on every dataset/W pair."""
    config = config or ExperimentConfig()
    cells, streams = [], []
    for symbol in datasets:
        messages = config.messages_for(get_dataset(symbol))
        streams.append(("dataset", symbol.upper(), messages, config.seed))
        for w in config.workers:
            for scheme in schemes:
                cells.append(
                    (symbol, messages, w, scheme, config.seed,
                     config.num_checkpoints)
                )
    return parallel_map(_table2_cell, cells, jobs=config.jobs, streams=streams)


def summarize_table2(rows: List[Table2Row]) -> dict:
    """Headline stats for EXPERIMENTS.md: how much PKG wins by.

    Geometric means over W of the hashing/PKG and PKG/Off-Greedy
    imbalance ratios per dataset (the paper's qualitative claims: H is
    orders of magnitude worse; PKG competes with offline greedy).
    """
    import math

    by_key = {(r.dataset, r.scheme, r.num_workers): r.average_imbalance for r in rows}
    datasets = sorted({r.dataset for r in rows})
    workers = sorted({r.num_workers for r in rows})
    out = {}
    for d in datasets:
        h_over_pkg, pkg_over_off = [], []
        for w in workers:
            pkg = by_key.get((d, "PKG", w))
            h = by_key.get((d, "H", w))
            off = by_key.get((d, "Off-Greedy", w))
            if pkg and h:
                h_over_pkg.append(h / pkg)
            if pkg and off:
                pkg_over_off.append(pkg / off)
        if h_over_pkg:
            out[f"hash_over_pkg_geomean[{d}]"] = math.exp(
                sum(math.log(x) for x in h_over_pkg) / len(h_over_pkg)
            )
        if pkg_over_off:
            out[f"pkg_over_offgreedy_geomean[{d}]"] = math.exp(
                sum(math.log(x) for x in pkg_over_off) / len(pkg_over_off)
            )
    return out


def format_table2(rows: List[Table2Row]) -> str:
    datasets = sorted({r.dataset for r in rows})
    workers = sorted({r.num_workers for r in rows})
    schemes = [s for s in SCHEME_ORDER if any(r.scheme == s for r in rows)]
    by_key: Dict = {
        (r.dataset, r.scheme, r.num_workers): r.average_imbalance for r in rows
    }
    headers = ["Scheme"] + [
        f"{d} W={w}" for d in datasets for w in workers
    ]
    table_rows = []
    for scheme in schemes:
        row = [scheme]
        for d in datasets:
            for w in workers:
                value = by_key.get((d, scheme, w))
                row.append("-" if value is None else sci(value))
        table_rows.append(row)
    return format_table(
        headers,
        table_rows,
        title="Table II: average imbalance (messages) per scheme",
    )
