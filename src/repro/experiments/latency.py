"""Excess tail latency vs offered load: the queueing-aware evaluation.

The paper evaluates partitioners by load-*count* imbalance; this
experiment asks the production question instead -- what does each
scheme cost in **tail latency** at a given utilization?  Each cell runs
the open-loop queueing simulator (:mod:`repro.queueing`): Poisson
arrivals at ``lambda = rho * W * mu``, exponential service with mean
``1/mu``, one bounded-error latency sketch per run, sweeping offered
load ``rho`` from 50% to 95% for each scheme.

The reported curve is the **excess** p99/p999 sojourn -- measured tail
latency minus the mean service time -- so a perfectly load-balanced,
never-queueing system would sit near the service distribution's own
tail and any queueing (from skew, from bad balance, from plain
utilization) shows up directly.

Expected shape: ``kg`` goes vertical early (the hot key saturates one
worker well below cluster capacity); ``pkg`` tracks ``sg`` until the
hot key's two candidates saturate; ``jbsq`` (which sees instantaneous
queue depth and ignores keys) stays lowest throughout -- the price
being key locality, which it has none of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api import make_partitioner
from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.queueing import (
    ExponentialService,
    PoissonArrivals,
    simulate_queueing,
)

__all__ = [
    "LatencyRow",
    "run_latency",
    "summarize_latency",
    "format_latency",
    "DEFAULT_UTILIZATIONS",
    "LATENCY_SCHEMES",
]

DEFAULT_UTILIZATIONS = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
LATENCY_SCHEMES = ("sg", "kg", "pkg", "jbsq")
#: downstream parallelism of every latency cell.
NUM_WORKERS = 8
#: mean service time (1 ms, the middle of the Figure 5(a) delay sweep).
MEAN_SERVICE = 1.0e-3


@dataclass
class LatencyRow:
    scheme: str
    utilization: float
    num_workers: int
    num_messages: int
    mean_sojourn: float
    p50: float
    p99: float
    p999: float
    #: tail sojourn minus mean service time: latency attributable to
    #: queueing (plus service variability) rather than to the work.
    excess_p99: float
    excess_p999: float
    realized_utilization: float
    dropped: int


def _latency_cell(cell) -> LatencyRow:
    """One queueing simulation: (dataset, scheme, rho, messages, seed)."""
    dataset, scheme, rho, num_messages, seed = cell
    keys = dataset_stream_cached(dataset, num_messages, seed)
    partitioner = make_partitioner(scheme, NUM_WORKERS, seed=seed)
    service = ExponentialService(MEAN_SERVICE)
    arrival_rate = rho * NUM_WORKERS / MEAN_SERVICE
    result = simulate_queueing(
        keys,
        partitioner,
        PoissonArrivals(arrival_rate),
        service,
        seed=seed,
        warmup_fraction=0.1,
    )
    p99 = result.sojourn_quantile(0.99)
    p999 = result.sojourn_quantile(0.999)
    return LatencyRow(
        scheme=scheme.upper(),
        utilization=rho,
        num_workers=NUM_WORKERS,
        num_messages=num_messages,
        mean_sojourn=result.mean_sojourn(),
        p50=result.sojourn_quantile(0.5),
        p99=p99,
        p999=p999,
        excess_p99=p99 - MEAN_SERVICE,
        excess_p999=p999 - MEAN_SERVICE,
        realized_utilization=result.utilization,
        dropped=result.dropped,
    )


def run_latency(
    config: Optional[ExperimentConfig] = None,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    schemes: Sequence[str] = LATENCY_SCHEMES,
    dataset: str = "WP",
) -> List[LatencyRow]:
    config = config or ExperimentConfig()
    num_messages = max(20_000, int(200_000 * config.scale))
    cells = [
        (dataset, scheme, rho, num_messages, config.seed)
        for scheme in schemes
        for rho in utilizations
    ]
    streams = [("dataset", dataset.upper(), num_messages, config.seed)]
    return parallel_map(_latency_cell, cells, jobs=config.jobs, streams=streams)


def summarize_latency(rows: List[LatencyRow]) -> dict:
    """Headline: excess p99 per scheme at the highest common load."""
    out = {}
    top = max(r.utilization for r in rows)
    at_top = {r.scheme: r for r in rows if r.utilization == top}
    for scheme, row in sorted(at_top.items()):
        out[f"excess_p99[{scheme}]@rho={top:g}"] = row.excess_p99
    jbsq, sg = at_top.get("JBSQ"), at_top.get("SG")
    if jbsq and sg and jbsq.excess_p99 > 0:
        out["sg_over_jbsq_excess_p99"] = sg.excess_p99 / jbsq.excess_p99
    return out


def format_latency(rows: List[LatencyRow]) -> str:
    table_rows = [
        [
            r.scheme,
            f"{r.utilization:.2f}",
            f"{r.p50 * 1e3:.2f}",
            f"{r.p99 * 1e3:.2f}",
            f"{r.p999 * 1e3:.2f}",
            f"{r.excess_p99 * 1e3:.2f}",
            f"{r.realized_utilization:.3f}",
        ]
        for r in sorted(rows, key=lambda r: (r.scheme, r.utilization))
    ]
    return format_table(
        [
            "scheme",
            "rho",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "excess p99 ms",
            "util",
        ],
        table_rows,
        title=(
            "Excess tail latency vs offered load "
            f"(W={NUM_WORKERS}, exp. service {MEAN_SERVICE * 1e3:g} ms)"
        ),
    )
