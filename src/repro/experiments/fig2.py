"""Figure 2: fraction of average imbalance vs number of workers.

Per dataset (TW, WP, CT, LN1, LN2) and worker count W in {5,10,50,100},
compare hashing (H) against PKG with a global oracle (G) and with local
estimation at S in {5,10,15,20} sources (L5..L20).

Expected shape: H several orders of magnitude above the PKG variants;
L within about one order of magnitude of G and insensitive to S; all
variants collapse together once W exceeds the dataset's O(1/p1) limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.parallel import dataset_stream_cached, parallel_map
from repro.experiments.config import ExperimentConfig, format_table
from repro.simulation import simulate_multisource_pkg, simulate_stream
from repro.streams.datasets import get_dataset

DEFAULT_DATASETS = ("TW", "WP", "CT", "LN1", "LN2")


@dataclass
class Fig2Row:
    dataset: str
    technique: str  # "H", "G", "L5", "L10", ...
    num_workers: int
    average_imbalance_fraction: float
    average_imbalance: float


def _fig2_cell(cell) -> Fig2Row:
    """One grid cell: (dataset, technique, W) on the shared stream."""
    symbol, messages, technique, w, seed, num_checkpoints = cell
    keys = dataset_stream_cached(symbol, messages, seed)
    if technique == "H":
        result = simulate_stream(
            keys, "kg", num_workers=w, seed=seed, num_checkpoints=num_checkpoints
        )
    elif technique == "G":
        result = simulate_multisource_pkg(
            keys,
            num_workers=w,
            num_sources=5,
            mode="global",
            seed=seed,
            num_checkpoints=num_checkpoints,
        )
    else:
        result = simulate_multisource_pkg(
            keys,
            num_workers=w,
            num_sources=int(technique[1:]),
            mode="local",
            seed=seed,
            num_checkpoints=num_checkpoints,
        )
    return Fig2Row(
        dataset=symbol,
        technique=technique,
        num_workers=w,
        average_imbalance_fraction=result.average_imbalance_fraction,
        average_imbalance=result.average_imbalance,
    )


def run_fig2(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DEFAULT_DATASETS,
) -> List[Fig2Row]:
    config = config or ExperimentConfig()
    techniques = ["H", "G"] + [f"L{s}" for s in config.sources]
    cells, streams = [], []
    for symbol in datasets:
        messages = config.messages_for(get_dataset(symbol))
        streams.append(("dataset", symbol.upper(), messages, config.seed))
        for w in config.workers:
            for technique in techniques:
                cells.append(
                    (symbol, messages, technique, w, config.seed,
                     config.num_checkpoints)
                )
    return parallel_map(_fig2_cell, cells, jobs=config.jobs, streams=streams)


def summarize_fig2(rows: List[Fig2Row]) -> dict:
    """Headline stats for EXPERIMENTS.md.

    Per dataset: the worst-case ratio of local estimation to the global
    oracle over all (W, S) -- the paper claims L stays within about one
    order of magnitude of G -- and the best-case hashing/oracle ratio
    (H is meant to be orders of magnitude worse everywhere feasible).
    """
    by_key = {(r.dataset, r.technique, r.num_workers): r.average_imbalance for r in rows}
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    workers = sorted({r.num_workers for r in rows})
    locals_ = sorted(
        {r.technique for r in rows if r.technique.startswith("L")},
        key=lambda t: int(t[1:]),
    )
    out = {}
    for d in datasets:
        l_over_g, h_over_g = [], []
        for w in workers:
            g = by_key.get((d, "G", w))
            h = by_key.get((d, "H", w))
            if not g:
                continue
            if h:
                h_over_g.append(h / g)
            for t in locals_:
                l = by_key.get((d, t, w))
                if l:
                    l_over_g.append(l / g)
        if l_over_g:
            out[f"local_over_global_max[{d}]"] = max(l_over_g)
        if h_over_g:
            out[f"hash_over_global_min[{d}]"] = min(h_over_g)
    return out


def format_fig2(rows: List[Fig2Row]) -> str:
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    workers = sorted({r.num_workers for r in rows})
    techniques = list(dict.fromkeys(r.technique for r in rows))
    by_key: Dict = {
        (r.dataset, r.technique, r.num_workers): r.average_imbalance_fraction
        for r in rows
    }
    blocks = []
    for d in datasets:
        table_rows = []
        for t in techniques:
            row = [t]
            for w in workers:
                v = by_key.get((d, t, w))
                row.append("-" if v is None else f"{v:.2e}")
            table_rows.append(row)
        blocks.append(
            format_table(
                ["tech"] + [f"W={w}" for w in workers],
                table_rows,
                title=f"Figure 2 [{d}]: fraction of average imbalance",
            )
        )
    return "\n\n".join(blocks)
