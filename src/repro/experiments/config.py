"""Shared experiment configuration and table formatting helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment harnesses.

    ``scale`` multiplies each dataset's default (already laptop-scaled)
    message count; benchmarks run at ``scale < 1`` for speed, the CLI
    defaults to 1.  The scale of each recorded run is persisted in the
    artifact manifests under ``results/`` and shown in the provenance
    table of the generated EXPERIMENTS.md (regenerate via
    ``python -m repro.reports run`` / ``render``).

    ``jobs`` caps the worker processes the sweep executor
    (:mod:`repro.core.parallel`) shards grid cells over.  ``None``
    resolves via :func:`repro.core.parallel.resolve_jobs` (the
    ``REPRO_PARALLEL`` env knob, defaulting to ``os.cpu_count()``);
    results are identical at any job count by construction.
    """

    scale: float = 1.0
    seed: int = 42
    workers: Sequence[int] = (5, 10, 50, 100)
    sources: Sequence[int] = (5, 10, 15, 20)
    num_checkpoints: int = 50
    #: DSPE simulated seconds per Figure 5 run
    cluster_duration: float = 20.0
    cluster_warmup: float = 5.0
    #: worker processes for grid sweeps (None = auto via REPRO_PARALLEL)
    jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError(f"jobs must be >= 1 or None, got {self.jobs}")

    def messages_for(self, spec) -> int:
        """Scaled stream length for a dataset spec (at least 10k)."""
        return max(10_000, int(spec.default_messages * self.scale))


def format_table(
    headers: List[str], rows: List[Sequence], title: Optional[str] = None
) -> str:
    """Plain-text table renderer used by every ``format_*``."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "  ".join("-" * w for w in widths)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def sci(x: float) -> str:
    """Compact scientific/plain rendering matching the paper's tables.

    Table II prints small imbalances plainly (``0.8``) and large ones in
    scientific notation (``1.6e6``).
    """
    if x == 0:
        return "0"
    if abs(x) >= 1e4:
        return f"{x:.1e}"
    if abs(x) >= 10:
        return f"{x:.1f}"
    return f"{x:.2g}"
