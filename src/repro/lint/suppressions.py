"""``# repro: noqa`` suppression comments.

Two forms, mirroring flake8/ruff so the idiom is familiar:

* ``# repro: noqa`` -- suppress every repro rule on that line;
* ``# repro: noqa[REPRO001]`` / ``# repro: noqa[REPRO001,REPRO004]`` --
  suppress only the named rules.

Suppressions are per *physical line*: a finding is dropped when its
line carries a matching marker.  The index is built from the raw source
with a regex rather than the tokenizer so that even files with syntax
errors can be indexed (the parse-error pseudo-finding itself is never
suppressible).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

from repro.lint.findings import PARSE_ERROR, Finding

#: ``# repro: noqa`` with an optional ``[RULE,RULE]`` qualifier.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
)


class SuppressionIndex:
    """Per-line suppression markers of one source file.

    ``None`` as a line's rule set means "every rule" (a bare noqa).
    """

    def __init__(self, source: str):
        self._by_line: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _NOQA.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = None
            else:
                named = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
                # ``# repro: noqa[]`` names no rules: treat as bare noqa
                # rather than a marker that suppresses nothing.
                self._by_line[lineno] = named or None

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether this finding's line carries a matching noqa marker."""
        if finding.rule == PARSE_ERROR:
            return False
        if finding.line not in self._by_line:
            return False
        rules = self._by_line[finding.line]
        return rules is None or finding.rule in rules

    @property
    def marked_lines(self) -> Dict[int, Optional[FrozenSet[str]]]:
        """Line -> suppressed rule set (None = all); for diagnostics."""
        return dict(self._by_line)
