"""File discovery and rule execution for :mod:`repro.lint`.

The engine walks the requested roots, parses each Python file once,
runs every (selected) rule over the shared AST, filters findings
through the file's ``# repro: noqa`` suppressions, and returns them
sorted by (path, line, col, rule) so output is stable run to run.

Markdown files are routed through each rule's :meth:`Rule.check_markdown`
hook (only REPRO005 implements it today).

Directories named in :data:`DEFAULT_EXCLUDED_DIRS` are skipped while
*walking* -- the lint fixture corpus lives under ``tests/data/lint/``
and is deliberately full of violations -- but a path passed explicitly
on the command line is always linted, so the fixture tests and the CI
corpus check can target it directly.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint.findings import PARSE_ERROR, Finding
from repro.lint.rules import ALL_RULES
from repro.lint.rules.base import ModuleContext, Rule
from repro.lint.suppressions import SuppressionIndex

#: directory names never descended into while walking roots.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", "data"}
)

#: file suffixes the engine knows how to lint.
_PY_SUFFIX = ".py"
_MD_SUFFIX = ".md"


def _select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """The subset of ALL_RULES matching --select / --ignore ids."""
    rules = list(ALL_RULES)
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = {r.upper() for r in ignore}
        unknown = dropped - {rule.id for rule in ALL_RULES}
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def iter_lintable_files(roots: Sequence[str]) -> Iterator[str]:
    """Yield lintable files under ``roots``, excluded dirs pruned.

    Explicit file arguments are yielded as-is (even inside an excluded
    directory); missing paths raise ``FileNotFoundError`` so a typo'd
    CI invocation fails loudly instead of silently linting nothing.
    """
    seen = set()
    for root in roots:
        path = Path(root)
        if path.is_file():
            key = os.path.normpath(str(path))
            if key not in seen:
                seen.add(key)
                yield str(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in DEFAULT_EXCLUDED_DIRS
            )
            for filename in sorted(filenames):
                if not filename.endswith((_PY_SUFFIX, _MD_SUFFIX)):
                    continue
                full = os.path.join(dirpath, filename)
                key = os.path.normpath(full)
                if key not in seen:
                    seen.add(key)
                    yield full


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all) over one file, suppressions applied."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=path,
                line=1,
                col=1,
                rule=PARSE_ERROR,
                message=f"could not read file: {exc}",
            )
        ]

    if path.endswith(_MD_SUFFIX):
        findings: List[Finding] = []
        for rule in active:
            findings.extend(rule.check_markdown(path, source))
        return sorted(findings)

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=PARSE_ERROR,
                message=f"syntax error: {exc.msg}",
            )
        ]

    ctx = ModuleContext(path=path, source=source, tree=tree)
    suppressions = SuppressionIndex(source)
    findings = []
    for rule in active:
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    roots: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint every file under ``roots`` and return all findings sorted."""
    rules = _select_rules(select, ignore)
    findings: List[Finding] = []
    for path in iter_lintable_files(roots):
        findings.extend(lint_file(path, rules))
    return sorted(findings)


def format_findings(findings: Iterable[Finding]) -> str:
    """Human-readable one-line-per-finding report."""
    return "\n".join(finding.format() for finding in findings)
