"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes follow the usual linter convention:

* ``0`` -- no findings;
* ``1`` -- findings reported;
* ``2`` -- usage error (unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import format_findings, lint_paths
from repro.lint.rules import ALL_RULES

#: roots linted when no paths are given.
DEFAULT_PATHS = ("src", "tests")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & contract static analysis for the repro "
            "codebase (rules REPRO001-REPRO005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _split_ids(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not values:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids or None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.id:<{width}}  {rule.name}: {rule.description}")
        return 0

    try:
        findings = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    elif findings:
        print(format_findings(findings))

    if findings:
        if args.format != "json":
            plural = "" if len(findings) == 1 else "s"
            print(f"\n{len(findings)} finding{plural}.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
