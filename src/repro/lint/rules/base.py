"""The rule framework: contexts, import resolution, and the Rule ABC.

Every rule works on a :class:`ModuleContext` -- one parsed file plus the
helpers rules keep needing:

* :class:`ImportMap` resolves local names to the dotted path they were
  imported from (``np.random.default_rng`` -> ``numpy.random.default_rng``
  under ``import numpy as np``), so rules match *what is called*, not
  what it happens to be spelled like in this file;
* path predicates (:func:`ModuleContext.has_part`) express "this file is
  part of a routing/metrics hot path" checks by directory name.

Rules are stateless singletons: one instance checks many files, so all
per-file state lives in the context (or in rule-local visitors).
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterator, Optional, Tuple

from repro.lint.findings import Finding


class ImportMap:
    """Local name -> dotted origin, from a module's import statements.

    ``import numpy as np`` binds ``np -> numpy``; ``import a.b`` binds
    ``a -> a``; ``from numpy.random import default_rng as rng`` binds
    ``rng -> numpy.random.default_rng``.  Relative imports are resolved
    with an unknown package root and therefore bind nothing (no repro
    rule needs to see through them).
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        imports.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        imports.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.aliases[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or None.

        The chain's head is expanded through the alias table; a head
        that was never imported resolves to itself (it may be a builtin
        or a module-local definition -- rules decide what that means).
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])


@dataclass
class ModuleContext:
    """One parsed Python file, as seen by every rule."""

    path: str
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap.from_tree(self.tree)

    def has_part(self, *names: str) -> bool:
        """Whether any path component equals one of ``names``.

        Matching on directory *names* rather than absolute prefixes
        keeps the predicate true for both ``src/repro/core/engine.py``
        and fixture trees like ``tests/data/lint/core/bad.py``.
        """
        parts = set(PurePath(self.path).parts)
        return any(name in parts for name in names)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        """A finding anchored at ``node``'s location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Rule(ABC):
    """One named, suppressible invariant.

    Subclasses set the class attributes and implement :meth:`check`.
    Rules that also understand markdown documents (spec strings quoted
    in docs) override :meth:`check_markdown`.
    """

    #: rule identifier, e.g. ``"REPRO001"``
    id: str = ""
    #: short kebab-case name, e.g. ``"unseeded-rng"``
    name: str = ""
    #: one-line description shown by ``--list-rules``
    description: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in one parsed module."""

    def check_markdown(self, path: str, text: str) -> Iterator[Finding]:
        """Markdown hook; rules without doc semantics yield nothing."""
        return iter(())


def call_name(node: ast.Call, imports: ImportMap) -> Optional[str]:
    """Resolved dotted name of a call's target, or None."""
    return imports.resolve(node.func)


def decorator_targets(node: ast.ClassDef, imports: ImportMap) -> Tuple[str, ...]:
    """Resolved dotted names of a class's decorators (call or bare)."""
    out = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = imports.resolve(target)
        if resolved is not None:
            out.append(resolved)
    return tuple(out)
