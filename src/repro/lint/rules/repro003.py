"""REPRO003: registered partitioners honour the route_chunk contract.

Every ``@register``-ed scheme is driven through
``Partitioner.route_chunk`` by the chunked engine, and the equivalence
suite asserts chunk decisions match per-message :meth:`route` replays.
Two static preconditions make that contract auditable at PR time:

* the class defines ``route_chunk`` itself, with the base signature
  ``(self, keys, timestamps=None)`` -- inheriting a generic fallback
  silently costs the vectorised path, and a renamed/reordered parameter
  breaks keyword callers in the engine;
* the class does not define ``route_stream`` -- the deprecated
  whole-stream shim was removed from the base class, and a subclass
  resurrecting it would dodge the chunk-equivalence tests entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule, decorator_targets

#: dotted names that mark a class as a registered partitioner scheme.
_REGISTER_NAMES = frozenset(
    {
        "repro.api.registry.register",
        "repro.api.register",
        "register",
    }
)

#: the base-class parameter names of route_chunk, in order.
_EXPECTED_PARAMS: Tuple[str, ...] = ("self", "keys", "timestamps")


def _is_registered(node: ast.ClassDef, ctx: ModuleContext) -> bool:
    return any(
        target in _REGISTER_NAMES for target in decorator_targets(node, ctx.imports)
    )


def _signature_matches(fn: ast.FunctionDef) -> bool:
    args = fn.args
    if args.posonlyargs or args.vararg or args.kwonlyargs or args.kwarg:
        return False
    names = tuple(a.arg for a in args.args)
    if names != _EXPECTED_PARAMS:
        return False
    # timestamps (and only timestamps) must carry a default.
    if len(args.defaults) != 1:
        return False
    default = args.defaults[0]
    return isinstance(default, ast.Constant) and default.value is None


class PartitionerContract(Rule):
    id = "REPRO003"
    name = "partitioner-contract"
    description = (
        "@register-ed schemes must define route_chunk(self, keys, "
        "timestamps=None) and must not define the removed route_stream"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_registered(node, ctx):
                continue
            route_chunk = None
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "route_chunk" and isinstance(item, ast.FunctionDef):
                    route_chunk = item
                elif item.name == "route_stream":
                    yield ctx.finding(
                        item,
                        self.id,
                        f"{node.name} defines route_stream, which was "
                        "removed from Partitioner; whole-stream routing "
                        "goes through route_chunk / "
                        "repro.core.engine.route_chunked",
                    )
            if route_chunk is None:
                yield ctx.finding(
                    node,
                    self.id,
                    f"registered partitioner {node.name} does not define "
                    "route_chunk; every registered scheme must implement "
                    "the chunk contract itself (the generic per-message "
                    "fallback hides vectorisation regressions)",
                )
            elif not _signature_matches(route_chunk):
                yield ctx.finding(
                    route_chunk,
                    self.id,
                    f"{node.name}.route_chunk must use the base-class "
                    "signature (self, keys, timestamps=None) so engine "
                    "keyword calls and the equivalence suite apply",
                )
