"""REPRO001: no unseeded randomness.

Every stream, hash family, and sweep cell in this repo is a pure
function of an explicit seed -- that is what makes `results/*.json`
byte-identical across reruns and ``--jobs`` counts.  A single
``np.random.default_rng()`` (entropy-seeded) or module-level
``random.*`` / ``np.random.*`` call (hidden global state, salted by
interpreter start-up) silently breaks that contract.

Flagged:

* ``np.random.default_rng()`` / ``np.random.RandomState()`` with no
  seed argument;
* calls through the legacy global-state surfaces: ``np.random.seed``,
  ``np.random.rand``, ``np.random.randint``, ... and the stdlib
  ``random`` module's functions.

Allowed: seeded constructions (``default_rng(7)``), generators threaded
as arguments, and anything on the allowlist / under a
``# repro: noqa[REPRO001]`` marker.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule, call_name

#: numpy legacy global-state entry points (``np.random.<fn>``).
_NUMPY_GLOBAL = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "bytes",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "exponential",
        "beta",
        "gamma",
        "zipf",
        "get_state",
        "set_state",
    }
)

#: stdlib ``random`` module functions (module-level = hidden global state).
_STDLIB_RANDOM = frozenset(
    {
        "random",
        "seed",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "lognormvariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
    }
)

#: path components exempt from this rule (none today; extend as needed).
ALLOWLIST_PARTS: Tuple[str, ...] = ()


class UnseededRng(Rule):
    id = "REPRO001"
    name = "unseeded-rng"
    description = (
        "no entropy-seeded Generators or global-state RNG calls: every "
        "random draw must flow from an explicit seed"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ALLOWLIST_PARTS and ctx.has_part(*ALLOWLIST_PARTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = call_name(node, ctx.imports)
            if resolved is None:
                continue
            if resolved in (
                "numpy.random.default_rng",
                "numpy.random.RandomState",
            ):
                if not node.args and not node.keywords:
                    tail = resolved.rsplit(".", 1)[1]
                    yield ctx.finding(
                        node,
                        self.id,
                        f"np.random.{tail}() without a seed draws from OS "
                        "entropy; pass an explicit seed (or thread a "
                        "Generator through)",
                    )
                continue
            if resolved.startswith("numpy.random."):
                tail = resolved[len("numpy.random.") :]
                if tail in _NUMPY_GLOBAL:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"np.random.{tail}() uses numpy's hidden global "
                        "RNG state; construct np.random.default_rng(seed) "
                        "and use it explicitly",
                    )
                continue
            if resolved.startswith("random."):
                tail = resolved[len("random.") :]
                if tail in _STDLIB_RANDOM:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"random.{tail}() uses the stdlib's hidden global "
                        "RNG state; use random.Random(seed) or a seeded "
                        "numpy Generator",
                    )
