"""Rule registry for :mod:`repro.lint`.

``ALL_RULES`` lists one instance of every rule in id order; the engine
and CLI iterate it, and ``--select`` / ``--ignore`` filter it by id.
"""

from __future__ import annotations

from typing import Tuple

from repro.lint.rules.base import (
    ImportMap,
    ModuleContext,
    Rule,
    call_name,
    decorator_targets,
)
from repro.lint.rules.repro001 import UnseededRng
from repro.lint.rules.repro002 import HotPathPurity
from repro.lint.rules.repro003 import PartitionerContract
from repro.lint.rules.repro004 import PicklableCells
from repro.lint.rules.repro005 import SpecCompleteness
from repro.lint.rules.repro006 import BoundedBlocking

ALL_RULES: Tuple[Rule, ...] = (
    UnseededRng(),
    HotPathPurity(),
    PartitionerContract(),
    PicklableCells(),
    SpecCompleteness(),
    BoundedBlocking(),
)

__all__ = [
    "ALL_RULES",
    "ImportMap",
    "ModuleContext",
    "Rule",
    "UnseededRng",
    "HotPathPurity",
    "PartitionerContract",
    "PicklableCells",
    "SpecCompleteness",
    "BoundedBlocking",
    "call_name",
    "decorator_targets",
]
