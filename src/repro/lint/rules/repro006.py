"""REPRO006: blocking in the runtime must be deadline-bounded.

The sharded runtime's robustness contract (ARCHITECTURE.md,
"Supervision & recovery") is that *no* failure mode can hang the
source or a worker: every wait either carries an explicit timeout or
lives inside a loop with a reachable exit that supervision can drive.
A single bare ``queue.get()`` or ``process.join()`` silently reverts
the whole subsystem to "hangs on the first dead peer" -- and the hang
only manifests under a failure, exactly when nobody is watching.

Flagged, in files under a ``runtime`` directory:

* ``<x>.join()`` with no arguments -- ``Process``/``Thread`` joins
  block forever on a wedged child; pass ``timeout=`` and escalate
  (``str.join`` always takes an argument, so it never matches);
* ``<x>.get()`` / ``<x>.recv()`` with no arguments -- queue and pipe
  reads block forever on a dead producer; pass ``timeout=``
  (``dict.get`` always takes an argument, so it never matches);
* ``while True:`` (or any constant-true condition) loops with no
  ``break``, ``return`` or ``raise`` anywhere in the body -- spin
  loops that nothing can end.  Loops over a state condition
  (``while not self.dead:``) are accepted; bounding those is the
  deadline logic's job, which the chaos tests exercise.

Suppress a deliberate unbounded wait with ``# repro: noqa[REPRO006]``
and a comment explaining why it cannot hang.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule

#: zero-argument attribute calls that block without a deadline.
_BLOCKING_METHODS = frozenset({"join", "get", "recv"})


def _is_constant_true(test: ast.expr) -> bool:
    """Whether a loop condition is statically always truthy."""
    return isinstance(test, ast.Constant) and bool(test.value)


class _ExitFinder(ast.NodeVisitor):
    """Whether a loop body contains a reachable exit statement.

    ``return``/``raise`` count at any depth except inside nested
    function definitions (those exit the inner function, not the
    loop); ``break`` additionally stops counting inside nested loops
    (it exits the inner loop only).
    """

    def __init__(self) -> None:
        self.found = False

    def visit_Break(self, node: ast.Break) -> None:
        self.found = True

    def visit_Return(self, node: ast.Return) -> None:
        self.found = True

    def visit_Raise(self, node: ast.Raise) -> None:
        self.found = True

    def visit_While(self, node: ast.While) -> None:
        self._visit_nested_loop(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_nested_loop(node)

    def _visit_nested_loop(self, node: ast.AST) -> None:
        # A break inside a nested loop exits that loop, not ours, but
        # returns and raises still propagate -- recurse with a finder
        # that ignores breaks.
        inner = _ReturnRaiseFinder()
        for child in ast.iter_child_nodes(node):
            inner.visit(child)
        if inner.found:
            self.found = True

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _ReturnRaiseFinder(_ExitFinder):
    def visit_Break(self, node: ast.Break) -> None:
        pass


class BoundedBlocking(Rule):
    id = "REPRO006"
    name = "bounded-blocking"
    description = (
        "runtime waits must carry deadlines: no bare join()/get()/"
        "recv() and no constant-true loops without an exit"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.has_part("runtime"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.While):
                yield from self._check_while(ctx, node)

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _BLOCKING_METHODS:
            return
        if node.args or node.keywords:
            return
        yield ctx.finding(
            node,
            self.id,
            f"bare .{func.attr}() blocks forever on a dead peer; pass "
            "timeout= and escalate to supervision on expiry",
        )

    def _check_while(
        self, ctx: ModuleContext, node: ast.While
    ) -> Iterator[Finding]:
        if not _is_constant_true(node.test):
            return
        finder = _ExitFinder()
        for child in node.body:
            finder.visit(child)
        if finder.found:
            return
        yield ctx.finding(
            node,
            self.id,
            "constant-true loop has no break/return/raise: nothing can "
            "end this wait; add a deadline check that exits or raises",
        )
