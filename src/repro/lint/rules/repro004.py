"""REPRO004: work shipped to process pools must be module-level.

``repro.core.parallel.parallel_map`` shards sweep cells over a
``ProcessPoolExecutor``.  Under the ``spawn``/``forkserver`` start
methods every task function is *pickled*, and pickling resolves
functions by qualified name: lambdas and closures raise
``PicklingError`` -- but only when a pool actually spawns, so the bug
hides on ``fork`` platforms and in ``REPRO_PARALLEL=0`` CI legs until
it detonates on someone else's machine.

The same contract covers worker *entrypoints*: the sharded runtime
(:mod:`repro.runtime`) hands each worker loop to
``multiprocessing.Process(target=...)``, and under ``spawn`` the
target is pickled exactly like a pool task function.

Flagged, at every ``parallel_map(fn, ...)`` call site and at every
``Process(target=...)`` construction:

* a ``lambda`` as the mapped function / process target;
* a name bound to a function *defined inside another function* in the
  same module (a closure by construction).

Module-level ``def``s and dotted references are accepted -- whether
their *arguments* pickle is the runtime contract the executor's tests
cover.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule

#: call targets whose first argument must be a picklable function.
_POOL_ENTRY_POINTS = frozenset({"parallel_map"})

#: constructors whose ``target=`` keyword must be a picklable function
#: (worker entrypoints shipped to child processes).
_PROCESS_CONSTRUCTORS = frozenset({"Process"})


def _callable_names(node: ast.Call) -> Iterator[str]:
    """Local names this call might refer to parallel_map by."""
    if isinstance(node.func, ast.Name):
        yield node.func.id
    elif isinstance(node.func, ast.Attribute):
        yield node.func.attr


class _DefIndex(ast.NodeVisitor):
    """Module-level vs nested function definitions in one module."""

    def __init__(self) -> None:
        self.module_level: Set[str] = set()
        self.nested: Set[str] = set()
        self._depth = 0

    def _visit_function(self, node: ast.AST, name: str) -> None:
        if self._depth == 0:
            self.module_level.add(name)
        else:
            self.nested.add(name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods are not module-level names, but they are not closures
        # either; stay neutral by treating class bodies as nesting.
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1


class PicklableCells(Rule):
    id = "REPRO004"
    name = "picklable-cells"
    description = (
        "functions handed to parallel_map must be module-level defs; "
        "lambdas and closures break pickling under spawn"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        index = _DefIndex()
        index.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            names = list(_callable_names(node))
            if node.args and any(n in _POOL_ENTRY_POINTS for n in names):
                yield from self._check_task_fn(
                    ctx, index, node.args[0], "passed to parallel_map"
                )
            if any(n in _PROCESS_CONSTRUCTORS for n in names):
                for kw in node.keywords:
                    if kw.arg == "target":
                        yield from self._check_task_fn(
                            ctx, index, kw.value, "used as a Process target"
                        )

    def _check_task_fn(
        self,
        ctx: ModuleContext,
        index: _DefIndex,
        fn: ast.expr,
        where: str,
    ) -> Iterator[Finding]:
        if isinstance(fn, ast.Lambda):
            yield ctx.finding(
                fn,
                self.id,
                f"lambda {where} cannot be pickled under the spawn "
                "start method; hoist it to a module-level def",
            )
        elif isinstance(fn, ast.Name):
            name = fn.id
            if name in index.nested and name not in index.module_level:
                yield ctx.finding(
                    fn,
                    self.id,
                    f"{name} is defined inside another function and is "
                    f"{where}; closures cannot be pickled under the "
                    "spawn start method -- hoist it to module level and "
                    "pass its inputs through the cell descriptor",
                )
