"""REPRO005: spec-string completeness against the live registry.

Scheme spec strings (``"pkg:d=3"``) appear as literals in experiment
configs, harness tables, tests, and docs.  A typo'd name or parameter
is only caught when that code path actually runs -- which for docs is
never, and for a rarely-exercised sweep cell may be hours into a run.
This rule resolves every literal spec it can see against the registry
itself (:mod:`repro.api.registry`), so registry drift -- renamed
schemes, dropped aliases, changed constructor parameters -- fails the
lint pass instead of a sweep.

Checked call sites (first-argument string literals):

* ``make_partitioner("...")``, ``resolve_scheme_name("...")``,
  ``scheme_info("...")``;
* ``<topology>.partition_by("...")``;
* ``run("...", ...)`` when it carries stream keywords (``keys``,
  ``dataset``, ``distribution``, ``num_workers``) marking it as the
  ``repro.api.run`` facade.

In markdown documents, backtick spans shaped like spec strings with
parameters (``name:key=value[,key=value]``) are validated the same way.

Fault-injection specs (``kill:w=1@n=5000`` -- the ``--fault`` grammar
of :mod:`repro.runtime.faults`) share the ``name:key=value`` shape, so
this rule routes any spec whose head is a fault kind through
``validate_fault_spec`` instead: quoted chaos recipes in docs and
``parse_fault``/``FaultPlan.parse`` literals in code must parse, and a
typo'd fault kind or parameter fails the lint pass, not the chaos run.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule

#: bare call names whose first literal argument is always a scheme spec.
_SPEC_CALLS = frozenset(
    {"make_partitioner", "resolve_scheme_name", "scheme_info"}
)

#: attribute call names whose first literal argument is a scheme spec.
_SPEC_METHODS = frozenset({"partition_by"})

#: keywords marking a bare ``run(...)`` call as the repro.api facade.
_RUN_KEYWORDS = frozenset({"keys", "dataset", "distribution", "num_workers"})

#: a backtick span that *looks like* a parameterised spec string.
_MD_SPEC = re.compile(
    r"`(?P<spec>[a-z][a-z0-9_-]*:[a-z0-9_]+=[^,`\s]+(?:,[a-z0-9_]+=[^,`\s]+)*)`"
)

#: bare/attribute call names whose literal arguments are fault specs.
_FAULT_CALLS = frozenset({"parse_fault"})


def _fault_kind(spec: str) -> Optional[str]:
    """The fault kind heading ``spec``, if it is a --fault string."""
    from repro.runtime.faults import FAULT_KINDS

    head = spec.split(":", 1)[0]
    return head if head in FAULT_KINDS else None


def validate_any_spec(spec: str) -> Optional[str]:
    """Validate a scheme *or* fault spec, dispatching on its head."""
    from repro.runtime.faults import validate_fault_spec

    if _fault_kind(spec) is not None:
        return validate_fault_spec(spec)
    return validate_spec(spec)


def validate_spec(spec: str) -> Optional[str]:
    """Why ``spec`` does not resolve via the registry, or None if it does.

    Imports the registry lazily so that merely loading the lint rules
    never drags in the scheme modules.
    """
    from repro.api.registry import parse_spec, scheme_info

    try:
        name, params = parse_spec(spec)
    except (TypeError, ValueError) as exc:
        return f"malformed spec {spec!r}: {exc}"
    try:
        info = scheme_info(name)
    except ValueError as exc:
        return str(exc)
    valid = set(info.valid_kwargs()) | set(info.param_aliases)
    unknown = sorted(k for k in params if k not in valid)
    if unknown:
        return (
            f"scheme {info.name!r} does not accept "
            f"{', '.join(repr(k) for k in unknown)}; valid parameters: "
            f"{', '.join(sorted(valid))}"
        )
    return None


def _spec_argument(node: ast.Call) -> Optional[ast.Constant]:
    """The call's literal first-argument spec string, if it has one."""
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first
    return None


def _is_fault_call(node: ast.Call) -> bool:
    """Whether this call's literal arguments are --fault grammar specs.

    Matches ``parse_fault("...")`` by name and ``FaultPlan.parse([...])``
    by shape (the attribute ``parse`` on a ``FaultPlan`` name).
    """
    if isinstance(node.func, ast.Name):
        return node.func.id in _FAULT_CALLS
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _FAULT_CALLS:
            return True
        return node.func.attr == "parse" and (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id == "FaultPlan"
        )
    return False


def _is_spec_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name):
        if node.func.id in _SPEC_CALLS:
            return True
        if node.func.id == "run":
            return any(kw.arg in _RUN_KEYWORDS for kw in node.keywords)
        return False
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _SPEC_CALLS or node.func.attr in _SPEC_METHODS:
            return True
        if node.func.attr == "run":
            return any(kw.arg in _RUN_KEYWORDS for kw in node.keywords)
    return False


class SpecCompleteness(Rule):
    id = "REPRO005"
    name = "spec-completeness"
    description = (
        "every scheme spec string quoted in code or docs must resolve "
        "through make_partitioner's registry"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _is_spec_call(node):
                literal = _spec_argument(node)
                if literal is None:
                    continue
                problem = validate_spec(literal.value)
                if problem is not None:
                    yield ctx.finding(literal, self.id, problem)
            elif _is_fault_call(node):
                yield from self._check_fault_literals(ctx, node)

    def _check_fault_literals(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        from repro.runtime.faults import validate_fault_spec

        if not node.args:
            return
        first = node.args[0]
        literals: list = []
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            literals.append(first)
        elif isinstance(first, (ast.List, ast.Tuple)):
            literals.extend(
                el
                for el in first.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            )
        for literal in literals:
            problem = validate_fault_spec(literal.value)
            if problem is not None:
                yield ctx.finding(literal, self.id, problem)

    def check_markdown(self, path: str, text: str) -> Iterator[Finding]:
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _MD_SPEC.finditer(line):
                problem = validate_any_spec(match.group("spec"))
                if problem is not None:
                    yield Finding(
                        path=path,
                        line=lineno,
                        col=match.start("spec") + 1,
                        rule=self.id,
                        message=problem,
                    )
