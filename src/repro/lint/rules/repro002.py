"""REPRO002: no builtin ``hash()`` or wall-clock reads in hot paths.

Two cross-process determinism hazards, both enforced in the modules
that make routing decisions or accumulate routing metrics:

* builtin ``hash()`` is salted per interpreter by PYTHONHASHSEED, so
  two worker processes disagree about every string key's hash -- the
  exact failure the seeded Murmur/splitmix64 functions in
  :mod:`repro.hashing` exist to prevent;
* ``time.time()`` / ``datetime.now()`` (and friends) read the wall
  clock, so replays of the same stream produce different values run to
  run and process to process.  Simulated time must come from message
  timestamps or the event loop's clock.

"Hot path" is determined by directory name: any file under a
``partitioning``, ``core``, ``hashing``, ``load``, ``sketches``,
``queueing``, or ``runtime`` directory.  Timing *harnesses*
(``repro.reports.bench``, experiment CLIs) live outside those trees
and may measure wall-clock freely.  The sharded runtime
(``repro.runtime``) does stamp enqueue times with ``perf_counter`` --
those reads carry explicit ``# repro: noqa[REPRO002]`` suppressions
with a justification, so every *new* clock read there still needs a
deliberate sign-off.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ModuleContext, Rule, call_name

#: directory names whose files are routing/metrics hot paths.
HOT_PATH_PARTS: Tuple[str, ...] = (
    "partitioning",
    "core",
    "hashing",
    "load",
    "sketches",
    "queueing",
    "runtime",
)

#: wall-clock reads (resolved dotted names).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class HotPathPurity(Rule):
    id = "REPRO002"
    name = "hot-path-purity"
    description = (
        "routing/metrics hot paths must not call builtin hash() "
        "(PYTHONHASHSEED-salted) or read the wall clock"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.has_part(*HOT_PATH_PARTS):
            return
        hash_shadowed = "hash" in ctx.imports.aliases or any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "hash"
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                not hash_shadowed
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "builtin hash() is salted per process by "
                    "PYTHONHASHSEED; use the seeded functions in "
                    "repro.hashing so workers agree on every key",
                )
                continue
            resolved = call_name(node, ctx.imports)
            if resolved in _WALL_CLOCK:
                yield ctx.finding(
                    node,
                    self.id,
                    f"{resolved}() reads the wall clock inside a hot "
                    "path; derive time from message timestamps or the "
                    "EventLoop clock instead",
                )
