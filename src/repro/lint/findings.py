"""The finding record every lint rule emits.

A finding pins one rule violation to one source location.  Findings are
value objects: rules yield them, the engine filters them through the
suppression index, and the CLI sorts and renders them (human one-liners
or a JSON document).  Ordering is by location so output is stable across
rule-execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: Pseudo-rule id used for files the engine cannot parse.  Not
#: suppressible and not selectable: a syntax error hides every real
#: finding in the file, so it must always surface.
PARSE_ERROR = "REPRO000"
