"""repro.lint: determinism & contract static analysis.

An AST-based pass over ``src/`` and ``tests/`` enforcing the project's
reproducibility invariants as named, suppressible rules:

========  ====================  ==============================================
id        name                  invariant
========  ====================  ==============================================
REPRO001  unseeded-rng          every random draw flows from an explicit seed
REPRO002  hot-path-purity       no builtin hash() / wall-clock reads in
                                routing & metrics hot paths
REPRO003  partitioner-contract  registered schemes implement route_chunk with
                                the base signature; no route_stream revival
REPRO004  picklable-cells       parallel_map targets are module-level defs
REPRO005  spec-completeness     literal scheme specs resolve via the registry
========  ====================  ==============================================

Suppress a finding in place with ``# repro: noqa`` (all rules) or
``# repro: noqa[REPRO001,REPRO004]`` (listed rules) on the offending
line.  Run ``python -m repro.lint --list-rules`` for the rule table.
"""

from __future__ import annotations

from repro.lint.engine import lint_file, lint_paths
from repro.lint.findings import PARSE_ERROR, Finding
from repro.lint.rules import ALL_RULES, Rule
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "ALL_RULES",
    "Finding",
    "PARSE_ERROR",
    "Rule",
    "SuppressionIndex",
    "lint_file",
    "lint_paths",
]
