"""The single ``run()`` entry point and its unified :class:`RunResult`.

Both execution paths of this reproduction -- the frequency-only stream
replay (Sections V's Q1-Q3 simulations) and the discrete-event DSPE
cluster (Q4's throughput/latency/memory deployment experiments) --
report through one result type, so notebooks, experiment harnesses, and
benchmarks can swap paths without reshaping their downstream code.

Both paths also *execute* through one core: the frequency path replays
on the chunked engine (:func:`repro.core.engine.replay_stream` /
``replay_per_source``, reached via the thin
:mod:`repro.simulation` adapters) and the DSPE path schedules on the
same package's :class:`~repro.core.engine.EventLoop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Type, Union

import numpy as np

from repro.api.registry import make_partitioner

if TYPE_CHECKING:
    from repro.api.topology import Topology
    from repro.dspe.metrics import RunMetrics
    from repro.partitioning.base import Partitioner
    from repro.simulation.runner import SimulationResult
    from repro.streams.distributions import KeyDistribution

__all__ = ["RunResult", "run"]


@dataclass
class RunResult:
    """Unified outcome of one experiment run.

    Frequency-only runs leave the timing fields (``throughput``,
    ``latency_*``) as ``None``; DSPE runs fill everything.  Memory is
    live partial counters for DSPE runs and routing-table entries for
    frequency-only runs (the paper's practicality metric).

    .. note:: The DSPE simulator does not track an imbalance time
       series, so for DSPE runs ``average_imbalance`` equals
       ``final_imbalance`` (both the max-mean of the final worker
       loads); only frequency-only runs report a checkpoint-averaged
       ``average_imbalance``.  Compare like with like across paths.
    """

    scheme: str
    num_workers: int
    num_sources: int
    num_messages: int
    worker_loads: np.ndarray = field(repr=False)
    average_imbalance: float = 0.0
    final_imbalance: float = 0.0
    #: tuples per second of measured time (DSPE path only)
    throughput: Optional[float] = None
    latency_mean: Optional[float] = None
    latency_p50: Optional[float] = None
    latency_p99: Optional[float] = None
    latency_max: Optional[float] = None
    average_memory: Optional[float] = None
    peak_memory: Optional[float] = None
    #: the underlying RunMetrics / SimulationResult, for specialists
    details: Any = field(default=None, repr=False)

    @property
    def average_imbalance_fraction(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.average_imbalance / self.num_messages

    @property
    def final_imbalance_fraction(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.final_imbalance / self.num_messages

    @classmethod
    def from_simulation(
        cls, sim: "SimulationResult", memory_entries: Optional[int] = None
    ) -> "RunResult":
        """Wrap a frequency-only :class:`SimulationResult`."""
        return cls(
            scheme=sim.scheme,
            num_workers=sim.num_workers,
            num_sources=sim.num_sources,
            num_messages=sim.num_messages,
            worker_loads=np.asarray(sim.final_loads),
            average_imbalance=sim.average_imbalance,
            final_imbalance=sim.final_imbalance,
            average_memory=(
                float(memory_entries) if memory_entries is not None else None
            ),
            peak_memory=(
                float(memory_entries) if memory_entries is not None else None
            ),
            details=sim,
        )

    @classmethod
    def from_metrics(cls, metrics: "RunMetrics", num_sources: int = 1) -> "RunResult":
        """Wrap a DSPE :class:`~repro.dspe.metrics.RunMetrics`.

        The cluster simulator reports final loads only, so
        ``average_imbalance`` and ``final_imbalance`` are both the
        end-of-run snapshot here (see the class note).
        """
        loads = np.asarray(metrics.worker_loads, dtype=np.float64)
        imbalance = float(loads.max() - loads.mean()) if loads.size else 0.0
        return cls(
            scheme=metrics.scheme,
            num_workers=len(metrics.worker_loads),
            num_sources=num_sources,
            num_messages=metrics.completed,
            worker_loads=loads,
            average_imbalance=imbalance,
            final_imbalance=imbalance,
            throughput=metrics.throughput,
            latency_mean=metrics.latency.mean,
            latency_p50=metrics.latency.percentile(50),
            latency_p99=metrics.latency.percentile(99),
            latency_max=metrics.latency.max,
            average_memory=metrics.average_memory_counters,
            peak_memory=float(metrics.peak_memory_counters),
            details=metrics,
        )

    def summary(self) -> str:
        """One-line human-readable digest of either path."""
        parts = [
            f"{self.scheme}: W={self.num_workers} S={self.num_sources}",
            f"m={self.num_messages}",
            f"avg I={self.average_imbalance:.1f}"
            f" (fraction {self.average_imbalance_fraction:.2e})",
        ]
        if self.throughput is not None:
            parts.append(f"throughput={self.throughput:.0f}/s")
        if self.latency_mean is not None:
            parts.append(f"latency(mean)={self.latency_mean * 1e3:.2f}ms")
        if self.average_memory is not None:
            parts.append(f"memory={self.average_memory:.0f}")
        return " ".join(parts)


def _resolve_distribution(
    distribution: Union[str, "KeyDistribution", None], dataset: Optional[str]
) -> Optional["KeyDistribution"]:
    """Normalise the (distribution, dataset) pair to a KeyDistribution."""
    from repro.streams.datasets import get_dataset

    if distribution is not None and dataset is not None:
        raise ValueError("pass either distribution or dataset, not both")
    if dataset is not None:
        return get_dataset(dataset).distribution()
    if isinstance(distribution, str):
        return get_dataset(distribution).distribution()
    return distribution


def run(
    target: Union[str, "Partitioner", Type["Partitioner"], "Topology"],
    *,
    keys: Optional[Sequence[Any]] = None,
    distribution: Union[str, "KeyDistribution", None] = None,
    dataset: Optional[str] = None,
    num_messages: Optional[int] = None,
    num_workers: Optional[int] = None,
    num_sources: Optional[int] = None,
    seed: Optional[int] = None,
    num_checkpoints: Optional[int] = None,
    timestamps: Optional[Sequence[float]] = None,
    keep_assignments: bool = False,
    **scheme_kwargs: Any,
) -> RunResult:
    """Run one experiment and return a unified :class:`RunResult`.

    Two dispatch modes, by the type of ``target``:

    **Topology** (DSPE path).  ``target`` is a
    :class:`~repro.api.topology.Topology`; the discrete-event cluster is
    built and run.  ``distribution`` / ``dataset`` override the
    topology's own source; other stream arguments are invalid here.

    **Scheme** (frequency path).  ``target`` is a scheme name, spec
    string (``"pkg:d=3"``), registered class, or partitioner instance.
    Keys come from ``keys``, or are sampled from ``distribution`` /
    ``dataset`` (``num_messages`` long, default 100k, seeded by
    ``seed``).  With ``num_sources > 1`` the stream is split among
    independent per-source partitioner instances, as in the paper's
    distributed setting.

    Examples
    --------
    >>> run("pkg", dataset="WP", num_workers=10).average_imbalance
    >>> run("pkg:d=3", keys=my_keys, num_workers=16, num_sources=5)
    >>> run(Topology().source("WP").partition_by("pkg").workers(9))
    """
    from repro.api.topology import Topology

    if isinstance(target, Topology):
        # Reject every frequency-path argument instead of silently
        # ignoring it: a Topology carries its own seed, worker count,
        # spout count, and scheme configuration.
        ignored = {
            "keys": keys is not None,
            "num_messages": num_messages is not None,
            "num_workers": num_workers is not None,
            "num_sources": num_sources is not None,
            "seed": seed is not None,
            "num_checkpoints": num_checkpoints is not None,
            "timestamps": timestamps is not None,
            "keep_assignments": keep_assignments,
        }
        bad = [name for name, given in ignored.items() if given]
        bad += sorted(scheme_kwargs)
        if bad:
            raise ValueError(
                f"{', '.join(bad)} do(es) not apply to a Topology run; "
                "configure the topology itself (.seed(), .workers(), "
                ".spouts(), .partition_by(), .source(), ...)"
            )
        dist = _resolve_distribution(distribution, dataset)
        cluster = target.build(distribution=dist)
        metrics = cluster.run()
        return RunResult.from_metrics(
            metrics, num_sources=cluster.config.num_spouts
        )

    # Frequency-only path.
    from repro.partitioning.base import Partitioner
    from repro.simulation.multisource import simulate_partitioner_per_source
    from repro.simulation.runner import simulate_stream

    num_sources = 1 if num_sources is None else int(num_sources)
    seed = 0 if seed is None else int(seed)
    num_checkpoints = 100 if num_checkpoints is None else int(num_checkpoints)

    if num_workers is None:
        if isinstance(target, Partitioner):
            num_workers = target.num_workers
        else:
            raise ValueError(
                "num_workers is required when target is a scheme name"
            )

    if keys is None:
        dist = _resolve_distribution(distribution, dataset)
        if dist is None:
            raise ValueError(
                "provide keys, or a distribution/dataset to sample from"
            )
        n = 100_000 if num_messages is None else int(num_messages)
        key_array = dist.sample(n, np.random.default_rng(seed))
    elif distribution is not None or dataset is not None:
        raise ValueError("pass either keys or a distribution/dataset, not both")
    else:
        key_array = np.asarray(keys)

    if num_sources <= 1:
        partitioner = make_partitioner(target, num_workers, seed=seed, **scheme_kwargs)
        sim = simulate_stream(
            key_array,
            partitioner,
            timestamps=timestamps,
            num_checkpoints=num_checkpoints,
            keep_assignments=keep_assignments,
        )
        return RunResult.from_simulation(
            sim, memory_entries=partitioner.memory_entries()
        )

    if isinstance(target, Partitioner):
        raise ValueError(
            "multi-source runs need one partitioner per source; pass a "
            "scheme name or spec string instead of a built instance"
        )
    instances: List[Partitioner] = []

    def per_source(_s: int) -> Partitioner:
        p = make_partitioner(target, num_workers, seed=seed, **scheme_kwargs)
        instances.append(p)
        return p

    sim = simulate_partitioner_per_source(
        key_array,
        per_source,
        num_workers,
        num_sources=num_sources,
        timestamps=timestamps,
        num_checkpoints=num_checkpoints,
        keep_assignments=keep_assignments,
    )
    return RunResult.from_simulation(
        sim, memory_entries=sum(p.memory_entries() for p in instances)
    )
