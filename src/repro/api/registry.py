"""The partitioner registry: one name -> factory table for every scheme.

The paper's pitch is that PKG is a *drop-in* partitioning operator; the
code should make swapping schemes equally drop-in.  Every partitioner
class registers itself here with :func:`register`, and every consumer
(DSPE topology, frequency simulations, experiment harnesses, benchmarks)
obtains instances through :func:`make_partitioner` instead of keeping a
private name->constructor dict.

Schemes are addressed by canonical name, by alias, or by a compact
**spec string** of the form ``"name:key=value,key=value"``::

    make_partitioner("pkg", 10)                 # PKG, d = 2
    make_partitioner("pkg:d=3", 10)             # Greedy-3
    make_partitioner("kg-rebalance:interval=5000", 10, seed=7)
    make_partitioner("ch-pkg:d=2,vnodes=128", 10)

Spec parameters map onto constructor keyword arguments (via per-scheme
short aliases such as ``d`` -> ``num_choices``); explicit keyword
arguments passed to :func:`make_partitioner` override spec values.

This module deliberately imports nothing from the rest of ``repro`` at
import time, so that partitioner modules can decorate themselves with
``@register`` without creating an import cycle; the built-in schemes are
pulled in lazily on first lookup.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

#: the decorated class, returned unchanged by @register.
_ClassT = TypeVar("_ClassT", bound=type)

__all__ = [
    "SchemeInfo",
    "register",
    "make_partitioner",
    "parse_spec",
    "available_schemes",
    "scheme_info",
    "resolve_scheme_name",
]

#: canonical scheme name -> registration record
_REGISTRY: Dict[str, "SchemeInfo"] = {}
#: lowercase alias (including the canonical name itself) -> canonical name
_ALIASES: Dict[str, str] = {}


@dataclass(frozen=True)
class SchemeInfo:
    """One registered partitioning scheme."""

    name: str
    factory: Callable[..., Any]
    aliases: Tuple[str, ...] = ()
    #: spec-string shorthand -> constructor keyword argument
    param_aliases: Mapping[str, str] = field(default_factory=dict)
    description: str = ""

    @property
    def accepts_seed(self) -> bool:
        return "seed" in self._parameters

    @property
    def _parameters(self) -> Mapping[str, "inspect.Parameter"]:
        try:
            return inspect.signature(self.factory).parameters
        except (TypeError, ValueError):  # builtins without signatures
            return {}

    def valid_kwargs(self) -> Tuple[str, ...]:
        """Keyword arguments the scheme's constructor understands."""
        skip = {"self", "num_workers"}
        return tuple(
            n
            for n, p in self._parameters.items()
            if n not in skip
            and p.kind
            in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        )


def register(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
    params: Optional[Mapping[str, str]] = None,
    description: str = "",
) -> Callable[[_ClassT], _ClassT]:
    """Class decorator registering a :class:`Partitioner` under ``name``.

    Parameters
    ----------
    name:
        Canonical lowercase scheme name (``"pkg"``, ``"kg"``, ...).
    aliases:
        Alternative lookup names (``"hash"`` for ``"kg"``, ...).
    params:
        Spec-string shorthands, e.g. ``{"d": "num_choices"}`` lets users
        write ``"pkg:d=3"`` instead of ``"pkg:num_choices=3"``.
    description:
        One-line human-readable summary (shown by ``available_schemes``
        consumers and error messages).
    """

    def decorate(cls: _ClassT) -> _ClassT:
        info = SchemeInfo(
            name=name.lower(),
            factory=cls,
            aliases=tuple(a.lower() for a in aliases),
            param_aliases=dict(params or {}),
            description=description or (inspect.getdoc(cls) or "").split("\n")[0],
        )
        _REGISTRY[info.name] = info
        for key in (info.name,) + info.aliases:
            existing = _ALIASES.get(key)
            if existing is not None and existing != info.name:
                raise ValueError(
                    f"scheme alias {key!r} already registered for {existing!r}"
                )
            _ALIASES[key] = info.name
        return cls

    return decorate


def _ensure_builtin_schemes() -> None:
    """Import the scheme modules so their ``@register`` decorators run."""
    import repro.partitioning  # noqa: F401  (import side effect)


def _coerce(value: str) -> Any:
    """Best-effort typing of a spec-string value: int, float, bool, str."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    lowered = value.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    return value


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split a spec string into ``(scheme_name, params)``.

    ``"pkg:d=3,seed=7"`` -> ``("pkg", {"d": 3, "seed": 7})``.  Raises
    :class:`ValueError` on malformed input; scheme-name resolution and
    parameter validation happen later, in :func:`make_partitioner`.
    """
    if not isinstance(spec, str):
        raise TypeError(f"spec must be a string, got {type(spec).__name__}")
    spec = spec.strip()
    if not spec:
        raise ValueError("empty partitioner spec")
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"spec {spec!r} has no scheme name")
    params: Dict[str, Any] = {}
    if rest.strip():
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed spec parameter {item!r} in {spec!r}; "
                    "expected key=value"
                )
            params[key] = _coerce(value)
    return name, params


def resolve_scheme_name(name: str) -> str:
    """Canonical name for ``name`` (which may be an alias or spec)."""
    _ensure_builtin_schemes()
    base = parse_spec(name)[0] if isinstance(name, str) else name
    canonical = _ALIASES.get(base)
    if canonical is None:
        raise ValueError(
            f"unknown partitioning scheme {base!r}; "
            f"known: {', '.join(available_schemes())}"
        )
    return canonical


def available_schemes() -> Tuple[str, ...]:
    """Canonical names of every registered scheme, sorted."""
    _ensure_builtin_schemes()
    return tuple(sorted(_REGISTRY))


def scheme_info(name: str) -> SchemeInfo:
    """Registration record for a scheme name, alias, or spec string."""
    return _REGISTRY[resolve_scheme_name(name)]


def make_partitioner(
    spec: Union[str, "Partitioner", Type["Partitioner"]],
    num_workers: int,
    seed: int = 0,
    **kwargs: Any,
) -> "Partitioner":
    """Build a partitioner from a spec string, name, class, or instance.

    Parameters
    ----------
    spec:
        A scheme name (``"pkg"``), alias (``"hash"``), compact spec
        string (``"pkg:d=3"``), a registered :class:`Partitioner`
        subclass, or an already-built instance (returned as-is after a
        ``num_workers`` consistency check).
    num_workers:
        Downstream parallelism W.
    seed:
        Hash/RNG seed, forwarded to constructors that accept one.
    **kwargs:
        Extra constructor arguments; they override spec-string values.

    Raises :class:`ValueError` for unknown schemes, malformed specs, and
    parameters the scheme's constructor does not understand.
    """
    # Instance passthrough.
    from repro.partitioning.base import Partitioner

    if isinstance(spec, Partitioner):
        if kwargs:
            raise ValueError(
                "cannot apply constructor kwargs to an already-built "
                f"partitioner instance ({sorted(kwargs)})"
            )
        if spec.num_workers != num_workers:
            raise ValueError(
                f"partitioner instance has num_workers={spec.num_workers}, "
                f"expected {num_workers}"
            )
        return spec

    _ensure_builtin_schemes()

    spec_params: Dict[str, Any]
    if isinstance(spec, type) and issubclass(spec, Partitioner):
        infos = [i for i in _REGISTRY.values() if i.factory is spec]
        if not infos:
            raise ValueError(
                f"{spec.__name__} is not a registered scheme; "
                "decorate it with @register(...)"
            )
        info, spec_params = infos[0], {}
    else:
        name, spec_params = parse_spec(spec)
        canonical = _ALIASES.get(name)
        if canonical is None:
            raise ValueError(
                f"unknown partitioning scheme {name!r}; "
                f"known: {', '.join(available_schemes())}"
            )
        info = _REGISTRY[canonical]

    build_kwargs: Dict[str, Any] = {}
    valid = info.valid_kwargs()
    # kwargs last: explicit arguments override spec-string values.
    for key, value in {**spec_params, **kwargs}.items():
        target = info.param_aliases.get(key, key)
        if target not in valid:
            raise ValueError(
                f"scheme {info.name!r} does not accept parameter {key!r}; "
                f"valid: {', '.join(sorted(set(valid) | set(info.param_aliases)))}"
            )
        build_kwargs[target] = value
    if info.accepts_seed:
        build_kwargs.setdefault("seed", seed)
    return info.factory(num_workers, **build_kwargs)
