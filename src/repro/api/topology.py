"""Fluent topology builder for the simulated DSPE cluster.

Generalises the hard-coded word-count cluster of
:mod:`repro.dspe.topology`: arbitrary source/worker/aggregator
configurations -- including stragglers and heterogeneous workers -- are
expressed by chaining, without editing dataclasses::

    topo = (Topology()
            .source("WP")
            .spouts(2)
            .partition_by("pkg:d=2")
            .workers(9, cpu_delay=0.4e-3)
            .straggler(3, factor=4.0)
            .aggregate(every=30.0)
            .timing(duration=20.0, warmup=4.0)
            .seed(7))
    result = topo.run()          # or: repro.api.run(topo)

Every setter validates its own arguments eagerly and raises
:class:`TopologyError`; cross-field constraints (straggler index vs
worker count, duration vs warmup, ...) are checked at :meth:`build`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Type,
    Union,
)

from repro.api.registry import make_partitioner, resolve_scheme_name

if TYPE_CHECKING:
    from repro.api.facade import RunResult
    from repro.dspe.topology import ClusterConfig, WordCountCluster
    from repro.partitioning.base import Partitioner
    from repro.streams.distributions import KeyDistribution

#: what .partition_by()/.source() accept: spec/name, class, or instance.
_SchemeArg = Union[str, "Partitioner", Type["Partitioner"]]
_SourceArg = Union[str, "KeyDistribution"]

__all__ = ["Topology", "TopologyError"]


class TopologyError(ValueError):
    """Invalid topology construction."""


class Topology:
    """Fluent builder for spout -> workers (-> aggregator) clusters."""

    def __init__(self) -> None:
        self._source: Optional[_SourceArg] = None
        self._num_spouts = 1
        self._scheme: _SchemeArg = "pkg"
        self._scheme_kwargs: Dict[str, Any] = {}
        self._partitioner: Optional["Partitioner"] = None  # instance injection
        self._num_workers = 9
        self._cpu_delay = 0.4e-3
        self._worker_delays: Optional[List[float]] = None
        self._straggler_worker = -1
        self._straggler_factor = 1.0
        self._aggregation_period = 0.0
        self._flush_entry_cost: Optional[float] = None
        self._aggregator_entry_cost: Optional[float] = None
        self._duration = 20.0
        self._warmup = 4.0
        self._emit_cost: Optional[float] = None
        self._network_delay: Optional[float] = None
        self._max_pending: Optional[int] = None
        self._seed = 0

    # ---------------------------------------------------------- sources

    def source(self, distribution: _SourceArg) -> "Topology":
        """Key source: a ``KeyDistribution`` or a Table I dataset symbol."""
        if distribution is None:
            raise TopologyError("source distribution must not be None")
        self._source = distribution
        return self

    def spouts(self, count: int) -> "Topology":
        """Number of source PEIs (each with its own partitioner state)."""
        if count < 1:
            raise TopologyError(f"spouts must be >= 1, got {count}")
        self._num_spouts = int(count)
        return self

    # ----------------------------------------------------- partitioning

    def partition_by(self, scheme: _SchemeArg, **kwargs: Any) -> "Topology":
        """Partitioning scheme: spec string, name, class, or instance.

        Spec strings go through the registry (``"pkg:d=3"``); keyword
        arguments override spec parameters.  Passing a built
        :class:`~repro.partitioning.base.Partitioner` instance pins that
        exact object to the (single) spout.
        """
        from repro.partitioning.base import Partitioner

        if isinstance(scheme, Partitioner):
            if kwargs:
                raise TopologyError(
                    "cannot apply scheme kwargs to a partitioner instance"
                )
            self._partitioner = scheme
            self._scheme = scheme.name.lower()
            self._scheme_kwargs = {}
            return self
        if isinstance(scheme, str):
            resolve_scheme_name(scheme)  # fail fast on unknown names
        self._partitioner = None
        self._scheme = scheme
        self._scheme_kwargs = dict(kwargs)
        return self

    # ---------------------------------------------------------- workers

    def workers(
        self,
        count: Optional[int] = None,
        cpu_delay: Optional[float] = None,
        delays: Optional[Sequence[float]] = None,
    ) -> "Topology":
        """Worker pool: uniform ``cpu_delay`` or per-worker ``delays``.

        ``delays`` makes the pool heterogeneous (one CPU delay per
        worker); ``count`` may be omitted then and is inferred.
        """
        if delays is not None:
            delays = [float(d) for d in delays]
            if not delays:
                raise TopologyError("delays must not be empty")
            if any(d <= 0 for d in delays):
                raise TopologyError("every worker delay must be positive")
            if count is not None and count != len(delays):
                raise TopologyError(
                    f"count={count} disagrees with len(delays)={len(delays)}"
                )
            self._worker_delays = list(delays)
            self._num_workers = len(delays)
        elif count is not None:
            if count < 1:
                raise TopologyError(f"workers must be >= 1, got {count}")
            self._num_workers = int(count)
            self._worker_delays = None
        elif cpu_delay is None:
            raise TopologyError("workers() needs count, cpu_delay, or delays")
        if cpu_delay is not None:
            if cpu_delay <= 0:
                raise TopologyError(f"cpu_delay must be positive, got {cpu_delay}")
            self._cpu_delay = float(cpu_delay)
        return self

    def straggler(self, worker: int, factor: float) -> "Topology":
        """Slow one worker's CPU by ``factor`` (failure injection)."""
        if worker < 0:
            raise TopologyError(f"straggler worker must be >= 0, got {worker}")
        if factor <= 0:
            raise TopologyError(f"straggler factor must be positive, got {factor}")
        self._straggler_worker = int(worker)
        self._straggler_factor = float(factor)
        return self

    # ------------------------------------------------------ aggregation

    def aggregate(
        self,
        every: float,
        flush_entry_cost: Optional[float] = None,
        aggregator_entry_cost: Optional[float] = None,
    ) -> "Topology":
        """Enable the aggregation stage, flushing every ``every`` seconds.

        ``every=0`` disables aggregation (the Figure 5(a) setup).
        """
        if every < 0:
            raise TopologyError(f"aggregation period must be >= 0, got {every}")
        self._aggregation_period = float(every)
        if flush_entry_cost is not None:
            if flush_entry_cost < 0:
                raise TopologyError("flush_entry_cost must be >= 0")
            self._flush_entry_cost = float(flush_entry_cost)
        if aggregator_entry_cost is not None:
            if aggregator_entry_cost < 0:
                raise TopologyError("aggregator_entry_cost must be >= 0")
            self._aggregator_entry_cost = float(aggregator_entry_cost)
        return self

    # ----------------------------------------------------------- timing

    def timing(
        self, duration: Optional[float] = None, warmup: Optional[float] = None
    ) -> "Topology":
        """Simulated run length and measurement warmup, in seconds."""
        if duration is not None:
            if duration <= 0:
                raise TopologyError(f"duration must be positive, got {duration}")
            self._duration = float(duration)
        if warmup is not None:
            if warmup < 0:
                raise TopologyError(f"warmup must be >= 0, got {warmup}")
            self._warmup = float(warmup)
        return self

    def network(
        self,
        delay: Optional[float] = None,
        emit_cost: Optional[float] = None,
        max_pending: Optional[int] = None,
    ) -> "Topology":
        """Network hop latency, spout emit cost, and pending window."""
        if delay is not None:
            if delay < 0:
                raise TopologyError(f"network delay must be >= 0, got {delay}")
            self._network_delay = float(delay)
        if emit_cost is not None:
            if emit_cost < 0:
                raise TopologyError(f"emit_cost must be >= 0, got {emit_cost}")
            self._emit_cost = float(emit_cost)
        if max_pending is not None:
            if max_pending < 1:
                raise TopologyError(f"max_pending must be >= 1, got {max_pending}")
            self._max_pending = int(max_pending)
        return self

    def seed(self, seed: int) -> "Topology":
        """Seed for hashing, sampling, and latency reservoirs."""
        self._seed = int(seed)
        return self

    # ------------------------------------------------------------ build

    def to_config(self) -> "ClusterConfig":
        """The :class:`~repro.dspe.topology.ClusterConfig` this builds."""
        from repro.dspe.topology import ClusterConfig

        if self._straggler_worker >= self._num_workers:
            raise TopologyError(
                f"straggler worker {self._straggler_worker} out of range "
                f"for {self._num_workers} workers"
            )
        if self._duration <= self._warmup:
            raise TopologyError(
                f"duration ({self._duration}s) must exceed warmup "
                f"({self._warmup}s)"
            )
        kwargs: Dict[str, Any] = dict(
            num_workers=self._num_workers,
            cpu_delay=self._cpu_delay,
            duration=self._duration,
            warmup=self._warmup,
            aggregation_period=self._aggregation_period,
            num_spouts=self._num_spouts,
            straggler_worker=self._straggler_worker,
            straggler_factor=self._straggler_factor,
            seed=self._seed,
        )
        if self._flush_entry_cost is not None:
            kwargs["flush_entry_cost"] = self._flush_entry_cost
        if self._aggregator_entry_cost is not None:
            kwargs["aggregator_entry_cost"] = self._aggregator_entry_cost
        if self._network_delay is not None:
            kwargs["network_delay"] = self._network_delay
        if self._emit_cost is not None:
            kwargs["emit_cost"] = self._emit_cost
        if self._max_pending is not None:
            kwargs["max_pending"] = self._max_pending
        return ClusterConfig(**kwargs)

    def _resolve_source(
        self, distribution: Optional[_SourceArg] = None
    ) -> "KeyDistribution":
        from repro.streams.datasets import get_dataset

        dist = distribution if distribution is not None else self._source
        if dist is None:
            raise TopologyError(
                "no key source: call .source(...) or pass a distribution"
            )
        if isinstance(dist, str):
            dist = get_dataset(dist).distribution()
        return dist

    def build(
        self, distribution: Optional[_SourceArg] = None
    ) -> "WordCountCluster":
        """Materialise a runnable :class:`WordCountCluster`."""
        from repro.dspe.topology import WordCountCluster

        config = self.to_config()
        if self._partitioner is not None and self._num_spouts > 1:
            raise TopologyError(
                "a pinned partitioner instance only supports one spout"
            )
        return WordCountCluster(
            self._scheme if isinstance(self._scheme, str) else "custom",
            self._resolve_source(distribution),
            config,
            partitioner=self._partitioner,
            partitioner_factory=(
                None
                if self._partitioner is not None
                else self._make_partitioner_factory(config)
            ),
            worker_cpu_delays=self._worker_delays,
        )

    def _make_partitioner_factory(
        self, config: "ClusterConfig"
    ) -> Callable[[int], "Partitioner"]:
        scheme, kwargs = self._scheme, dict(self._scheme_kwargs)

        def factory(_spout_index: int) -> "Partitioner":
            return make_partitioner(
                scheme, config.num_workers, seed=config.seed, **kwargs
            )

        return factory

    def run(self, distribution: Optional[_SourceArg] = None) -> "RunResult":
        """Build and run; returns the unified :class:`RunResult`."""
        from repro.api.facade import run as run_facade

        return run_facade(self, distribution=distribution)

    def __repr__(self) -> str:
        scheme = self._scheme if self._partitioner is None else self._partitioner
        return (
            f"Topology(spouts={self._num_spouts}, scheme={scheme!r}, "
            f"workers={self._num_workers}, "
            f"aggregate={self._aggregation_period}, seed={self._seed})"
        )
