"""``repro.api``: the one public surface for assembling and running
experiments.

Three pieces, mirroring how the paper talks about PKG as a drop-in
operator:

* the **partitioner registry** (:func:`make_partitioner`,
  :func:`register`, :func:`available_schemes`) -- every scheme by name
  or compact spec string (``"pkg"``, ``"pkg:d=3"``, ``"kg"``, ...);
* the **fluent topology builder** (:class:`Topology`) -- arbitrary
  spout/worker/aggregator clusters, including stragglers and
  heterogeneous workers, without touching dataclasses;
* the **run facade** (:func:`run`) -- one entry point returning a
  unified :class:`RunResult` for both the DSPE discrete-event
  simulation and the frequency-only stream replay.

Quickstart::

    from repro.api import Topology, run

    # Frequency-only: imbalance of PKG vs hashing on a skewed stream.
    pkg = run("pkg", dataset="WP", num_workers=10, num_messages=100_000)
    kg = run("kg", dataset="WP", num_workers=10, num_messages=100_000)
    print(pkg.average_imbalance, "<<", kg.average_imbalance)

    # Full DSPE simulation: throughput/latency of a word-count cluster.
    topo = (Topology().source("WP").spouts(1)
            .partition_by("pkg:d=2").workers(9, cpu_delay=0.4e-3))
    print(run(topo).throughput)
"""

from __future__ import annotations

import importlib

from repro.api.registry import (
    SchemeInfo,
    available_schemes,
    make_partitioner,
    parse_spec,
    register,
    resolve_scheme_name,
    scheme_info,
)

#: attribute -> defining module, resolved lazily (PEP 562) so that the
#: partitioner modules can import ``repro.api.registry`` during their own
#: definition without dragging the dspe/simulation stack into the cycle.
_LAZY_EXPORTS = {
    "Topology": "repro.api.topology",
    "TopologyError": "repro.api.topology",
    "run": "repro.api.facade",
    "RunResult": "repro.api.facade",
}

__all__ = [
    "SchemeInfo",
    "register",
    "make_partitioner",
    "parse_spec",
    "available_schemes",
    "scheme_info",
    "resolve_scheme_name",
    "Topology",
    "TopologyError",
    "run",
    "RunResult",
]


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
