"""``repro.api``: the one public surface for assembling and running
experiments.

Three pieces, mirroring how the paper talks about PKG as a drop-in
operator:

* the **partitioner registry** (:func:`make_partitioner`,
  :func:`register`, :func:`available_schemes`) -- every scheme by name
  or compact spec string (``"pkg"``, ``"pkg:d=3"``, ``"kg"``, ...);
* the **fluent topology builder** (:class:`Topology`) -- arbitrary
  spout/worker/aggregator clusters, including stragglers and
  heterogeneous workers, without touching dataclasses;
* the **run facade** (:func:`run`) -- one entry point returning a
  unified :class:`RunResult` for both the DSPE discrete-event
  simulation and the frequency-only stream replay.

plus the **experiment report entry points** re-exported from
:mod:`repro.reports` (:func:`run_experiments`, :func:`render_markdown`,
:func:`diff_artifacts`, :func:`load_artifacts`) -- persisted JSON
artifacts, the generated EXPERIMENTS.md, and BENCH_*.json snapshots.

Quickstart::

    from repro.api import Topology, run

    # Frequency-only: imbalance of PKG vs hashing on a skewed stream.
    pkg = run("pkg", dataset="WP", num_workers=10, num_messages=100_000)
    kg = run("kg", dataset="WP", num_workers=10, num_messages=100_000)
    print(pkg.average_imbalance, "<<", kg.average_imbalance)

    # Full DSPE simulation: throughput/latency of a word-count cluster.
    topo = (Topology().source("WP").spouts(1)
            .partition_by("pkg:d=2").workers(9, cpu_delay=0.4e-3))
    print(run(topo).throughput)

Spec-string grammar
-------------------

Everywhere a scheme is named -- :func:`make_partitioner`, :func:`run`,
``Topology.partition_by``, experiment configs, the report CLI -- a
compact **spec string** is accepted::

    spec      ::= name [":" param ("," param)*]
    name      ::= canonical scheme name | alias     (case-insensitive)
    param     ::= key "=" value
    key       ::= constructor kwarg | per-scheme shorthand
    value     ::= int | float | bool ("true"/"yes"/"on" etc.) | str

Examples: ``"pkg"``, ``"pkg:d=3"`` (shorthand ``d`` ->
``num_choices``), ``"kg-rebalance:interval=5000"``,
``"ch-pkg:d=2,vnodes=128"``.  Resolution rules:

* names and aliases resolve through the registry
  (:func:`available_schemes` lists canonical names,
  :func:`scheme_info` shows aliases and accepted parameters);
* spec parameters map onto constructor keyword arguments, through the
  per-scheme shorthand table registered with :func:`register`;
* explicit keyword arguments passed to :func:`make_partitioner`
  override spec-string values;
* unknown names, malformed params, and kwargs the constructor does not
  accept all raise :class:`ValueError` listing the valid options.

Migrating from ``SCHEMES``
--------------------------

The pre-registry ``repro.dspe.topology.SCHEMES`` dict still works but
emits :class:`DeprecationWarning`.  Replace::

    SCHEMES["pkg"](num_workers)          # deprecated
    make_partitioner("pkg", num_workers)  # registry equivalent

and replace any private name->constructor tables with
:func:`register` decorators so new schemes appear in
:func:`available_schemes`, the benchmarks, and the report CLI for free.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List

from repro.api.registry import (
    SchemeInfo,
    available_schemes,
    make_partitioner,
    parse_spec,
    register,
    resolve_scheme_name,
    scheme_info,
)

#: attribute -> defining module, resolved lazily (PEP 562) so that the
#: partitioner modules can import ``repro.api.registry`` during their own
#: definition without dragging the dspe/simulation stack into the cycle.
_LAZY_EXPORTS: Dict[str, str] = {
    "Topology": "repro.api.topology",
    "TopologyError": "repro.api.topology",
    "run": "repro.api.facade",
    "RunResult": "repro.api.facade",
    # Experiment report pipeline (artifacts, EXPERIMENTS.md, BENCH_*.json).
    "run_experiments": "repro.reports",
    "render_markdown": "repro.reports",
    "diff_artifacts": "repro.reports",
    "load_artifacts": "repro.reports",
    "ExperimentArtifact": "repro.reports",
}

__all__ = [
    "SchemeInfo",
    "register",
    "make_partitioner",
    "parse_spec",
    "available_schemes",
    "scheme_info",
    "resolve_scheme_name",
    "Topology",
    "TopologyError",
    "run",
    "RunResult",
    "run_experiments",
    "render_markdown",
    "diff_artifacts",
    "load_artifacts",
    "ExperimentArtifact",
]


def __getattr__(name: str) -> Any:
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
