"""Discrete-event simulation clock (adapter over :mod:`repro.core`).

This module owns no event loop of its own: the heap-driven replay core
moved to :class:`repro.core.engine.EventLoop`, where it sits beside the
chunked stream engine so every execution path lives in one place.  The
:class:`Simulator` name is kept for the DSPE layer (executors, cluster,
tests) and remains a deterministic (time, sequence, callback) loop --
ties in time break by scheduling order, so runs are exactly
reproducible.
"""

from __future__ import annotations

from repro.core.engine import EventLoop


class Simulator(EventLoop):
    """The event loop clock shared by all executors of a cluster."""
