"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence,
callback) triples in a binary heap; ties in time break by scheduling
order, so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Simulator:
    """The event loop clock shared by all executors of a cluster."""

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Process events up to ``end_time``; returns events processed.

        Events scheduled exactly at ``end_time`` are processed.  The
        clock is left at ``end_time`` (or at the last event if the heap
        drains first).
        """
        processed = 0
        heap = self._heap
        while heap and heap[0][0] <= end_time:
            time, _seq, callback = heapq.heappop(heap)
            self.now = time
            callback()
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if self.now < end_time:
            self.now = end_time
        self._processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def total_events_processed(self) -> int:
        return self._processed
