"""Executors: spout, counter workers, and aggregator.

The mechanics mirror a Storm word-count topology with acking:

* the spout emits one tuple at a time (per-tuple emit cost) and keeps
  at most ``max_pending`` tuples un-acked -- when a hot worker's queue
  grows, acks slow down and the spout throttles, which is how load
  imbalance becomes a *throughput* loss;
* workers serve their FIFO queue at one tuple per ``cpu_delay``
  seconds, count keys, ack each tuple, and periodically flush partial
  counters to the aggregator (each flushed entry costs worker time --
  the aggregation overhead of Figure 5(b));
* the aggregator merges flushed partials into authoritative totals.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from repro.dspe.engine import Simulator
from repro.dspe.metrics import LatencyStats
from repro.partitioning.base import Partitioner


class Tuple_:
    """A tuple in flight: key, emit timestamp, and the emitting spout.

    ``origin`` lets workers ack the right spout in multi-source
    topologies; ``None`` falls back to the worker's wired spout.
    """

    __slots__ = ("key", "emitted_at", "origin")

    def __init__(self, key, emitted_at: float, origin=None):
        self.key = key
        self.emitted_at = emitted_at
        self.origin = origin


class SpoutExecutor:
    """Single source PEI with max-pending throttling."""

    def __init__(
        self,
        sim: Simulator,
        key_source: Callable[[], object],
        partitioner: Partitioner,
        workers: List["WorkerExecutor"],
        emit_cost: float,
        network_delay: float,
        max_pending: int,
    ):
        if emit_cost <= 0:
            raise ValueError(f"emit_cost must be positive, got {emit_cost}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.sim = sim
        self.key_source = key_source
        self.partitioner = partitioner
        self.workers = workers
        self.emit_cost = float(emit_cost)
        self.network_delay = float(network_delay)
        self.max_pending = int(max_pending)
        self.in_flight = 0
        self.emitted = 0
        self._busy = False

    def start(self) -> None:
        self._try_emit()

    def _try_emit(self) -> None:
        if self._busy or self.in_flight >= self.max_pending:
            return
        self._busy = True
        self.sim.schedule(self.emit_cost, self._finish_emit)

    def _finish_emit(self) -> None:
        self._busy = False
        key = self.key_source()
        tup = Tuple_(key, self.sim.now, origin=self)
        worker = self.workers[self.partitioner.route(key, self.sim.now)]
        self.in_flight += 1
        self.emitted += 1
        self.sim.schedule(self.network_delay, lambda: worker.enqueue(tup))
        self._try_emit()

    def on_ack(self) -> None:
        self.in_flight -= 1
        self._try_emit()


class WorkerExecutor:
    """A counter PEI: FIFO queue, per-key CPU delay, periodic flush."""

    def __init__(
        self,
        sim: Simulator,
        spout: Optional[SpoutExecutor],
        cpu_delay: float,
        network_delay: float,
        latency: LatencyStats,
        warmup: float,
        aggregator: Optional["AggregatorExecutor"] = None,
        flush_period: float = 0.0,
        flush_entry_cost: float = 0.0,
        flush_offset: float = 0.0,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        if cpu_delay <= 0:
            raise ValueError(f"cpu_delay must be positive, got {cpu_delay}")
        self.sim = sim
        self.spout = spout
        self.cpu_delay = float(cpu_delay)
        self.network_delay = float(network_delay)
        self.latency = latency
        self.warmup = float(warmup)
        self.aggregator = aggregator
        self.flush_period = float(flush_period)
        self.flush_entry_cost = float(flush_entry_cost)
        self.on_complete = on_complete

        self.queue: deque = deque()
        self.counts: Dict = {}
        self.processed = 0
        self.completed_after_warmup = 0
        self.flushed_entries = 0
        self._busy = False
        self._flush_requested = False
        if self.flush_period > 0:
            # Workers flush on their own staggered clocks, as executors
            # in a real DSPE would.
            self.sim.schedule(self.flush_period + flush_offset, self._flush_timer)

    # -- queueing ------------------------------------------------------

    def enqueue(self, tup: Tuple_) -> None:
        self.queue.append(tup)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self._flush_requested:
            self._begin_flush()
            return
        if not self.queue:
            self._busy = False
            return
        self._busy = True
        tup = self.queue.popleft()
        self.sim.schedule(self.cpu_delay, lambda: self._complete(tup))

    def _complete(self, tup: Tuple_) -> None:
        key = tup.key
        self.counts[key] = self.counts.get(key, 0) + 1
        self.processed += 1
        if self.sim.now >= self.warmup:
            self.completed_after_warmup += 1
            self.latency.record(self.sim.now - tup.emitted_at)
        if self.on_complete is not None:
            self.on_complete()
        target = tup.origin if tup.origin is not None else self.spout
        if target is not None:
            self.sim.schedule(self.network_delay, target.on_ack)
        self._start_next()

    # -- flushing ------------------------------------------------------

    def _flush_timer(self) -> None:
        self._flush_requested = True
        if not self._busy:
            self._begin_flush()
        self.sim.schedule(self.flush_period, self._flush_timer)

    def _begin_flush(self) -> None:
        self._flush_requested = False
        entries = len(self.counts)
        if entries == 0 or self.aggregator is None:
            self._busy = False
            if self.queue:
                self._start_next()
            return
        self._busy = True
        cost = entries * self.flush_entry_cost
        partials = dict(self.counts)
        self.counts.clear()
        self.flushed_entries += entries

        def ship() -> None:
            self.sim.schedule(
                self.network_delay, lambda: self.aggregator.receive(partials)
            )
            self._start_next()

        self.sim.schedule(cost, ship)

    def memory_counters(self) -> int:
        """Live partial counters held right now."""
        return len(self.counts)


class AggregatorExecutor:
    """Downstream aggregator PEI merging flushed partial counts."""

    def __init__(self, sim: Simulator, entry_cost: float = 0.0):
        self.sim = sim
        self.entry_cost = float(entry_cost)
        self.totals: Dict = {}
        self.received_entries = 0
        self.busy_until = 0.0

    def receive(self, partials: Dict) -> None:
        """Absorb one flushed batch (service time per entry)."""
        self.received_entries += len(partials)
        # The aggregator is modelled as a single server; we only track
        # its utilisation since it is never the bottleneck in Fig 5.
        self.busy_until = (
            max(self.busy_until, self.sim.now) + len(partials) * self.entry_cost
        )
        for key, count in partials.items():
            self.totals[key] = self.totals.get(key, 0) + count

    def top_k(self, k: int):
        return sorted(self.totals.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]

    @property
    def utilisation_debt(self) -> float:
        """How far behind real time the aggregator currently is."""
        return max(0.0, self.busy_until - self.sim.now)
