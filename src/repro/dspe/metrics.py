"""Measurement instruments for cluster runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


class LatencyStats:
    """Online latency statistics with reservoir percentiles.

    Keeps exact count/mean plus a bounded reservoir for percentile
    estimates so that million-tuple runs do not hoard memory.
    """

    def __init__(self, reservoir_size: int = 4096, seed: int = 0):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.count = 0
        self.mean = 0.0
        self.max = 0.0
        self._reservoir: List[float] = []
        self._reservoir_size = int(reservoir_size)
        self._rng = np.random.default_rng(seed)

    def record(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            j = int(self._rng.integers(0, self.count))
            if j < self._reservoir_size:
                self._reservoir[j] = value

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (q in [0, 100])."""
        if not self._reservoir:
            return 0.0
        return float(np.percentile(self._reservoir, q))

    def __repr__(self) -> str:
        return (
            f"LatencyStats(count={self.count}, mean={self.mean:.6f}, "
            f"p99={self.percentile(99):.6f})"
        )


@dataclass
class RunMetrics:
    """Outcome of one cluster run (the Figure 5 measurables)."""

    scheme: str
    cpu_delay: float
    duration: float
    warmup: float
    emitted: int
    completed: int
    #: completed tuples per second of measured (post-warmup) time
    throughput: float
    #: end-to-end tuple latency stats (emit -> counter completion)
    latency: LatencyStats
    #: time-averaged live partial counters across workers
    average_memory_counters: float
    peak_memory_counters: int
    #: messages flushed from counters to the aggregator
    aggregation_messages: int
    worker_loads: List[int] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        if not self.worker_loads:
            return 0.0
        loads = np.asarray(self.worker_loads, dtype=np.float64)
        return float(loads.max() - loads.mean())

    def summary(self) -> str:
        return (
            f"{self.scheme}: delay={self.cpu_delay * 1e3:.2f}ms "
            f"throughput={self.throughput:.0f} keys/s "
            f"latency(mean)={self.latency.mean * 1e3:.2f}ms "
            f"memory={self.average_memory_counters:.0f} counters"
        )
