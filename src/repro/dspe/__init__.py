"""A Storm-like distributed stream processing engine, simulated.

The paper's Q4 experiments run streaming top-k word count on a real
Storm cluster (one spout + 9 counter PEIs + optional aggregator on 10
VMs).  This package substitutes that testbed with a discrete-event
simulation faithful to the mechanisms that produce Figure 5's
phenomena:

* a **spout** emitting keys with a per-tuple emit cost, throttled by a
  max-pending window (Storm's ``topology.max.spout.pending`` acking
  behaviour);
* **worker** (counter) executors with a configurable per-key CPU delay,
  FIFO input queues, and periodic flushing of partial counters;
* an **aggregator** executor that absorbs flushed partials;
* network hop latency between executors;
* metrics: throughput (keys/s), end-to-end tuple latency, and live
  counter memory.

Load imbalance turns into longer queues at hot workers, which inflates
tuple round-trip time and throttles the spout -- exactly why KG loses
throughput and latency to PKG/SG in the paper.
"""

from repro.dspe.engine import Simulator
from repro.dspe.executors import (
    AggregatorExecutor,
    SpoutExecutor,
    WorkerExecutor,
)
from repro.dspe.metrics import LatencyStats, RunMetrics
from repro.dspe.topology import ClusterConfig, WordCountCluster, run_wordcount

__all__ = [
    "Simulator",
    "SpoutExecutor",
    "WorkerExecutor",
    "AggregatorExecutor",
    "LatencyStats",
    "RunMetrics",
    "ClusterConfig",
    "WordCountCluster",
    "run_wordcount",
]
