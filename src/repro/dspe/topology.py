"""The word-count cluster of the paper's Q4, assembled and run.

One spout, W counter workers, optionally an aggregator -- the topology
of Section V's deployment experiments.  ``run_wordcount`` is the
entry point used by the Figure 5 harnesses and benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.api.registry import make_partitioner, parse_spec
from repro.dspe.engine import Simulator
from repro.dspe.executors import AggregatorExecutor, SpoutExecutor, WorkerExecutor
from repro.dspe.metrics import LatencyStats, RunMetrics
from repro.hashing import HashFamily
from repro.partitioning import Partitioner
from repro.streams.distributions import KeyDistribution


#: cached deprecated-SCHEMES dict; one stable object so that legacy
#: mutation (``SCHEMES["mine"] = factory``) and iteration keep working
_SCHEMES_SHIM: Optional[dict] = None


def __getattr__(name: str):
    # Backward-compatible shim: the old module-level ``SCHEMES`` dict is
    # superseded by the repro.api partitioner registry.  It keeps the
    # original three keys (kg/sg/pkg) so legacy sweeps iterate the same
    # scheme set they always did.
    if name == "SCHEMES":
        global _SCHEMES_SHIM
        warnings.warn(
            "repro.dspe.topology.SCHEMES is deprecated; use "
            "repro.api.make_partitioner / repro.api.available_schemes",
            DeprecationWarning,
            stacklevel=2,
        )
        if _SCHEMES_SHIM is None:
            _SCHEMES_SHIM = {
                scheme: (
                    lambda w, seed=0, _s=scheme: make_partitioner(
                        _s, w, seed=seed
                    )
                )
                for scheme in ("kg", "sg", "pkg")
            }
        return _SCHEMES_SHIM
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ClusterConfig:
    """Tunable knobs of the simulated cluster.

    Defaults follow the paper's setup where known (1 spout, 9 counters,
    CPU delay swept 0.1-1 ms) and are otherwise calibrated so that the
    spout saturates around 1.5k keys/s at the lowest delay, as observed
    in Figure 5(a).  Times are in seconds.
    """

    num_workers: int = 9
    cpu_delay: float = 0.4e-3
    #: per-tuple cost of emitting at the spout; 0.07 ms puts the spout's
    #: ceiling (~14.3k keys/s) just above the point where the hottest
    #: KG worker saturates at cpu_delay = 0.4 ms, the saturation point
    #: the paper reports for KG
    emit_cost: float = 0.07e-3
    #: one-way network hop latency
    network_delay: float = 0.2e-3
    #: Storm's topology.max.spout.pending equivalent; large enough that
    #: the spout is throttled by worker backlogs, not by round trips
    max_pending: int = 64
    #: simulated duration and measurement warmup
    duration: float = 20.0
    warmup: float = 4.0
    #: aggregation period (0 = no aggregation stage, as in Fig 5(a))
    aggregation_period: float = 0.0
    #: worker-side cost per flushed counter entry (serialise + send one
    #: partial-count tuple).  Flushes drain as an uninterruptible burst,
    #: stalling the worker's queue and, through the pending window, the
    #: spout -- which is what makes very short aggregation periods eat
    #: into throughput, the trade-off of Figure 5(b).  100 us puts the
    #: PKG-vs-KG crossover near a 30 s aggregation period, where the
    #: paper reports it
    flush_entry_cost: float = 100e-6
    #: aggregator-side cost per received entry
    aggregator_entry_cost: float = 2e-6
    #: period of the memory sampler
    memory_sample_period: float = 0.5
    #: number of source PEIs; each spout gets its own partitioner
    #: instance (sharing the hash seed), so PKG runs with genuinely
    #: local per-source estimation, as in the paper's simulations
    num_spouts: int = 1
    #: failure injection: multiply this worker's CPU delay ...
    straggler_worker: int = -1
    #: ... by this factor (1.0 = no straggler)
    straggler_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.duration <= self.warmup:
            raise ValueError("duration must exceed warmup")
        if self.num_spouts < 1:
            raise ValueError("num_spouts must be >= 1")
        if self.straggler_factor <= 0:
            raise ValueError("straggler_factor must be positive")
        if self.straggler_worker >= self.num_workers:
            raise ValueError("straggler_worker out of range")


class WordCountCluster:
    """A runnable spout -> counters (-> aggregator) cluster."""

    def __init__(
        self,
        scheme: str,
        distribution: KeyDistribution,
        config: Optional[ClusterConfig] = None,
        partitioner: Optional[Partitioner] = None,
        partitioner_factory: Optional[Callable[[int], Partitioner]] = None,
        worker_cpu_delays: Optional[Sequence[float]] = None,
    ):
        """Assemble the cluster.

        ``scheme`` is any registry name or spec string (``"pkg:d=3"``);
        alternatively inject a built ``partitioner`` (single spout) or a
        ``partitioner_factory(spout_index)`` (any spout count).
        ``worker_cpu_delays`` makes the pool heterogeneous: one CPU
        delay per worker, overriding ``config.cpu_delay``; the straggler
        factor still applies on top.
        """
        self.config = config or ClusterConfig()
        # Display name: the base scheme, spec parameters stripped.
        self.scheme = parse_spec(scheme)[0]
        if partitioner is not None:
            if partitioner_factory is not None:
                raise ValueError(
                    "pass either partitioner or partitioner_factory, not both"
                )
            if partitioner.num_workers != self.config.num_workers:
                raise ValueError(
                    f"injected partitioner routes to {partitioner.num_workers} "
                    f"workers but the cluster has {self.config.num_workers}"
                )
            if self.config.num_spouts > 1:
                raise ValueError(
                    "explicit partitioner injection only supports one spout; "
                    "multi-spout clusters build one instance per spout"
                )
            self._partitioner_factory = lambda s: partitioner
        elif partitioner_factory is not None:
            self._partitioner_factory = partitioner_factory
        else:
            # Route the scheme spec through the registry; sources share
            # the hash seed so candidate sets agree across spouts while
            # load estimates stay private.
            spec, cfg = scheme, self.config
            self._partitioner_factory = lambda s: make_partitioner(
                spec, cfg.num_workers, seed=cfg.seed
            )
        self.partitioner = self._partitioner_factory(0)
        self.distribution = distribution
        if worker_cpu_delays is not None:
            worker_cpu_delays = [float(d) for d in worker_cpu_delays]
            if len(worker_cpu_delays) != self.config.num_workers:
                raise ValueError(
                    f"worker_cpu_delays has {len(worker_cpu_delays)} entries "
                    f"for {self.config.num_workers} workers"
                )
            if any(d <= 0 for d in worker_cpu_delays):
                raise ValueError("every worker CPU delay must be positive")
        self.worker_cpu_delays = worker_cpu_delays

        self.sim = Simulator()
        self.latency = LatencyStats(seed=self.config.seed)
        self._key_buffer = np.array([], dtype=np.int64)
        self._key_pos = 0
        self._rng = np.random.default_rng(self.config.seed)

        cfg = self.config
        self.aggregator: Optional[AggregatorExecutor] = None
        flush_period = 0.0
        if cfg.aggregation_period > 0:
            self.aggregator = AggregatorExecutor(
                self.sim, entry_cost=cfg.aggregator_entry_cost
            )
            flush_period = cfg.aggregation_period

        self.workers = [
            WorkerExecutor(
                self.sim,
                spout=None,  # wired below
                cpu_delay=(
                    self.worker_cpu_delays[i]
                    if self.worker_cpu_delays is not None
                    else cfg.cpu_delay
                )
                * (cfg.straggler_factor if i == cfg.straggler_worker else 1.0),
                network_delay=cfg.network_delay,
                latency=self.latency,
                warmup=cfg.warmup,
                aggregator=self.aggregator,
                flush_period=flush_period,
                flush_entry_cost=cfg.flush_entry_cost,
                flush_offset=(
                    flush_period * i / cfg.num_workers if flush_period else 0.0
                ),
            )
            for i in range(cfg.num_workers)
        ]
        # One spout per source PEI; each uses its own partitioner
        # instance (same hash seed -> shared candidate sets, private
        # load estimates: exactly PKG's deployment story).
        self.spouts = []
        for s in range(cfg.num_spouts):
            if s == 0:
                spout_partitioner = self.partitioner
            else:
                spout_partitioner = self._partitioner_factory(s)
            self.spouts.append(
                SpoutExecutor(
                    self.sim,
                    key_source=self._next_key,
                    partitioner=spout_partitioner,
                    workers=self.workers,
                    emit_cost=cfg.emit_cost * cfg.num_spouts,
                    network_delay=cfg.network_delay,
                    max_pending=max(1, cfg.max_pending // cfg.num_spouts),
                )
            )
        self.spout = self.spouts[0]
        # Tuples carry their origin spout, so workers ack the right one
        # (the `spout` field is only the single-spout fallback).
        for w in self.workers:
            w.spout = self.spouts[0]

        # time-weighted memory sampling
        self._memory_samples = 0
        self._memory_sum = 0.0
        self._memory_peak = 0

    def _next_key(self):
        if self._key_pos >= self._key_buffer.size:
            self._key_buffer = self.distribution.sample(16384, self._rng)
            self._key_pos = 0
        key = int(self._key_buffer[self._key_pos])
        self._key_pos += 1
        return key

    def _sample_memory(self) -> None:
        live = sum(w.memory_counters() for w in self.workers)
        if self.sim.now >= self.config.warmup:
            self._memory_samples += 1
            self._memory_sum += live
        if live > self._memory_peak:
            self._memory_peak = live
        self.sim.schedule(self.config.memory_sample_period, self._sample_memory)

    def run(self) -> RunMetrics:
        """Run the cluster for ``config.duration`` simulated seconds."""
        cfg = self.config
        self.sim.schedule(cfg.memory_sample_period, self._sample_memory)
        for spout in self.spouts:
            spout.start()
        self.sim.run_until(cfg.duration)

        completed = sum(w.completed_after_warmup for w in self.workers)
        measured_time = cfg.duration - cfg.warmup
        average_memory = (
            self._memory_sum / self._memory_samples if self._memory_samples else 0.0
        )
        return RunMetrics(
            scheme=self.scheme.upper(),
            cpu_delay=cfg.cpu_delay,
            duration=cfg.duration,
            warmup=cfg.warmup,
            emitted=sum(s.emitted for s in self.spouts),
            completed=completed,
            throughput=completed / measured_time,
            latency=self.latency,
            average_memory_counters=average_memory,
            peak_memory_counters=self._memory_peak,
            aggregation_messages=(
                self.aggregator.received_entries if self.aggregator else 0
            ),
            worker_loads=[w.processed for w in self.workers],
        )


def run_wordcount(
    scheme: str,
    distribution: KeyDistribution,
    config: Optional[ClusterConfig] = None,
    partitioner: Optional[Partitioner] = None,
    **cluster_kwargs,
) -> RunMetrics:
    """Build and run one word-count cluster; returns its metrics.

    ``scheme`` may be any registry spec string (``"pkg:d=3"``).  Extra
    keyword arguments (``partitioner_factory``, ``worker_cpu_delays``)
    are forwarded to :class:`WordCountCluster`.
    """
    cluster = WordCountCluster(
        scheme, distribution, config, partitioner, **cluster_kwargs
    )
    return cluster.run()
