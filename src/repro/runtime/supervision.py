"""Supervision primitives: liveness, condemnation, failure records.

The sharded runtime's source is also its supervisor: it is the only
process with a view of every worker's heartbeat lane, every ring, and
the routing state needed to recover.  This module holds the pieces of
that role that are independent of the engine's run loop:

* :class:`LivenessDetector` -- turns the single-writer beat lanes
  (:mod:`repro.runtime.worker`) into per-worker *silence* durations.
  A worker bumps its beat on every drain step, including idle ones, so
  silence -- not idleness -- is the death signal: a slow worker keeps
  beating and must not be condemned, a crashed or stalled one goes
  quiet.
* :class:`WorkerDeadError` -- the typed verdict a backend raises when
  a worker it was waiting on is gone (``reason`` says how it was
  established: ``"exit"`` for an observed death, ``"wedged"`` for a
  condemned silence, ``"finish-timeout"`` for the absolute drain cap).
* :class:`FailureEvent` -- one detected failure plus the recovery
  action taken, with the exact accounting (messages routed, delivered,
  checkpointed) needed to audit conservation afterwards.
* :data:`RECOVERY_POLICIES` -- ``fail`` (clean abort, partial but
  well-labeled results), ``reroute`` (mask the dead worker out of the
  partitioner and continue degraded), ``restart`` (respawn and replay
  the lost span deterministically).
* :func:`reap_process` -- the join -> terminate -> kill escalation
  every child teardown path uses, so no wedged worker can leak a
  process or its shared-memory mappings.

**Every wait here is bounded.**  Liveness deadlines, reap timeouts and
the engine's push deadlines together guarantee that no recovery path
can hang -- the property the REPRO006 lint rule enforces statically
over this package.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "RECOVERY_POLICIES",
    "FailureEvent",
    "LivenessDetector",
    "WorkerDeadError",
    "reap_process",
]

#: recognised recovery policies (RuntimeConfig.recovery).
RECOVERY_POLICIES: Tuple[str, ...] = ("fail", "reroute", "restart")

#: seconds each escalation step of :func:`reap_process` waits.
DEFAULT_REAP_TIMEOUT = 5.0


class WorkerDeadError(RuntimeError):
    """A worker the runtime was waiting on is dead or condemned.

    ``reason`` is ``"exit"`` (the process/loop observably died),
    ``"wedged"`` (heartbeats went silent past the liveness deadline and
    the worker was condemned), or ``"finish-timeout"`` (the absolute
    end-of-stream drain cap expired).  ``exitcode`` carries the child's
    exit status when one was observed.
    """

    def __init__(
        self,
        worker: int,
        reason: str,
        message: Optional[str] = None,
        exitcode: Optional[int] = None,
    ) -> None:
        super().__init__(
            message or f"worker {worker} is dead ({reason})"
        )
        self.worker = int(worker)
        self.reason = str(reason)
        self.exitcode = exitcode


class RunAborted(RuntimeError):
    """Internal control flow of the ``fail`` recovery policy.

    Raised inside the engine's supervised push path to unwind the
    routing loop; ``run_runtime`` catches it and returns a partial,
    ``status="failed"`` result instead of propagating -- a *clean*
    abort, never a hang and never a silent loss.
    """

    def __init__(self, worker: int, reason: str) -> None:
        super().__init__(f"run aborted: worker {worker} {reason}")
        self.worker = int(worker)
        self.reason = str(reason)


@dataclass(frozen=True)
class FailureEvent:
    """One detected worker failure and the recovery action applied."""

    #: the worker that failed.
    worker: int
    #: how death was established ("exit", "wedged", "finish-timeout").
    reason: str
    #: recovery action applied ("fail", "reroute", "restart").
    action: str
    #: messages the source had routed when the failure was detected.
    at_routed: int
    #: distinct stream messages delivered into the worker's ring so far.
    delivered: int
    #: the worker's last published checkpoint (its survivable count).
    checkpointed: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports/JSON artifacts."""
        return {
            "worker": self.worker,
            "reason": self.reason,
            "action": self.action,
            "at_routed": self.at_routed,
            "delivered": self.delivered,
            "checkpointed": self.checkpointed,
        }


class LivenessDetector:
    """Per-worker heartbeat silence over the shared beat lanes.

    The detector never writes the lanes (workers are their single
    writers); it snapshots the last observed beat per worker and the
    wall-clock moment it last *changed*.  ``silent_for`` is then the
    seconds since that moment -- 0.0 whenever a fresh beat is observed.
    All clock reads are supervision telemetry, never routing inputs
    (REPRO002 noqa below).
    """

    __slots__ = ("beats", "deadline", "_last", "_changed_at")

    def __init__(self, beats: np.ndarray, deadline: float) -> None:
        if deadline <= 0:
            raise ValueError(f"liveness deadline must be > 0, got {deadline}")
        self.beats = beats
        self.deadline = float(deadline)
        self._last = np.array(beats, dtype=np.int64, copy=True)
        self._changed_at = np.full(int(beats.size), -1.0)

    def silent_for(self, worker: int, now: Optional[float] = None) -> float:
        """Seconds since ``worker``'s beat lane last advanced."""
        if now is None:
            now = time.perf_counter()  # repro: noqa[REPRO002]
        beat = int(self.beats[worker])
        if beat != self._last[worker] or self._changed_at[worker] < 0:
            self._last[worker] = beat
            self._changed_at[worker] = now
            return 0.0
        return float(now - self._changed_at[worker])

    def expired(self, worker: int, now: Optional[float] = None) -> bool:
        """Whether ``worker`` has been silent past the deadline."""
        return self.silent_for(worker, now) >= self.deadline


def reap_process(proc: Any, timeout: float = DEFAULT_REAP_TIMEOUT) -> Optional[int]:
    """Join ``proc`` with bounded escalation: join -> terminate -> kill.

    Returns the exit code (None only if the child survived even SIGKILL
    through three timeout windows, which on a healthy kernel cannot
    happen).  Safe to call on already-dead or already-closed processes.
    """
    try:
        if proc.is_alive():
            proc.join(timeout=timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=timeout)
        if proc.is_alive():  # pragma: no cover - SIGTERM always suffices here
            proc.kill()
            proc.join(timeout=timeout)
        return proc.exitcode
    except ValueError:  # pragma: no cover - process object already closed
        return None
