"""What the source does when a worker's ring is full.

A bounded ring plus a slow consumer forces a choice, and the right one
depends on the deployment: a batch replay wants **block** (lossless,
throughput throttled to the slowest worker), a latency-critical path
with an upstream retry wants **drop** (lossy, load shed at the source,
every drop accounted), and a low-latency pinned-core deployment wants
**spin** (lossless, burns CPU instead of sleeping through the scheduler).

:func:`push_with_backpressure` drives one per-worker push to
completion under the chosen policy and returns exact drop accounting.
The ``drain`` hook is how the simulated-rings mode stays lossless in a
single process: with producer and consumer sharing a thread, "wait for
the consumer" must mean "run the consumer", so the engine passes each
worker's drain step as the callback and the policies call it instead of
sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "POLICIES",
    "PushOutcome",
    "RingStalledError",
    "push_with_backpressure",
]

from repro.runtime.ring import SpscRing

#: recognised backpressure policies.
POLICIES: Tuple[str, ...] = ("block", "spin", "drop")

#: seconds the block policy sleeps between full-ring retries.
_BLOCK_SLEEP = 50e-6
#: busy iterations the spin policy burns before degrading to a sleep.
_SPIN_ITERATIONS = 2_000
#: full-ring retries before declaring the consumer dead.  With the
#: block policy's sleep this bounds the wait to ~60 s of wall time
#: without ever reading a clock (REPRO002: retry counts, not deadlines).
_MAX_RETRIES = 1_200_000


class RingStalledError(RuntimeError):
    """A full ring made no progress across the whole retry budget.

    The likely cause is a dead worker process; blocking forever would
    hang the source, so the push gives up loudly instead.
    """


@dataclass
class PushOutcome:
    """Exact accounting of one backpressured push."""

    pushed: int
    dropped: int
    #: times the producer found the ring full and had to wait/shed.
    stalls: int


def push_with_backpressure(
    ring: SpscRing,
    indices: np.ndarray,
    stamps: np.ndarray,
    policy: str,
    drain: Optional[Callable[[], int]] = None,
) -> PushOutcome:
    """Push every message (or account for every drop) under ``policy``.

    ``block`` and ``spin`` guarantee ``dropped == 0``: the call returns
    only once the ring accepted all messages (or raises
    :class:`RingStalledError` after the retry budget).  ``drop`` pushes
    what fits immediately and sheds the rest.  ``drain``, when given,
    replaces waiting entirely (simulated-rings mode).
    """
    if policy not in POLICIES:
        raise ValueError(
            f"policy must be one of {POLICIES}, got {policy!r}"
        )
    total = int(indices.size)
    offset = 0
    stalls = 0
    retries = 0
    while offset < total:
        pushed = ring.try_push(indices[offset:], stamps[offset:])
        if pushed:
            offset += pushed
            retries = 0
            continue
        stalls += 1
        if policy == "drop":
            return PushOutcome(pushed=offset, dropped=total - offset, stalls=stalls)
        if drain is not None:
            if drain() > 0:
                continue
            # A drain that cannot progress on a full ring is a consumer
            # bug; retrying would loop forever in one thread.
            raise RingStalledError(
                "simulated-ring drain made no progress on a full ring"
            )
        retries += 1
        if retries > _MAX_RETRIES:
            raise RingStalledError(
                f"ring stayed full through {retries} retries "
                "(worker process dead?)"
            )
        if policy == "spin":
            for _ in range(_SPIN_ITERATIONS):
                if ring.free:
                    break
            else:
                time.sleep(_BLOCK_SLEEP)
        else:  # block
            time.sleep(_BLOCK_SLEEP)
    return PushOutcome(pushed=total, dropped=0, stalls=stalls)
