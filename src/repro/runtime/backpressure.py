"""What the source does when a worker's ring is full.

A bounded ring plus a slow consumer forces a choice, and the right one
depends on the deployment: a batch replay wants **block** (lossless,
throughput throttled to the slowest worker), a latency-critical path
with an upstream retry wants **drop** (lossy, load shed at the source,
every drop accounted), and a low-latency pinned-core deployment wants
**spin** (lossless, burns CPU instead of sleeping through the scheduler).

:func:`push_with_backpressure` drives one per-worker push to
completion under the chosen policy and returns exact drop accounting.
The ``drain`` hook is how the simulated-rings mode stays lossless in a
single process: with producer and consumer sharing a thread, "wait for
the consumer" must mean "run the consumer", so the engine passes each
worker's drain step as the callback and the policies call it instead of
sleeping.

**No wait here is unbounded.**  A crashed or wedged consumer must never
hang the source, so every lossless wait is clipped twice: by
``deadline`` -- seconds of *no ring progress* (progress resets it) --
and by a retry-count backstop when no deadline is given.  Both raise
:class:`RingStallError` carrying exact partial-progress accounting
(``pushed``/``stalls``), which is what lets the supervision layer
(:mod:`repro.runtime.supervision`) resume or reroute the remainder of
the push after recovery instead of guessing what made it into the ring.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "POLICIES",
    "PushOutcome",
    "RingStallError",
    "RingStalledError",
    "push_with_backpressure",
]

from repro.runtime.ring import SpscRing

#: recognised backpressure policies.
POLICIES: Tuple[str, ...] = ("block", "spin", "drop")

#: seconds the block policy sleeps between full-ring retries.
_BLOCK_SLEEP = 50e-6
#: busy iterations the spin policy burns before degrading to a sleep.
_SPIN_ITERATIONS = 2_000
#: full-ring retries before declaring the consumer dead when no
#: deadline is configured.  With the block policy's sleep this bounds
#: the wait to ~60 s of wall time without ever reading a clock.
_MAX_RETRIES = 1_200_000


class RingStallError(RuntimeError):
    """A full ring made no progress through the deadline/retry budget.

    The likely cause is a dead or wedged worker; blocking forever would
    hang the source, so the push gives up loudly instead.  ``pushed``
    and ``stalls`` carry the partial progress of the failed call: the
    leading ``pushed`` messages *are* in the ring (the consumer may or
    may not have processed them), everything after is still the
    caller's to deliver -- exactly what recovery needs to resume.
    """

    def __init__(
        self, message: str, *, pushed: int = 0, stalls: int = 0
    ) -> None:
        super().__init__(message)
        self.pushed = int(pushed)
        self.stalls = int(stalls)


#: backward-compatible name (pre-supervision releases).
RingStalledError = RingStallError


@dataclass
class PushOutcome:
    """Exact accounting of one backpressured push."""

    pushed: int
    dropped: int
    #: times the producer found the ring full and had to wait/shed.
    stalls: int


def push_with_backpressure(
    ring: SpscRing,
    indices: np.ndarray,
    stamps: np.ndarray,
    policy: str,
    drain: Optional[Callable[[], int]] = None,
    deadline: Optional[float] = None,
) -> PushOutcome:
    """Push every message (or account for every drop) under ``policy``.

    ``block`` and ``spin`` guarantee ``dropped == 0``: the call returns
    only once the ring accepted all messages, or raises
    :class:`RingStallError` once the ring has made no progress for
    ``deadline`` seconds (or through the retry backstop when
    ``deadline`` is None).  ``drop`` pushes what fits immediately and
    sheds the rest.  ``drain``, when given, replaces waiting entirely
    (simulated-rings mode).
    """
    if policy not in POLICIES:
        raise ValueError(
            f"policy must be one of {POLICIES}, got {policy!r}"
        )
    if deadline is not None and deadline < 0:
        raise ValueError(f"deadline must be >= 0, got {deadline}")
    total = int(indices.size)
    offset = 0
    stalls = 0
    retries = 0
    stall_started: Optional[float] = None
    while offset < total:
        pushed = ring.try_push(indices[offset:], stamps[offset:])
        if pushed:
            offset += pushed
            retries = 0
            stall_started = None
            continue
        stalls += 1
        if policy == "drop":
            return PushOutcome(pushed=offset, dropped=total - offset, stalls=stalls)
        if drain is not None:
            if drain() > 0:
                continue
            # A drain that cannot progress on a full ring means the
            # in-process consumer is dead or stalled; retrying would
            # loop forever in one thread, so fail over to supervision.
            raise RingStallError(
                "simulated-ring drain made no progress on a full ring",
                pushed=offset,
                stalls=stalls,
            )
        if deadline is not None:
            # The stall clock is runtime supervision telemetry, never a
            # routing input (REPRO002 noqa): it bounds how long a push
            # may wait on an unresponsive consumer, and is only read
            # while the ring is already stalled.
            now = time.perf_counter()  # repro: noqa[REPRO002]
            if stall_started is None:
                stall_started = now
            elif now - stall_started >= deadline:
                raise RingStallError(
                    f"ring made no progress for {deadline:g}s "
                    "(worker dead or wedged?)",
                    pushed=offset,
                    stalls=stalls,
                )
        retries += 1
        if deadline is None and retries > _MAX_RETRIES:
            raise RingStallError(
                f"ring stayed full through {retries} retries "
                "(worker process dead?)",
                pushed=offset,
                stalls=stalls,
            )
        if policy == "spin":
            for _ in range(_SPIN_ITERATIONS):
                if ring.free:
                    break
            else:
                time.sleep(_BLOCK_SLEEP)
        else:  # block
            time.sleep(_BLOCK_SLEEP)
    return PushOutcome(pushed=total, dropped=0, stalls=stalls)
