"""Command-line entry point: ``python -m repro.runtime``.

Runs one stream through the sharded runtime per scheme and prints a
table of per-worker counts, end-to-end throughput, the per-stage wall
breakdown (route / scatter / flush-stall / drain) and p99 sojourn.
``--verify`` additionally replays the same stream through the
single-process engine with a fresh partitioner and asserts the
per-worker counts match exactly (the determinism contract); the exit
code is non-zero on any mismatch.  ``--streaming`` generates the keys
chunk-wise through the dataset's ``ChunkSource`` instead of
materialising them (the verify replay then re-iterates the same source
-- byte-identical by construction).  ``--bench`` merges the measured
``<scheme>@e2e`` entries into ``BENCH_partitioners.json``.

Fault injection and recovery: ``--fault kill:w=1@n=5000`` (repeatable)
injects seeded faults, ``--recovery {fail,reroute,restart}`` picks the
policy, and ``--chaos`` draws a random seeded fault plan when no
explicit ``--fault`` is given.  Under faults, ``--verify`` checks the
conservation law ``sent == processed + dropped + lost`` for every run
and additionally demands byte-identical counts (and a fully recovered
``status=ok``) under ``--recovery restart`` with a lossless policy.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

import numpy as np

from repro.runtime.bench import DEFAULT_E2E_SCHEMES, e2e_entry
from repro.runtime.engine import (
    MODES,
    RuntimeConfig,
    run_runtime,
    runtime_available,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.supervision import RECOVERY_POLICIES


def main(argv: Optional[List[str]] = None) -> int:
    from repro.api import make_partitioner
    from repro.core.engine import replay_stream
    from repro.runtime.backpressure import POLICIES
    from repro.streams.datasets import get_dataset

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Sharded multi-process runtime over shared-memory rings.",
    )
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_E2E_SCHEMES),
        help="partitioner spec strings to run (default: %(default)s)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--messages", type=int, default=100_000)
    parser.add_argument(
        "--dataset",
        default="WP",
        help="Table I dataset symbol for the key stream (default: WP)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        default="block",
        help="backpressure policy when a ring is full (default: block)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=8192,
        help="slots per worker ring (default: %(default)s)",
    )
    parser.add_argument(
        "--service-cost",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="simulated per-message service cost in each worker",
    )
    parser.add_argument(
        "--mode",
        choices=MODES,
        default="auto",
        help="worker deployment; auto picks real processes when the "
        "environment supports them, else in-process simulated rings",
    )
    parser.add_argument(
        "--flush-size",
        type=int,
        default=8192,
        help="per-worker staging-buffer slots; stages flush to the ring "
        "when full or at end-of-stream (default: %(default)s)",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a fault, e.g. kill:w=1@n=5000, stall:w=0@t=1.5, "
        "slow:w=2@n=1000:factor=8, drop:w=3@n=500:count=200 "
        "(repeatable; n triggers on the worker's processed count)",
    )
    parser.add_argument(
        "--recovery",
        choices=RECOVERY_POLICIES,
        default="fail",
        help="what to do when a worker dies (default: %(default)s)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="draw a seeded random fault plan when no --fault is given",
    )
    parser.add_argument(
        "--push-deadline",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="no-progress seconds before a push escalates to supervision",
    )
    parser.add_argument(
        "--liveness-deadline",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="heartbeat-silence seconds before a worker is condemned",
    )
    parser.add_argument(
        "--restart-limit",
        type=int,
        default=3,
        help="restarts allowed per worker before a clean abort",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="generate keys chunk-wise (bounded memory) instead of "
        "materialising the stream up front",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="assert per-worker counts equal the single-process replay",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="merge <scheme>@e2e entries into BENCH_partitioners.json",
    )
    args = parser.parse_args(argv)

    if args.fault:
        try:
            plan: Optional[FaultPlan] = FaultPlan.parse(
                args.fault, seed=args.seed
            )
        except ValueError as exc:
            parser.error(str(exc))
        for fault in plan.specs:
            if fault.worker >= args.workers:
                parser.error(
                    f"fault {fault.describe()!r} targets worker "
                    f"{fault.worker} but --workers is {args.workers}"
                )
    elif args.chaos:
        plan = FaultPlan.random(
            seed=args.seed,
            num_workers=args.workers,
            num_messages=args.messages,
        )
    else:
        plan = None
    if plan is not None:
        print(f"faults: {plan.describe()}  recovery={args.recovery}")

    config = RuntimeConfig(
        capacity=args.capacity,
        policy=args.policy,
        service_cost=args.service_cost,
        mode=args.mode,
        flush_size=args.flush_size,
        recovery=args.recovery,
        faults=plan,
        push_deadline=args.push_deadline,
        liveness_deadline=args.liveness_deadline,
        restart_limit=args.restart_limit,
    )
    if args.mode == "auto" and not runtime_available():
        print(
            "note: process spawning or shared memory unavailable; "
            "running in-process simulated rings"
        )

    spec = get_dataset(args.dataset)
    keys = (
        spec.chunk_source(args.messages, seed=args.seed)
        if args.streaming
        else spec.stream(args.messages, seed=args.seed)
    )
    failures = 0
    results = []
    for scheme in args.schemes:
        partitioner = make_partitioner(scheme, args.workers, seed=args.seed)
        result = run_runtime(keys, partitioner, config)
        results.append((scheme, result))
        line = (
            f"{scheme:>16}  mode={result.mode:<9} "
            f"throughput={result.messages_per_second:>12,.0f} msg/s  "
            f"p99_sojourn={result.p99_sojourn() * 1e3:8.3f} ms  "
            f"stalls={result.stalls}"
        )
        if result.dropped:
            line += f"  dropped={result.dropped}"
        if result.status != "ok":
            line += f"  status={result.status}"
        print(line)
        print(f"{'':>16}  worker_loads={result.worker_loads.tolist()}")
        if result.failures:
            print(
                f"{'':>16}  failures={len(result.failures)} "
                f"restarts={result.restarts} "
                f"stall_timeouts={result.stall_timeouts} "
                f"lost={result.lost} "
                f"masked={list(result.masked_workers)}"
            )
        stages = result.stage_seconds
        print(
            f"{'':>16}  stages: route={stages['route'] * 1e3:.1f}ms "
            f"scatter={stages['scatter'] * 1e3:.1f}ms "
            f"flush_stall={stages['flush_stall'] * 1e3:.1f}ms "
            f"drain={stages['drain'] * 1e3:.1f}ms  "
            f"flushes={result.flushes}  "
            f"overhead={result.transport_overhead_ratio:.2f}x"
        )
        if args.verify:
            lossless = result.policy in ("block", "spin")
            if not result.conservation_ok:
                failures += 1
                print(
                    f"{'':>16}  verify: CONSERVATION VIOLATED "
                    f"(sent={result.sent} processed={result.processed} "
                    f"dropped={result.dropped} lost={result.lost})"
                )
            elif plan is not None and not (
                args.recovery == "restart" and lossless
            ):
                # Degraded/aborted runs cannot match the fault-free
                # replay; exact conservation is their contract.
                print(
                    f"{'':>16}  verify: conservation holds "
                    f"(sent={result.sent} = processed={result.processed} "
                    f"+ dropped={result.dropped} + lost={result.lost})"
                )
            else:
                fresh = make_partitioner(scheme, args.workers, seed=args.seed)
                replay = replay_stream(keys, fresh)
                expected = (
                    replay.final_loads
                    if lossless
                    else replay.final_loads - result.dropped_per_worker
                )
                recovered = plan is None or result.status == "ok"
                if np.array_equal(result.worker_loads, expected) and recovered:
                    print(
                        f"{'':>16}  verify: counts match replay_stream"
                        + (" (recovered)" if plan is not None else "")
                    )
                else:
                    failures += 1
                    print(
                        f"{'':>16}  verify: MISMATCH "
                        f"(replay {replay.final_loads.tolist()}, "
                        f"status={result.status})"
                    )

    if args.bench:
        from repro.reports.bench import merge_bench_results, write_bench_snapshot

        entries = [
            e2e_entry(scheme, result, streaming=args.streaming)
            for scheme, result in results
        ]
        merged = merge_bench_results("partitioners", entries)
        path = write_bench_snapshot("partitioners", merged)
        print(f"bench: wrote {len(entries)} @e2e entries to {path}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
