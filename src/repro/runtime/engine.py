"""The sharded runtime: source-routes chunks into per-worker rings.

Topology: one **source** (this process) routes fixed-size key chunks
through any registered partitioner -- the exact
``Partitioner.route_chunk`` chunking that :func:`repro.core.engine.
replay_stream` uses -- and scatters each routed chunk into W bounded
SPSC rings, one per worker.  W workers drain their rings concurrently,
apply the per-message service cost, and keep private accumulators that
merge once at shutdown (:mod:`repro.runtime.worker`).

**Transport path.**  Each routed chunk is grouped by destination with a
*stable counting-sort scatter* (:func:`repro.core.chunks.
counting_scatter`: one ``bincount``, cumulative offsets, one linear
scatter pass -- O(n + W), not a comparison sort), then appended to
per-worker **coalescing staging buffers**.  A worker's stage flushes to
its ring only when full (``flush_size`` ids) or at end-of-stream, with
one wall-clock stamp per flush written into a preallocated stamp lane
-- so ring pushes, clock reads and stamp allocations are amortised over
``flush_size`` messages instead of paid per (chunk, worker).  Because
the scatter is stable and each stage drains in append order, every
worker still sees its sub-stream in arrival order (FIFO end to end) at
*any* flush size.  The input stream itself may be a materialised array
or a bounded-memory :class:`~repro.core.chunks.ChunkSource`.  Per-stage
wall time (route / scatter / flush-stall / drain / recovery) is
measured and reported in ``RuntimeResult.stage_seconds``.

**Determinism contract.**  Every routing decision happens in the source,
on the same chunk boundaries, through the same partitioner state
evolution as the single-process replay.  Workers only *count* what
arrives.  Under a lossless policy (``block``/``spin``) the per-worker
counts are therefore byte-identical to ``replay_stream(...).final_loads``
for every registered scheme -- by construction, not by luck -- no matter
how the OS schedules the worker processes.  Ring timing can change
*when* a message is processed, never *where*.  (Consequently the
runtime wires no completion feedback back into partitioners: ``jbsq``
here is its deterministic replay path, least-loaded-of-d over counters.)

**Supervision & recovery.**  The source doubles as supervisor: workers
heartbeat into the second lane of the progress block on every drain
step, pushes carry a *no-progress* deadline
(:class:`~repro.runtime.backpressure.RingStallError`), and a tripped
deadline starts an assessment -- observed death is ``"exit"``, beat
silence past ``liveness_deadline`` is condemnation (``"wedged"``,
terminate->kill escalated).  What happens next is
``RuntimeConfig.recovery``:

* ``fail``    -- unwind cleanly; the result is partial and labeled
  ``status="failed"`` with exact loss accounting, never a hang.
* ``reroute`` -- mask the dead worker out of the partitioner
  (:meth:`~repro.partitioning.base.Partitioner.mask_worker`); its
  undelivered traffic and future decisions go to a deterministic
  deputy, its undrained ring contents are counted *lost*, and the run
  completes ``status="degraded"``.
* ``restart`` -- respawn the worker over the same (reset) ring and
  deterministically replay everything it had ever been delivered: the
  replay re-routes the stream prefix from a forked
  :class:`~repro.core.chunks.ChunkSource` through a pristine copy of
  the partitioner, so the respawned worker rebuilds the exact
  sub-stream the dead one lost and final per-worker counts are
  byte-identical to a fault-free run.  Faults (injected or genuine)
  during the replay recurse, bounded by ``restart_limit``.

The conservation law ``sent == processed + dropped + lost`` is asserted
on every path: ``lost`` is dead workers' delivered-but-uncheckpointed
pipeline plus fault-discarded messages, and aborted runs additionally
report the never-delivered remainder (``undelivered``).

Two interchangeable backends:

* **process** -- real worker processes over
  ``multiprocessing.shared_memory`` rings; requires working process
  spawning and /dev/shm (:func:`runtime_available` probes once).
* **simulated** -- the same rings and worker loops in-process; "wait
  for the consumer" becomes "run the consumer" via the backpressure
  ``drain`` hook, so the block policy cannot deadlock in one thread.
  This is the fallback for 1-core/locked-down containers, mirroring
  ``repro.core.parallel``'s serial fallback.  Supervision is mode-
  blind: the simulated backend condemns wedged loops and respawns
  killed ones exactly like the process backend does.
"""

from __future__ import annotations

import copy
import math
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.chunks import (
    DEFAULT_CHUNK_SIZE,
    StreamLike,
    counting_scatter,
    fork_source,
    iter_keyed_chunks,
    stream_length,
)
from repro.core.metrics import StreamingLoadSeries
from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.runtime.backpressure import (
    POLICIES,
    RingStallError,
    push_with_backpressure,
)
from repro.runtime.faults import FaultPlan, FaultSpec, consume_cause
from repro.runtime.ring import SpscRing, ring_nbytes
from repro.runtime.supervision import (
    DEFAULT_REAP_TIMEOUT,
    RECOVERY_POLICIES,
    FailureEvent,
    RunAborted,
    WorkerDeadError,
    reap_process,
)
from repro.runtime.worker import WorkerLoop, WorkerSpec, worker_main

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

__all__ = [
    "MODES",
    "RuntimeConfig",
    "RuntimeResult",
    "runtime_available",
    "run_runtime",
]

#: recognised deployment modes ("auto" resolves to one of the others).
MODES = ("auto", "process", "simulated")

#: seconds between supervisor polls while assessing a silent worker.
_ASSESS_POLL = 5e-3
#: seconds between report-queue polls while waiting on a worker report.
_FINISH_POLL = 50e-3


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of one runtime deployment (not of the routed decisions)."""

    #: slots per worker ring.
    capacity: int = 8192
    #: backpressure policy: "block", "spin" or "drop".
    policy: str = "block"
    #: seconds of simulated per-message service cost in each worker.
    service_cost: float = 0.0
    #: source-side routing chunk (MUST stay replay_stream's default for
    #: count identity; exposed for tests that stress wrap-around).
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: messages between worker checkpoint publications.
    checkpoint_interval: int = 4096
    #: "process", "simulated", or "auto" (process when available).
    mode: str = "auto"
    #: sojourn-sketch relative error.
    relative_error: float = DEFAULT_RELATIVE_ERROR
    #: largest batch a worker drains per step.
    max_batch: int = 4096
    #: seconds to wait for each worker report/join before giving up.
    join_timeout: float = 120.0
    #: per-worker staging-buffer slots; a worker's stage flushes to its
    #: ring when full or at end-of-stream.  Flush-size choice never
    #: changes routing or per-worker order (the scatter is stable and
    #: stages drain in append order); it only trades ring-push amortis-
    #: ation against stamp granularity.  Under "drop" a flush larger
    #: than ``capacity`` guarantees shedding.
    flush_size: int = 8192
    #: record each worker's popped message ids in its report (tests
    #: use this to assert end-to-end FIFO order; costs memory).
    capture_indices: bool = False
    #: what to do when a worker dies: "fail", "reroute" or "restart".
    recovery: str = "fail"
    #: seeded fault-injection schedule (None = fault-free).
    faults: Optional[FaultPlan] = None
    #: seconds a lossless push may see *no ring progress* before the
    #: stall is escalated to supervision (None = retry-count backstop).
    #: Escalation is an assessment, not a condemnation -- a live,
    #: beating worker just gets the push retried -- so this can be far
    #: tighter than the liveness deadline; it bounds detection latency.
    push_deadline: Optional[float] = 2.0
    #: seconds of heartbeat silence before a worker is condemned.
    liveness_deadline: float = 5.0
    #: worker-side bound: seconds of no ring progress before a real
    #: worker process exits instead of waiting forever on a dead
    #: producer (must exceed the source's longest routing/replay gap).
    drain_deadline: Optional[float] = 120.0
    #: restarts allowed per worker before escalating to a clean abort.
    restart_limit: int = 3

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.flush_size < 1:
            raise ValueError(
                f"flush_size must be >= 1, got {self.flush_size}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.service_cost < 0:
            raise ValueError(
                f"service_cost must be >= 0, got {self.service_cost}"
            )
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got "
                f"{self.recovery!r}"
            )
        if self.recovery == "restart" and self.policy == "drop":
            raise ValueError(
                "recovery='restart' requires a lossless policy: source-side "
                "drops are timing-dependent, so a replayed span could not "
                "be byte-identical"
            )
        if self.push_deadline is not None and self.push_deadline <= 0:
            raise ValueError(
                f"push_deadline must be > 0, got {self.push_deadline}"
            )
        if self.liveness_deadline <= 0:
            raise ValueError(
                f"liveness_deadline must be > 0, got {self.liveness_deadline}"
            )
        if self.drain_deadline is not None and self.drain_deadline <= 0:
            raise ValueError(
                f"drain_deadline must be > 0, got {self.drain_deadline}"
            )
        if self.restart_limit < 1:
            raise ValueError(
                f"restart_limit must be >= 1, got {self.restart_limit}"
            )


@dataclass
class RuntimeResult:
    """Outcome of one sharded run: replay metrics + runtime telemetry."""

    #: backend that actually ran ("process" or "simulated").
    mode: str
    policy: str
    num_workers: int
    num_messages: int
    #: per-worker counts as *routed* by the source (post-mask: after a
    #: reroute, traffic counts at the deputy that actually received it).
    routed_loads: np.ndarray
    #: per-worker counts as *processed* by the workers (a dead worker's
    #: entry is its last published checkpoint).
    worker_loads: np.ndarray
    #: per-worker messages shed at the source (all zero unless "drop").
    dropped_per_worker: np.ndarray
    #: times the source found a full ring and had to wait/shed.
    stalls: int
    checkpoint_positions: np.ndarray
    imbalance_series: np.ndarray
    #: merged end-to-end sojourn sketch (enqueue -> processed).
    latency: LatencyStore
    wall_seconds: float
    #: source-side wall breakdown: "route" (partitioner decisions +
    #: balance metrics), "scatter" (counting-sort grouping + staging
    #: appends), "flush_stall" (ring pushes, including every stall the
    #: backpressure policy absorbed), "drain" (end-of-stream wait for
    #: the workers to finish and report), "recovery" (assessment waits,
    #: respawns and span replays).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: staging-buffer flushes performed (ring pushes issued).
    flushes: int = 0
    worker_reports: List[Dict[str, Any]] = field(default_factory=list)
    #: "ok" (fault-free or fully recovered), "degraded" (completed with
    #: dead workers) or "failed" (cleanly aborted, partial results).
    status: str = "ok"
    #: one dict per detected failure (see FailureEvent.to_dict).
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: workers dead at the end of the run.
    failed_workers: Tuple[int, ...] = ()
    #: workers masked out by reroute recovery.
    masked_workers: Tuple[int, ...] = ()
    #: per-worker messages lost at that worker: a dead worker's
    #: delivered-but-uncheckpointed pipeline, a survivor's
    #: fault-discarded messages.
    lost_per_worker: Optional[np.ndarray] = None
    #: messages routed but never delivered to any ring (aborts only).
    undelivered: int = 0
    #: worker respawns performed by restart recovery.
    restarts: int = 0
    #: pushes that tripped their no-progress deadline.
    stall_timeouts: int = 0
    #: the injected fault plan, in --fault grammar (provenance).
    injected_faults: Tuple[str, ...] = ()

    @property
    def dropped(self) -> int:
        """Total messages shed by the drop policy."""
        return int(self.dropped_per_worker.sum())

    @property
    def processed(self) -> int:
        """Total messages the workers actually processed."""
        return int(self.worker_loads.sum())

    @property
    def sent(self) -> int:
        """Total messages routed by the source."""
        return int(self.routed_loads.sum())

    @property
    def lost(self) -> int:
        """Total messages lost to failures (0 on a clean lossless run)."""
        pipeline = (
            int(self.lost_per_worker.sum())
            if self.lost_per_worker is not None
            else 0
        )
        return pipeline + int(self.undelivered)

    @property
    def conservation_ok(self) -> bool:
        """Whether ``sent == processed + dropped + lost`` holds exactly."""
        return self.sent == self.processed + self.dropped + self.lost

    @property
    def messages_per_second(self) -> float:
        """End-to-end throughput (processed messages over wall time)."""
        return self.processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def transport_overhead_ratio(self) -> float:
        """Source wall time over pure routing time (>= 1.0; 1.0 = free).

        The tracked "transport tax": how much slower the sharded path is
        than the routing decisions alone.  0.0 when the route stage was
        too fast to measure.
        """
        route = self.stage_seconds.get("route", 0.0)
        return self.wall_seconds / route if route > 0 else 0.0

    def p99_sojourn(self) -> float:
        """p99 end-to-end sojourn in seconds (0.0 if nothing processed)."""
        return self.latency.quantile(0.99) if self.latency.count else 0.0


# ---------------------------------------------------------------------------
# Availability probe
# ---------------------------------------------------------------------------

#: Whether real worker processes + shared memory work here; None = unknown.
_RUNTIME_USABLE: Optional[bool] = None


def _probe_child(value: Any) -> None:
    """Child half of the probe: flip the shared flag to prove we ran."""
    value.value = 1


def runtime_available() -> bool:
    """Whether the real multi-process backend can run in this environment.

    Probes once per process: create a tiny ``shared_memory`` block *and*
    spawn one child process that demonstrably executes.  Sandboxes that
    block either make "auto" resolve to the simulated backend, exactly
    as ``repro.core.parallel.pool_usable`` gates the sweep executor.
    """
    global _RUNTIME_USABLE
    if _RUNTIME_USABLE is None:
        _RUNTIME_USABLE = _probe()
    return _RUNTIME_USABLE


def _probe() -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(create=True, size=64)
    except OSError:
        return False
    try:
        flag = multiprocessing.Value("i", 0)
        child = multiprocessing.Process(target=_probe_child, args=(flag,))
        child.start()
        child.join(timeout=30.0)
        if child.is_alive():  # pragma: no cover - hung probe child
            reap_process(child)
            return False
        return child.exitcode == 0 and flag.value == 1
    except OSError:
        return False
    finally:
        shm.close()
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - already unlinked
            pass


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _SimulatedBackend:
    """Rings + worker loops in one process; drains replace waiting.

    Exposes the same supervision surface as the process backend --
    heartbeat lanes, liveness, condemnation, respawn -- so recovery
    logic upstream is mode-blind.  ``drives_consumers`` tells the
    supervisor that consumers only progress when *it* drains them
    (there is no point polling heartbeats that cannot advance on their
    own).
    """

    mode = "simulated"
    drives_consumers = True

    def __init__(
        self,
        num_workers: int,
        config: RuntimeConfig,
        worker_faults: Dict[int, Tuple[FaultSpec, ...]],
    ) -> None:
        self.config = config
        self.num_workers = num_workers
        lanes = np.zeros(2 * num_workers, dtype=np.int64)
        self.counts = lanes[:num_workers]
        self.beats = lanes[num_workers:]
        self.rings = [
            SpscRing.create_local(config.capacity) for _ in range(num_workers)
        ]
        self.loops = [
            self._build_loop(w, worker_faults.get(w, ()))
            for w in range(num_workers)
        ]

    def _build_loop(
        self, worker: int, faults: Tuple[FaultSpec, ...]
    ) -> WorkerLoop:
        config = self.config
        return WorkerLoop(
            worker,
            self.rings[worker],
            self.counts,
            service_cost=config.service_cost,
            checkpoint_interval=config.checkpoint_interval,
            relative_error=config.relative_error,
            max_batch=config.max_batch,
            capture_indices=config.capture_indices,
            beats=self.beats,
            faults=tuple(faults),
        )

    def push(
        self,
        worker: int,
        indices: np.ndarray,
        stamps: np.ndarray,
        deadline: Optional[float] = None,
    ) -> Any:
        return push_with_backpressure(
            self.rings[worker],
            indices,
            stamps,
            self.config.policy,
            drain=self.loops[worker].step,
            deadline=deadline,
        )

    def worker_alive(self, worker: int) -> bool:
        return not self.loops[worker].dead

    def checkpointed(self, worker: int) -> int:
        return int(self.counts[worker])

    def stall_remaining(self, worker: int) -> float:
        # Supervision telemetry read (REPRO002 noqa): the supervisor
        # needs the stall horizon to pick sleep-it-out vs condemn.
        return self.loops[worker].stall_remaining(
            time.perf_counter()  # repro: noqa[REPRO002]
        )

    def condemn(self, worker: int) -> None:
        self.loops[worker].kill()

    def respawn(self, worker: int, faults: Tuple[FaultSpec, ...]) -> None:
        self.rings[worker].reset()
        self.counts[worker] = 0
        self.beats[worker] = 0
        self.loops[worker] = self._build_loop(worker, faults)

    def finish_one(
        self, worker: int, silence_deadline: float, overall_deadline: float
    ) -> Dict[str, Any]:
        loop = self.loops[worker]
        if loop.dead:
            raise WorkerDeadError(worker, "exit")
        try:
            loop.drain_until_done(deadline=silence_deadline)
        except RingStallError:
            # A drain that stopped progressing is a wedged loop (e.g. a
            # stall-forever fault): condemn it like the process backend
            # would a silent child.
            loop.kill()
            raise WorkerDeadError(worker, "wedged") from None
        if loop.dead:
            raise WorkerDeadError(worker, "exit")
        return loop.report()

    def finalize_clean(self, workers: Sequence[int]) -> None:
        pass

    def close(self) -> None:
        pass


class _ProcessBackend:
    """Real worker processes over shared-memory rings."""

    mode = "process"
    drives_consumers = False

    def __init__(
        self,
        num_workers: int,
        config: RuntimeConfig,
        worker_faults: Dict[int, Tuple[FaultSpec, ...]],
    ) -> None:
        from multiprocessing import shared_memory

        self.config = config
        self.num_workers = num_workers
        self._shms: List[Any] = []
        self.rings: List[SpscRing] = []
        self.processes: List[multiprocessing.Process] = []
        self._retired: List[multiprocessing.Process] = []
        self._specs: List[WorkerSpec] = []
        self._collected: Dict[int, Dict[str, Any]] = {}
        self.results: Any = None
        self.counts: Any = None
        self.beats: Any = None
        self._lanes: Any = None
        try:
            self._progress_shm = shared_memory.SharedMemory(
                create=True, size=2 * num_workers * 8
            )
            self._shms.append(self._progress_shm)
            lanes = np.ndarray(
                (2 * num_workers,),
                dtype=np.int64,
                buffer=self._progress_shm.buf,
            )
            lanes[:] = 0
            self._lanes = lanes
            self.counts = lanes[:num_workers]
            self.beats = lanes[num_workers:]
            ring_shms = []
            for _ in range(num_workers):
                shm = shared_memory.SharedMemory(
                    create=True, size=ring_nbytes(config.capacity)
                )
                self._shms.append(shm)
                ring_shms.append(shm)
                self.rings.append(
                    SpscRing.from_buffer(shm.buf, config.capacity, initialize=True)
                )
            self.results = multiprocessing.Queue()
            for w in range(num_workers):
                spec = WorkerSpec(
                    worker_id=w,
                    num_workers=num_workers,
                    ring_name=ring_shms[w].name,
                    progress_name=self._progress_shm.name,
                    capacity=config.capacity,
                    service_cost=config.service_cost,
                    checkpoint_interval=config.checkpoint_interval,
                    relative_error=config.relative_error,
                    max_batch=config.max_batch,
                    capture_indices=config.capture_indices,
                    faults=tuple(worker_faults.get(w, ())),
                    drain_deadline=config.drain_deadline,
                )
                self._specs.append(spec)
                self.processes.append(self._spawn(spec))
        except BaseException:
            self.close()
            raise

    def _spawn(self, spec: WorkerSpec) -> multiprocessing.Process:
        proc = multiprocessing.Process(
            target=worker_main, args=(spec, self.results), daemon=True
        )
        proc.start()
        return proc

    def push(
        self,
        worker: int,
        indices: np.ndarray,
        stamps: np.ndarray,
        deadline: Optional[float] = None,
    ) -> Any:
        return push_with_backpressure(
            self.rings[worker],
            indices,
            stamps,
            self.config.policy,
            deadline=deadline,
        )

    def worker_alive(self, worker: int) -> bool:
        return self.processes[worker].is_alive()

    def checkpointed(self, worker: int) -> int:
        return int(self.counts[worker])

    def stall_remaining(self, worker: int) -> float:
        # The source cannot see a real worker's fault machine; silence
        # on the beat lane is its only stall signal.
        return 0.0

    def condemn(self, worker: int) -> None:
        reap_process(self.processes[worker], DEFAULT_REAP_TIMEOUT)

    def respawn(self, worker: int, faults: Tuple[FaultSpec, ...]) -> None:
        old = self.processes[worker]
        reap_process(old, DEFAULT_REAP_TIMEOUT)
        self._retired.append(old)
        self.rings[worker].reset()
        self.counts[worker] = 0
        self.beats[worker] = 0
        spec = replace(self._specs[worker], faults=tuple(faults))
        self._specs[worker] = spec
        self.processes[worker] = self._spawn(spec)

    def finish_one(
        self, worker: int, silence_deadline: float, overall_deadline: float
    ) -> Dict[str, Any]:
        import queue as queue_module

        if worker in self._collected:
            return self._collected.pop(worker)
        # Liveness clocks below are supervision telemetry, never routing
        # inputs (REPRO002 noqa on each read).
        started = time.perf_counter()  # repro: noqa[REPRO002]
        silent_since = started
        last_beat = int(self.beats[worker])
        while True:
            try:
                report = self.results.get(timeout=_FINISH_POLL)
            except queue_module.Empty:
                pass
            else:
                wid = int(report["worker_id"])
                if wid == worker:
                    return report
                self._collected[wid] = report
                continue
            now = time.perf_counter()  # repro: noqa[REPRO002]
            if not self.processes[worker].is_alive():
                report = self._drain_report_race(worker)
                if report is not None:
                    return report
                raise WorkerDeadError(
                    worker,
                    "exit",
                    exitcode=self.processes[worker].exitcode,
                )
            beat = int(self.beats[worker])
            if beat != last_beat:
                last_beat = beat
                silent_since = now
            if now - silent_since >= silence_deadline:
                self.condemn(worker)
                raise WorkerDeadError(worker, "wedged")
            if now - started >= overall_deadline:
                self.condemn(worker)
                raise WorkerDeadError(worker, "finish-timeout")

    def _drain_report_race(self, worker: int) -> Optional[Dict[str, Any]]:
        """A dead worker's report may still sit in the queue's buffer."""
        import queue as queue_module

        try:
            while True:
                report = self.results.get(timeout=0.2)
                wid = int(report["worker_id"])
                if wid == worker:
                    return report
                self._collected[wid] = report
        except queue_module.Empty:
            return None

    def finalize_clean(self, workers: Sequence[int]) -> None:
        """Join workers that reported cleanly; a bad exit is a bug."""
        for w in workers:
            proc = self.processes[w]
            proc.join(timeout=self.config.join_timeout)
            if proc.is_alive():  # pragma: no cover - reported but hung
                reap_process(proc, DEFAULT_REAP_TIMEOUT)
                raise RuntimeError(
                    f"worker pid {proc.pid} failed to exit after reporting"
                )
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"worker pid {proc.pid} exited with code {proc.exitcode}"
                )

    def close(self) -> None:
        for proc in list(self.processes) + self._retired:
            reap_process(proc, DEFAULT_REAP_TIMEOUT)
        if self.results is not None:
            self.results.close()
            self.results.cancel_join_thread()
            self.results = None
        # Drop the numpy views before closing the mappings they borrow.
        self.rings.clear()
        self.counts = None
        self.beats = None
        self._lanes = None
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._shms.clear()


# ---------------------------------------------------------------------------
# Supervision: the source's recovery brain
# ---------------------------------------------------------------------------


class _Supervisor:
    """Delivery accounting + failure assessment + recovery execution.

    Owns every piece of state the conservation law needs: ``delivered``
    (distinct stream messages that first entered each worker's ring --
    restart replays deliberately do *not* increment it, which is what
    makes the replay span ``delivered[w]`` correct even across repeated
    failures), ``dropped`` (source-side sheds), the dead set, and the
    failure log.
    """

    def __init__(
        self,
        backend: Any,
        partitioner: "Partitioner",
        config: RuntimeConfig,
        keys: StreamLike,
        times: Optional[np.ndarray],
        series: StreamingLoadSeries,
        worker_faults: Dict[int, Tuple[FaultSpec, ...]],
    ) -> None:
        self.backend = backend
        self.partitioner = partitioner
        self.config = config
        self.keys = keys
        self.times = times
        self.series = series
        self.num_workers = partitioner.num_workers
        self.worker_faults = worker_faults
        self.delivered = np.zeros(self.num_workers, dtype=np.int64)
        self.dropped = np.zeros(self.num_workers, dtype=np.int64)
        self.stalls = 0
        self.stall_timeouts = 0
        self.restarts = 0
        self.restarts_per_worker = [0] * self.num_workers
        self.failures: List[FailureEvent] = []
        self.dead: Set[int] = set()
        self.aborted: Optional[RunAborted] = None
        self.recovery_seconds = 0.0
        #: per-worker silence episodes: wall moment the current failure
        #: assessment started (cleared on any delivery progress).
        self._episode: Dict[int, float] = {}
        self._episode_beat: Dict[int, int] = {}
        #: pristine partitioner copy for deterministic span replay.
        self._pristine: Optional["Partitioner"] = (
            copy.deepcopy(partitioner) if config.recovery == "restart" else None
        )

    # -- delivery -----------------------------------------------------------

    def deliver(
        self, worker: int, indices: np.ndarray, stamps: np.ndarray
    ) -> None:
        """Supervised first-time delivery to ``worker`` (or its deputy).

        Retries, reroutes or restarts through failures according to the
        recovery policy; on the ``fail`` policy raises
        :class:`RunAborted` after exact partial accounting.
        """
        offset = 0
        total = int(indices.size)
        target = int(worker)
        while offset < total:
            target = self.partitioner.remap_worker(target)
            try:
                outcome = self.backend.push(
                    target,
                    indices[offset:],
                    stamps[offset:total],
                    deadline=self.config.push_deadline,
                )
            except RingStallError as exc:
                self.stall_timeouts += 1
                self.stalls += exc.stalls
                self.delivered[target] += exc.pushed
                offset += exc.pushed
                if exc.pushed:
                    self._clear_episode(target)
                self._recover(target)
                continue
            self.stalls += outcome.stalls
            self.delivered[target] += outcome.pushed
            self.dropped[target] += outcome.dropped
            offset += outcome.pushed + outcome.dropped
            self._clear_episode(target)

    # -- failure assessment -------------------------------------------------

    def _recover(self, worker: int) -> None:
        """Assess a stalled push target and apply the recovery policy."""
        before = time.perf_counter()  # repro: noqa[REPRO002]
        try:
            verdict = self._assess(worker)
            if verdict == "retry":
                return
            self._record(worker, verdict, self.config.recovery)
            if self.config.recovery == "fail":
                self.dead.add(worker)
                raise RunAborted(worker, verdict)
            if self.config.recovery == "reroute":
                self._mask(worker)
                return
            self._restart(worker, verdict)
        finally:
            self.recovery_seconds += (
                time.perf_counter() - before  # repro: noqa[REPRO002]
            )

    def _assess(self, worker: int) -> str:
        """Why a push to ``worker`` cannot progress.

        Returns ``"retry"`` (worker showed signs of life; push again),
        or a death reason (``"exit"``/``"wedged"``) after condemning.
        Bounded: the silence episode persists across calls until the
        worker makes actual delivery progress, so repeated
        stall->retry->stall cycles still converge on the liveness
        deadline.  All clock reads are supervision telemetry (REPRO002
        noqa).
        """
        now = time.perf_counter()  # repro: noqa[REPRO002]
        started = self._episode.setdefault(worker, now)
        if worker not in self._episode_beat:
            self._episode_beat[worker] = int(self.backend.beats[worker])
        deadline = self.config.liveness_deadline
        while True:
            if not self.backend.worker_alive(worker):
                self._clear_episode(worker)
                return "exit"
            now = time.perf_counter()  # repro: noqa[REPRO002]
            if now - started >= deadline:
                self.backend.condemn(worker)
                self._clear_episode(worker)
                return "wedged"
            remaining = self.backend.stall_remaining(worker)
            if remaining > 0.0:
                if (
                    math.isinf(remaining)
                    or (now - started) + remaining >= deadline
                ):
                    # The stall provably outlives the liveness budget:
                    # condemn now instead of sleeping toward it.
                    self.backend.condemn(worker)
                    self._clear_episode(worker)
                    return "wedged"
                time.sleep(remaining + 1e-4)
                continue
            if self.backend.drives_consumers:
                # An alive, unstalled simulated loop progresses whenever
                # the push's drain hook runs it -- retry immediately.
                return "retry"
            beat = int(self.backend.beats[worker])
            if beat != self._episode_beat[worker]:
                self._episode_beat[worker] = beat
                return "retry"
            time.sleep(_ASSESS_POLL)

    def _clear_episode(self, worker: int) -> None:
        self._episode.pop(worker, None)
        self._episode_beat.pop(worker, None)

    def _record(self, worker: int, reason: str, action: str) -> None:
        self.failures.append(
            FailureEvent(
                worker=worker,
                reason=reason,
                action=action,
                at_routed=int(self.series.loads.sum()),
                delivered=int(self.delivered[worker]),
                checkpointed=int(self.backend.checkpointed(worker)),
            )
        )

    # -- recovery actions ---------------------------------------------------

    def _mask(self, worker: int) -> None:
        self.dead.add(worker)
        try:
            self.partitioner.mask_worker(worker)
        except RuntimeError as exc:
            # Nobody left to reroute to: the run cannot continue.
            raise RunAborted(worker, f"reroute impossible ({exc})") from exc

    def _restart(self, worker: int, reason: str) -> None:
        """Respawn ``worker`` and replay its lost span deterministically.

        Loops (not recurses) on failures during the replay itself: the
        span is re-derived from ``delivered`` each attempt, which never
        counts replayed messages, so every attempt rebuilds the same
        prefix.  Bounded by ``restart_limit`` per worker.
        """
        while True:
            self.restarts_per_worker[worker] += 1
            if self.restarts_per_worker[worker] > self.config.restart_limit:
                self.dead.add(worker)
                raise RunAborted(
                    worker,
                    f"exceeded restart limit ({self.config.restart_limit})",
                )
            self.restarts += 1
            self.worker_faults[worker] = consume_cause(
                self.worker_faults[worker], reason
            )
            self.backend.respawn(worker, self.worker_faults[worker])
            self.dead.discard(worker)
            self._clear_episode(worker)
            span = int(self.delivered[worker])
            done = 0
            replay_failed = False
            while done < span:
                sent, stalled = self._replay_slice(worker, span, done)
                done += sent
                if stalled:
                    verdict = self._assess(worker)
                    if verdict == "retry":
                        continue
                    self._record(worker, verdict, "restart")
                    reason = verdict
                    replay_failed = True
                    break
            if not replay_failed:
                return

    def _replay_slice(
        self, worker: int, span: int, skip: int
    ) -> Tuple[int, bool]:
        """Re-deliver ``worker``'s messages ``[skip, span)`` of its span.

        Re-routes the stream prefix from a forked source through a
        pristine partitioner copy -- the same chunk grid and state
        evolution as the original pass, hence the same assignments --
        and pushes only ``worker``'s share.  Returns ``(sent,
        stalled)``; a stalled push ends the slice with partial progress
        for the caller to assess.
        """
        assert self._pristine is not None
        fresh = copy.deepcopy(self._pristine)
        sent = 0
        seen = 0
        for start, _stop, key_chunk, time_chunk in iter_keyed_chunks(
            fork_source(self.keys), self.config.chunk_size, self.times
        ):
            assignments = fresh.route_chunk(key_chunk, time_chunk)
            mine = np.flatnonzero(assignments == worker)
            if mine.size:
                lo = max(skip - seen, 0)
                hi = min(span - seen, int(mine.size))
                seen += int(mine.size)
                if hi > lo:
                    ids = (start + mine[lo:hi]).astype(np.int64)
                    # Replay stamps are fresh by necessity; sojourns of
                    # replayed messages measure re-delivery, not the
                    # original enqueue (REPRO002 noqa).
                    stamps = np.full(
                        ids.size,
                        time.perf_counter(),  # repro: noqa[REPRO002]
                    )
                    try:
                        outcome = self.backend.push(
                            worker,
                            ids,
                            stamps,
                            deadline=self.config.push_deadline,
                        )
                    except RingStallError as exc:
                        self.stall_timeouts += 1
                        self.stalls += exc.stalls
                        return sent + exc.pushed, True
                    self.stalls += outcome.stalls
                    sent += outcome.pushed
            if seen >= span:
                break
        return sent, False

    # -- end of stream ------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """Drain every surviving worker to completion and gather reports.

        Failures discovered here (a fault firing during the final
        drain, a wedged drain) run through the same recovery policies;
        reroute at end-of-stream degenerates to masking alone, since a
        dead ring's contents are unrecoverable without replay.
        """
        for w in range(self.num_workers):
            if w not in self.dead:
                self.backend.rings[w].mark_done()
        reports: Dict[int, Dict[str, Any]] = {}
        for w in range(self.num_workers):
            while w not in self.dead:
                try:
                    reports[w] = self.backend.finish_one(
                        w,
                        silence_deadline=self.config.liveness_deadline,
                        overall_deadline=self.config.join_timeout,
                    )
                    break
                except WorkerDeadError as exc:
                    action = (
                        self.config.recovery if self.aborted is None else "fail"
                    )
                    self._record(w, exc.reason, action)
                    if action == "restart":
                        before = time.perf_counter()  # repro: noqa[REPRO002]
                        try:
                            self._restart(w, exc.reason)
                        except RunAborted as abort:
                            self.aborted = abort
                            self.dead.add(w)
                            break
                        finally:
                            self.recovery_seconds += (
                                time.perf_counter()  # repro: noqa[REPRO002]
                                - before
                            )
                        # The respawn reset the ring's done flag; the
                        # stream is over, so re-signal end-of-stream.
                        self.backend.rings[w].mark_done()
                        continue
                    self.dead.add(w)
                    if action == "reroute":
                        try:
                            self.partitioner.mask_worker(w)
                        except RuntimeError:
                            # Last survivor died at end-of-stream: there
                            # is nothing left to deliver, so masking is
                            # moot; the loss accounting still applies.
                            pass
                    elif self.aborted is None:
                        self.aborted = RunAborted(w, exc.reason)
                    break
        self.backend.finalize_clean(sorted(reports))
        return [reports[w] for w in sorted(reports)]


# ---------------------------------------------------------------------------
# The run loop
# ---------------------------------------------------------------------------


def _resolve_mode(mode: str) -> str:
    if mode == "auto":
        return "process" if runtime_available() else "simulated"
    if mode == "process" and not runtime_available():
        raise RuntimeError(
            "mode='process' requested but process spawning or shared "
            "memory is unavailable here; use mode='simulated' or 'auto'"
        )
    return mode


def run_runtime(
    keys: StreamLike,
    partitioner: "Partitioner",
    config: Optional[RuntimeConfig] = None,
    *,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
) -> RuntimeResult:
    """Run a stream through the sharded runtime; see the module docstring.

    Routing is chunk-for-chunk identical to
    :func:`repro.core.engine.replay_stream` on the same ``keys`` and a
    fresh ``partitioner``; the returned ``routed_loads``,
    ``checkpoint_positions`` and ``imbalance_series`` are the replay's,
    and under a lossless policy ``worker_loads`` equals ``routed_loads``.
    ``keys`` may be a materialised array or a bounded-memory
    :class:`~repro.core.chunks.ChunkSource` (one fresh pass on the
    source's own chunk grid; ``timestamps`` requires an array input).
    Injected faults and recovery behaviour are configured on
    ``config`` (``faults``, ``recovery`` and the deadline knobs).
    """
    config = config or RuntimeConfig()
    m = stream_length(keys)
    times: Optional[np.ndarray] = None
    if timestamps is not None:
        times = np.asarray(timestamps, dtype=np.float64)
        if times.size != m:
            raise ValueError(
                f"timestamps has {times.size} entries for {m} messages"
            )
    num_workers = partitioner.num_workers
    plan = config.faults or FaultPlan()
    for spec in plan.specs:
        if spec.worker >= num_workers:
            raise ValueError(
                f"fault {spec.describe()!r} targets worker {spec.worker} "
                f"but only {num_workers} workers exist"
            )
    worker_faults = {w: plan.for_worker(w) for w in range(num_workers)}
    mode = _resolve_mode(config.mode)
    backend: Any = (
        _ProcessBackend(num_workers, config, worker_faults)
        if mode == "process"
        else _SimulatedBackend(num_workers, config, worker_faults)
    )

    series = StreamingLoadSeries(m, num_workers, num_checkpoints)
    sup = _Supervisor(
        backend, partitioner, config, keys, times, series, worker_faults
    )
    flushes = 0
    flush = int(config.flush_size)
    # Coalescing staging: per-worker id rows that fill across chunks and
    # flush to the ring only when full or at end-of-stream.  One stamp
    # lane is shared by every flush -- the ring copies on push -- so the
    # per-flush cost is one clock read plus one vector fill, not a
    # fresh allocation.
    stage_ids = np.empty((num_workers, flush), dtype=np.int64)
    stage_fill = [0] * num_workers
    stamp_lane = np.empty(flush, dtype=np.float64)
    route_seconds = 0.0
    scatter_seconds = 0.0
    flush_seconds = 0.0

    def flush_worker(w: int) -> None:
        """Deliver worker ``w``'s staged ids (one shared stamp per flush)."""
        nonlocal flushes, flush_seconds
        n = stage_fill[w]
        if n == 0:
            return
        # Wall time + enqueue stamps are runtime telemetry, never
        # routing inputs (REPRO002 noqa on each read in this loop): the
        # e2e throughput, sojourn, and stage-breakdown numbers are the
        # point of this engine, and no load count or partitioner
        # decision depends on them.
        before = time.perf_counter()  # repro: noqa[REPRO002]
        recovery_before = sup.recovery_seconds
        stamp_lane[:n] = before
        sup.deliver(w, stage_ids[w, :n], stamp_lane[:n])
        after = time.perf_counter()  # repro: noqa[REPRO002]
        # Recovery time (assessments, respawns, replays) is accounted in
        # its own stage, not as flush stall.
        flush_seconds += (after - before) - (
            sup.recovery_seconds - recovery_before
        )
        flushes += 1
        stage_fill[w] = 0

    try:
        start_wall = time.perf_counter()  # repro: noqa[REPRO002]
        try:
            for start, _stop, key_chunk, time_chunk in iter_keyed_chunks(
                keys, config.chunk_size, times
            ):
                tick = time.perf_counter()  # repro: noqa[REPRO002]
                assignments = partitioner.route_chunk(key_chunk, time_chunk)
                # Reroute recovery: decisions for masked workers forward
                # to their deputies (the identity when nothing is masked).
                assignments = partitioner.remap_masked(assignments)
                series.update(assignments)
                routed_tick = time.perf_counter()  # repro: noqa[REPRO002]
                route_seconds += routed_tick - tick
                flushed_before = flush_seconds
                # Scatter: group the chunk's message ids by worker with the
                # stable counting sort, then append each worker's segment to
                # its staging row, flushing whenever a row fills.  Stability
                # plus append order keeps every worker's sub-stream in
                # arrival order (FIFO end to end) at any flush size.
                _counts, boundaries, grouped = counting_scatter(
                    assignments, num_workers, base=start
                )
                bounds = boundaries.tolist()
                for w in range(num_workers):
                    lo, hi = bounds[w], bounds[w + 1]
                    while lo < hi:
                        fill = stage_fill[w]
                        take = min(hi - lo, flush - fill)
                        stage_ids[w, fill : fill + take] = grouped[
                            lo : lo + take
                        ]
                        stage_fill[w] = fill + take
                        lo += take
                        if stage_fill[w] == flush:
                            flush_worker(w)
                scatter_tick = time.perf_counter()  # repro: noqa[REPRO002]
                scatter_seconds += (scatter_tick - routed_tick) - (
                    flush_seconds - flushed_before
                )
            for w in range(num_workers):
                flush_worker(w)
        except RunAborted as exc:
            # Clean abort (fail policy / exhausted recovery): stop
            # routing, collect whatever the survivors processed, and
            # label the result.  Undelivered remainders are accounted
            # below -- the abort is loud but never lossy in bookkeeping.
            sup.aborted = exc
        drain_tick = time.perf_counter()  # repro: noqa[REPRO002]
        recovery_before_drain = sup.recovery_seconds
        reports = sup.collect()
        end_wall = time.perf_counter()  # repro: noqa[REPRO002]
        drain_seconds = (end_wall - drain_tick) - (
            sup.recovery_seconds - recovery_before_drain
        )
        wall = end_wall - start_wall
        # Snapshot the checkpoint lane before close() drops the shared-
        # memory views: dead workers' loads are read from it below.
        checkpoints = np.asarray(backend.counts, dtype=np.int64).copy()
    finally:
        backend.close()

    positions, imbalances = series.finish()
    routed = series.loads.copy()
    worker_loads = np.zeros(num_workers, dtype=np.int64)
    fault_dropped = np.zeros(num_workers, dtype=np.int64)
    for report in reports:
        worker_loads[report["worker_id"]] = report["count"]
        fault_dropped[report["worker_id"]] = report.get("fault_dropped", 0)
    for w in sup.dead:
        # A dead worker's survivable count is its last checkpoint; the
        # sup.dead snapshot is taken after collect(), so restarted-and-
        # recovered workers are not in it.
        worker_loads[w] = checkpoints[w]
    lost = np.zeros(num_workers, dtype=np.int64)
    for w in range(num_workers):
        if w in sup.dead:
            lost[w] = sup.delivered[w] - worker_loads[w]
        else:
            lost[w] = fault_dropped[w]
    undelivered = int(routed.sum() - sup.delivered.sum() - sup.dropped.sum())
    latency = LatencyStore.merge_all(
        LatencyStore.from_dict(report["latency"]) for report in reports
    )
    clean = not sup.failures and not plan.specs
    if config.policy != "drop" and clean:
        # The lossless policies promise exactly this; a mismatch means a
        # ring protocol bug, which must never be reported as a result.
        if not np.array_equal(worker_loads + sup.dropped, routed):
            raise AssertionError(
                f"worker counts {worker_loads.tolist()} do not match routed "
                f"loads {routed.tolist()} under policy "
                f"{config.policy!r}"
            )
    total_lost = int(lost.sum()) + undelivered
    if int(routed.sum()) != int(
        worker_loads.sum() + sup.dropped.sum() + total_lost
    ):
        raise AssertionError(
            f"conservation violated: routed {int(routed.sum())} != "
            f"processed {int(worker_loads.sum())} + dropped "
            f"{int(sup.dropped.sum())} + lost {total_lost}"
        )
    if sup.aborted is not None:
        status = "failed"
    elif sup.dead:
        status = "degraded"
    else:
        status = "ok"
    return RuntimeResult(
        mode=mode,
        policy=config.policy,
        num_workers=num_workers,
        num_messages=m,
        routed_loads=routed,
        worker_loads=worker_loads,
        dropped_per_worker=sup.dropped,
        stalls=sup.stalls,
        checkpoint_positions=positions,
        imbalance_series=imbalances,
        latency=latency,
        wall_seconds=wall,
        stage_seconds={
            "route": route_seconds,
            "scatter": scatter_seconds,
            "flush_stall": flush_seconds,
            "drain": drain_seconds,
            "recovery": sup.recovery_seconds,
        },
        flushes=flushes,
        worker_reports=reports,
        status=status,
        failures=[event.to_dict() for event in sup.failures],
        failed_workers=tuple(sorted(sup.dead)),
        masked_workers=partitioner.masked_workers,
        lost_per_worker=lost,
        undelivered=undelivered,
        restarts=sup.restarts,
        stall_timeouts=sup.stall_timeouts,
        injected_faults=tuple(s.describe() for s in plan.specs),
    )
