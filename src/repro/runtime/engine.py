"""The sharded runtime: source-routes chunks into per-worker rings.

Topology: one **source** (this process) routes fixed-size key chunks
through any registered partitioner -- the exact
``Partitioner.route_chunk`` chunking that :func:`repro.core.engine.
replay_stream` uses -- and scatters each routed chunk into W bounded
SPSC rings, one per worker.  W workers drain their rings concurrently,
apply the per-message service cost, and keep private accumulators that
merge once at shutdown (:mod:`repro.runtime.worker`).

**Transport path.**  Each routed chunk is grouped by destination with a
*stable counting-sort scatter* (:func:`repro.core.chunks.
counting_scatter`: one ``bincount``, cumulative offsets, one linear
scatter pass -- O(n + W), not a comparison sort), then appended to
per-worker **coalescing staging buffers**.  A worker's stage flushes to
its ring only when full (``flush_size`` ids) or at end-of-stream, with
one wall-clock stamp per flush written into a preallocated stamp lane
-- so ring pushes, clock reads and stamp allocations are amortised over
``flush_size`` messages instead of paid per (chunk, worker).  Because
the scatter is stable and each stage drains in append order, every
worker still sees its sub-stream in arrival order (FIFO end to end) at
*any* flush size.  The input stream itself may be a materialised array
or a bounded-memory :class:`~repro.core.chunks.ChunkSource`.  Per-stage
wall time (route / scatter / flush-stall / drain) is measured and
reported in ``RuntimeResult.stage_seconds``.

**Determinism contract.**  Every routing decision happens in the source,
on the same chunk boundaries, through the same partitioner state
evolution as the single-process replay.  Workers only *count* what
arrives.  Under a lossless policy (``block``/``spin``) the per-worker
counts are therefore byte-identical to ``replay_stream(...).final_loads``
for every registered scheme -- by construction, not by luck -- no matter
how the OS schedules the worker processes.  Ring timing can change
*when* a message is processed, never *where*.  (Consequently the
runtime wires no completion feedback back into partitioners: ``jbsq``
here is its deterministic replay path, least-loaded-of-d over counters.)

Two interchangeable backends:

* **process** -- real worker processes over
  ``multiprocessing.shared_memory`` rings; requires working process
  spawning and /dev/shm (:func:`runtime_available` probes once).
* **simulated** -- the same rings and worker loops in-process; "wait
  for the consumer" becomes "run the consumer" via the backpressure
  ``drain`` hook, so the block policy cannot deadlock in one thread.
  This is the fallback for 1-core/locked-down containers, mirroring
  ``repro.core.parallel``'s serial fallback.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.chunks import (
    DEFAULT_CHUNK_SIZE,
    StreamLike,
    counting_scatter,
    iter_keyed_chunks,
    stream_length,
)
from repro.core.metrics import StreamingLoadSeries
from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.runtime.backpressure import POLICIES, push_with_backpressure
from repro.runtime.ring import SpscRing, ring_nbytes
from repro.runtime.worker import WorkerLoop, WorkerSpec, worker_main

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

__all__ = [
    "MODES",
    "RuntimeConfig",
    "RuntimeResult",
    "runtime_available",
    "run_runtime",
]

#: recognised deployment modes ("auto" resolves to one of the others).
MODES = ("auto", "process", "simulated")


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of one runtime deployment (not of the routed decisions)."""

    #: slots per worker ring.
    capacity: int = 8192
    #: backpressure policy: "block", "spin" or "drop".
    policy: str = "block"
    #: seconds of simulated per-message service cost in each worker.
    service_cost: float = 0.0
    #: source-side routing chunk (MUST stay replay_stream's default for
    #: count identity; exposed for tests that stress wrap-around).
    chunk_size: int = DEFAULT_CHUNK_SIZE
    #: messages between worker checkpoint publications.
    checkpoint_interval: int = 4096
    #: "process", "simulated", or "auto" (process when available).
    mode: str = "auto"
    #: sojourn-sketch relative error.
    relative_error: float = DEFAULT_RELATIVE_ERROR
    #: largest batch a worker drains per step.
    max_batch: int = 4096
    #: seconds to wait for each worker report/join before giving up.
    join_timeout: float = 120.0
    #: per-worker staging-buffer slots; a worker's stage flushes to its
    #: ring when full or at end-of-stream.  Flush-size choice never
    #: changes routing or per-worker order (the scatter is stable and
    #: stages drain in append order); it only trades ring-push amortis-
    #: ation against stamp granularity.  Under "drop" a flush larger
    #: than ``capacity`` guarantees shedding.
    flush_size: int = 8192
    #: record each worker's popped message ids in its report (tests
    #: use this to assert end-to-end FIFO order; costs memory).
    capture_indices: bool = False

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.flush_size < 1:
            raise ValueError(
                f"flush_size must be >= 1, got {self.flush_size}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.service_cost < 0:
            raise ValueError(
                f"service_cost must be >= 0, got {self.service_cost}"
            )


@dataclass
class RuntimeResult:
    """Outcome of one sharded run: replay metrics + runtime telemetry."""

    #: backend that actually ran ("process" or "simulated").
    mode: str
    policy: str
    num_workers: int
    num_messages: int
    #: per-worker counts as *routed* by the source (== replay_stream).
    routed_loads: np.ndarray
    #: per-worker counts as *processed* by the workers.
    worker_loads: np.ndarray
    #: per-worker messages shed at the source (all zero unless "drop").
    dropped_per_worker: np.ndarray
    #: times the source found a full ring and had to wait/shed.
    stalls: int
    checkpoint_positions: np.ndarray
    imbalance_series: np.ndarray
    #: merged end-to-end sojourn sketch (enqueue -> processed).
    latency: LatencyStore
    wall_seconds: float
    #: source-side wall breakdown: "route" (partitioner decisions +
    #: balance metrics), "scatter" (counting-sort grouping + staging
    #: appends), "flush_stall" (ring pushes, including every stall the
    #: backpressure policy absorbed), "drain" (end-of-stream wait for
    #: the workers to finish and report).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: staging-buffer flushes performed (ring pushes issued).
    flushes: int = 0
    worker_reports: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Total messages shed by the drop policy."""
        return int(self.dropped_per_worker.sum())

    @property
    def processed(self) -> int:
        """Total messages the workers actually processed."""
        return int(self.worker_loads.sum())

    @property
    def messages_per_second(self) -> float:
        """End-to-end throughput (processed messages over wall time)."""
        return self.processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def transport_overhead_ratio(self) -> float:
        """Source wall time over pure routing time (>= 1.0; 1.0 = free).

        The tracked "transport tax": how much slower the sharded path is
        than the routing decisions alone.  0.0 when the route stage was
        too fast to measure.
        """
        route = self.stage_seconds.get("route", 0.0)
        return self.wall_seconds / route if route > 0 else 0.0

    def p99_sojourn(self) -> float:
        """p99 end-to-end sojourn in seconds (0.0 if nothing processed)."""
        return self.latency.quantile(0.99) if self.latency.count else 0.0


# ---------------------------------------------------------------------------
# Availability probe
# ---------------------------------------------------------------------------

#: Whether real worker processes + shared memory work here; None = unknown.
_RUNTIME_USABLE: Optional[bool] = None


def _probe_child(value: Any) -> None:
    """Child half of the probe: flip the shared flag to prove we ran."""
    value.value = 1


def runtime_available() -> bool:
    """Whether the real multi-process backend can run in this environment.

    Probes once per process: create a tiny ``shared_memory`` block *and*
    spawn one child process that demonstrably executes.  Sandboxes that
    block either make "auto" resolve to the simulated backend, exactly
    as ``repro.core.parallel.pool_usable`` gates the sweep executor.
    """
    global _RUNTIME_USABLE
    if _RUNTIME_USABLE is None:
        _RUNTIME_USABLE = _probe()
    return _RUNTIME_USABLE


def _probe() -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(create=True, size=64)
    except OSError:
        return False
    try:
        flag = multiprocessing.Value("i", 0)
        child = multiprocessing.Process(target=_probe_child, args=(flag,))
        child.start()
        child.join(timeout=30.0)
        if child.is_alive():  # pragma: no cover - hung probe child
            child.terminate()
            child.join()
            return False
        return child.exitcode == 0 and flag.value == 1
    except OSError:
        return False
    finally:
        shm.close()
        try:
            shm.unlink()
        except OSError:  # pragma: no cover - already unlinked
            pass


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _SimulatedBackend:
    """Rings + worker loops in one process; drains replace waiting."""

    mode = "simulated"

    def __init__(self, num_workers: int, config: RuntimeConfig) -> None:
        self.config = config
        self.progress = np.zeros(num_workers, dtype=np.int64)
        self.rings = [
            SpscRing.create_local(config.capacity) for _ in range(num_workers)
        ]
        self.loops = [
            WorkerLoop(
                w,
                self.rings[w],
                self.progress,
                service_cost=config.service_cost,
                checkpoint_interval=config.checkpoint_interval,
                relative_error=config.relative_error,
                max_batch=config.max_batch,
                capture_indices=config.capture_indices,
            )
            for w in range(num_workers)
        ]

    def push(self, worker: int, indices: np.ndarray, stamps: np.ndarray) -> Any:
        return push_with_backpressure(
            self.rings[worker],
            indices,
            stamps,
            self.config.policy,
            drain=self.loops[worker].step,
        )

    def finish(self) -> List[Dict[str, Any]]:
        for ring in self.rings:
            ring.mark_done()
        for loop in self.loops:
            loop.drain_until_done()
        return [loop.report() for loop in self.loops]

    def close(self) -> None:
        pass


class _ProcessBackend:
    """Real worker processes over shared-memory rings."""

    mode = "process"

    def __init__(self, num_workers: int, config: RuntimeConfig) -> None:
        from multiprocessing import shared_memory

        self.config = config
        self.num_workers = num_workers
        self._shms: List[Any] = []
        self.rings: List[SpscRing] = []
        self.processes: List[multiprocessing.Process] = []
        try:
            self._progress_shm = shared_memory.SharedMemory(
                create=True, size=num_workers * 8
            )
            self._shms.append(self._progress_shm)
            progress = np.ndarray(
                (num_workers,), dtype=np.int64, buffer=self._progress_shm.buf
            )
            progress[:] = 0
            ring_shms = []
            for _ in range(num_workers):
                shm = shared_memory.SharedMemory(
                    create=True, size=ring_nbytes(config.capacity)
                )
                self._shms.append(shm)
                ring_shms.append(shm)
                self.rings.append(
                    SpscRing.from_buffer(shm.buf, config.capacity, initialize=True)
                )
            self.results: Any = multiprocessing.Queue()
            for w in range(num_workers):
                spec = WorkerSpec(
                    worker_id=w,
                    num_workers=num_workers,
                    ring_name=ring_shms[w].name,
                    progress_name=self._progress_shm.name,
                    capacity=config.capacity,
                    service_cost=config.service_cost,
                    checkpoint_interval=config.checkpoint_interval,
                    relative_error=config.relative_error,
                    max_batch=config.max_batch,
                    capture_indices=config.capture_indices,
                )
                proc = multiprocessing.Process(
                    target=worker_main, args=(spec, self.results), daemon=True
                )
                proc.start()
                self.processes.append(proc)
        except BaseException:
            self.close()
            raise

    def push(self, worker: int, indices: np.ndarray, stamps: np.ndarray) -> Any:
        return push_with_backpressure(
            self.rings[worker], indices, stamps, self.config.policy
        )

    def finish(self) -> List[Dict[str, Any]]:
        import queue as queue_module

        for ring in self.rings:
            ring.mark_done()
        reports: List[Dict[str, Any]] = []
        for _ in range(self.num_workers):
            try:
                reports.append(self.results.get(timeout=self.config.join_timeout))
            except queue_module.Empty:
                dead = [p.pid for p in self.processes if not p.is_alive()]
                raise RuntimeError(
                    f"collected {len(reports)}/{self.num_workers} worker "
                    f"reports before timing out (dead pids: {dead})"
                ) from None
        for proc in self.processes:
            proc.join(timeout=self.config.join_timeout)
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"worker pid {proc.pid} exited with code {proc.exitcode}"
                )
        reports.sort(key=lambda r: r["worker_id"])
        return reports

    def close(self) -> None:
        for proc in self.processes:
            if proc.is_alive():  # pragma: no cover - only on error paths
                proc.terminate()
                proc.join(timeout=5.0)
        # Drop the numpy views before closing the mappings they borrow.
        self.rings.clear()
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._shms.clear()


# ---------------------------------------------------------------------------
# The run loop
# ---------------------------------------------------------------------------


def _resolve_mode(mode: str) -> str:
    if mode == "auto":
        return "process" if runtime_available() else "simulated"
    if mode == "process" and not runtime_available():
        raise RuntimeError(
            "mode='process' requested but process spawning or shared "
            "memory is unavailable here; use mode='simulated' or 'auto'"
        )
    return mode


def run_runtime(
    keys: StreamLike,
    partitioner: "Partitioner",
    config: Optional[RuntimeConfig] = None,
    *,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
) -> RuntimeResult:
    """Run a stream through the sharded runtime; see the module docstring.

    Routing is chunk-for-chunk identical to
    :func:`repro.core.engine.replay_stream` on the same ``keys`` and a
    fresh ``partitioner``; the returned ``routed_loads``,
    ``checkpoint_positions`` and ``imbalance_series`` are the replay's,
    and under a lossless policy ``worker_loads`` equals ``routed_loads``.
    ``keys`` may be a materialised array or a bounded-memory
    :class:`~repro.core.chunks.ChunkSource` (one fresh pass on the
    source's own chunk grid; ``timestamps`` requires an array input).
    """
    config = config or RuntimeConfig()
    m = stream_length(keys)
    times: Optional[np.ndarray] = None
    if timestamps is not None:
        times = np.asarray(timestamps, dtype=np.float64)
        if times.size != m:
            raise ValueError(
                f"timestamps has {times.size} entries for {m} messages"
            )
    num_workers = partitioner.num_workers
    mode = _resolve_mode(config.mode)
    backend: Any = (
        _ProcessBackend(num_workers, config)
        if mode == "process"
        else _SimulatedBackend(num_workers, config)
    )

    series = StreamingLoadSeries(m, num_workers, num_checkpoints)
    dropped = np.zeros(num_workers, dtype=np.int64)
    stalls = 0
    flushes = 0
    flush = int(config.flush_size)
    # Coalescing staging: per-worker id rows that fill across chunks and
    # flush to the ring only when full or at end-of-stream.  One stamp
    # lane is shared by every flush -- the ring copies on push -- so the
    # per-flush cost is one clock read plus one vector fill, not a
    # fresh allocation.
    stage_ids = np.empty((num_workers, flush), dtype=np.int64)
    stage_fill = [0] * num_workers
    stamp_lane = np.empty(flush, dtype=np.float64)
    route_seconds = 0.0
    scatter_seconds = 0.0
    flush_seconds = 0.0

    def flush_worker(w: int) -> None:
        """Push worker ``w``'s staged ids (one shared stamp per flush)."""
        nonlocal stalls, flushes, flush_seconds
        n = stage_fill[w]
        if n == 0:
            return
        # Wall time + enqueue stamps are runtime telemetry, never
        # routing inputs (REPRO002 noqa on each read in this loop): the
        # e2e throughput, sojourn, and stage-breakdown numbers are the
        # point of this engine, and no load count or partitioner
        # decision depends on them.
        before = time.perf_counter()  # repro: noqa[REPRO002]
        stamp_lane[:n] = before
        outcome = backend.push(w, stage_ids[w, :n], stamp_lane[:n])
        flush_seconds += time.perf_counter() - before  # repro: noqa[REPRO002]
        dropped[w] += outcome.dropped
        stalls += outcome.stalls
        flushes += 1
        stage_fill[w] = 0

    try:
        start_wall = time.perf_counter()  # repro: noqa[REPRO002]
        for start, _stop, key_chunk, time_chunk in iter_keyed_chunks(
            keys, config.chunk_size, times
        ):
            tick = time.perf_counter()  # repro: noqa[REPRO002]
            chunk = partitioner.route_chunk(key_chunk, time_chunk)
            series.update(chunk)
            routed_tick = time.perf_counter()  # repro: noqa[REPRO002]
            route_seconds += routed_tick - tick
            flushed_before = flush_seconds
            # Scatter: group the chunk's message ids by worker with the
            # stable counting sort, then append each worker's segment to
            # its staging row, flushing whenever a row fills.  Stability
            # plus append order keeps every worker's sub-stream in
            # arrival order (FIFO end to end) at any flush size.
            _counts, boundaries, grouped = counting_scatter(
                chunk, num_workers, base=start
            )
            bounds = boundaries.tolist()
            for w in range(num_workers):
                lo, hi = bounds[w], bounds[w + 1]
                while lo < hi:
                    fill = stage_fill[w]
                    take = min(hi - lo, flush - fill)
                    stage_ids[w, fill : fill + take] = grouped[lo : lo + take]
                    stage_fill[w] = fill + take
                    lo += take
                    if stage_fill[w] == flush:
                        flush_worker(w)
            scatter_tick = time.perf_counter()  # repro: noqa[REPRO002]
            scatter_seconds += (scatter_tick - routed_tick) - (
                flush_seconds - flushed_before
            )
        for w in range(num_workers):
            flush_worker(w)
        drain_tick = time.perf_counter()  # repro: noqa[REPRO002]
        reports = backend.finish()
        end_wall = time.perf_counter()  # repro: noqa[REPRO002]
        drain_seconds = end_wall - drain_tick
        wall = end_wall - start_wall
    finally:
        backend.close()

    positions, imbalances = series.finish()
    worker_loads = np.zeros(num_workers, dtype=np.int64)
    for report in reports:
        worker_loads[report["worker_id"]] = report["count"]
    latency = LatencyStore.merge_all(
        LatencyStore.from_dict(report["latency"]) for report in reports
    )
    if config.policy != "drop":
        # The lossless policies promise exactly this; a mismatch means a
        # ring protocol bug, which must never be reported as a result.
        if not np.array_equal(worker_loads + dropped, series.loads):
            raise AssertionError(
                f"worker counts {worker_loads.tolist()} do not match routed "
                f"loads {series.loads.tolist()} under policy "
                f"{config.policy!r}"
            )
    return RuntimeResult(
        mode=mode,
        policy=config.policy,
        num_workers=num_workers,
        num_messages=m,
        routed_loads=series.loads.copy(),
        worker_loads=worker_loads,
        dropped_per_worker=dropped,
        stalls=stalls,
        checkpoint_positions=positions,
        imbalance_series=imbalances,
        latency=latency,
        wall_seconds=wall,
        stage_seconds={
            "route": route_seconds,
            "scatter": scatter_seconds,
            "flush_stall": flush_seconds,
            "drain": drain_seconds,
        },
        flushes=flushes,
        worker_reports=reports,
    )
