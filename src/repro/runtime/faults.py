"""Seeded fault injection for the sharded runtime.

A fault-tolerant runtime is only as trustworthy as the failures it has
actually been driven through, so faults here are *first-class, seeded
inputs* rather than ad-hoc monkeypatches: a :class:`FaultPlan` is plain
picklable data that travels inside :class:`~repro.runtime.worker.
WorkerSpec` to real worker processes, fires at exact message counts (or
wall-clock offsets), and composes per worker.  The same plan replayed
against the same stream produces the same failure — which is what lets
``python -m repro.runtime --verify --fault kill:w=1@n=5000 --recovery
restart`` assert byte-identical per-worker counts against a fault-free
run.

Grammar (the CLI's ``--fault`` values, repeatable)::

    <kind>:w=<worker>@n=<messages>[:<param>=<value>...]
    <kind>:w=<worker>@t=<seconds>[:<param>=<value>...]

with four kinds:

* ``kill``  -- the worker dies abruptly: in process mode it ``_exit``\\ s
  without reporting, closing, or checkpointing (a crash, not a
  shutdown); in simulated mode it permanently stops consuming.
* ``stall`` -- the worker stops draining *and heartbeating* for
  ``duration`` seconds (default: forever).  A stall longer than the
  supervisor's liveness deadline is indistinguishable from death and
  gets escalated exactly like one.
* ``slow``  -- per-message service cost is multiplied by ``factor``
  from the trigger on (a degraded-but-alive worker: it keeps
  heartbeating, so supervision must *not* kill it).
* ``drop``  -- the worker silently discards the next ``count``
  messages: consumed from the ring but never counted or measured.
  The discards surface as *lost* messages in the engine's conservation
  accounting (``processed + dropped + lost == sent``).

Triggers: ``@n=N`` fires when the worker's processed count reaches
``N`` (exact: the drain loop clips its batches so the boundary is never
overshot); ``@t=T`` fires ``T`` seconds after the worker starts
(inherently wall-clock -- fault injection simulates real-world timing,
so the reads are signed off for REPRO002).

:meth:`FaultPlan.random` is the seeded chaos generator: a
``default_rng(seed)``-driven schedule over the same grammar, used by
the ``--chaos`` verification mode and the hypothesis chaos-matrix
tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultState",
    "consume_cause",
    "parse_fault",
    "validate_fault_spec",
]

#: recognised fault kinds.
FAULT_KINDS: Tuple[str, ...] = ("kill", "stall", "slow", "drop")

#: optional per-kind parameters and their defaults.
_PARAM_DEFAULTS: Dict[str, Dict[str, float]] = {
    "kill": {},
    "stall": {"duration": math.inf},
    "slow": {"factor": 4.0},
    "drop": {"count": 1_000},
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one worker (plain picklable data)."""

    #: "kill", "stall", "slow" or "drop".
    kind: str
    #: target worker id.
    worker: int
    #: fire when the worker's processed count reaches this (n-trigger).
    at_messages: Optional[int] = None
    #: fire this many seconds after worker start (t-trigger).
    at_seconds: Optional[float] = None
    #: stall: seconds of unresponsiveness (inf = until killed).
    duration: float = math.inf
    #: slow: service-cost multiplier from the trigger on.
    factor: float = 4.0
    #: drop: messages silently discarded after the trigger.
    count: int = 1_000

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.worker < 0:
            raise ValueError(f"fault worker must be >= 0, got {self.worker}")
        if (self.at_messages is None) == (self.at_seconds is None):
            raise ValueError(
                "exactly one trigger is required: @n=<messages> or "
                "@t=<seconds>"
            )
        if self.at_messages is not None and self.at_messages < 0:
            raise ValueError(
                f"@n trigger must be >= 0, got {self.at_messages}"
            )
        if self.at_seconds is not None and self.at_seconds < 0:
            raise ValueError(f"@t trigger must be >= 0, got {self.at_seconds}")
        if self.duration <= 0:
            raise ValueError(f"stall duration must be > 0, got {self.duration}")
        if self.factor <= 0:
            raise ValueError(f"slow factor must be > 0, got {self.factor}")
        if self.count < 1:
            raise ValueError(f"drop count must be >= 1, got {self.count}")

    @property
    def lethal(self) -> bool:
        """Whether firing removes the worker (kill, or stall-forever)."""
        return self.kind == "kill" or (
            self.kind == "stall" and math.isinf(self.duration)
        )

    def describe(self) -> str:
        """The spec back in ``--fault`` grammar form."""
        trigger = (
            f"@n={self.at_messages}"
            if self.at_messages is not None
            else f"@t={self.at_seconds:g}"
        )
        extras = ""
        if self.kind == "stall" and not math.isinf(self.duration):
            extras = f":duration={self.duration:g}"
        elif self.kind == "slow":
            extras = f":factor={self.factor:g}"
        elif self.kind == "drop":
            extras = f":count={self.count}"
        return f"{self.kind}:w={self.worker}{trigger}{extras}"


def _parse_value(param: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"fault parameter {param}={raw!r} is not a number"
        ) from None


def parse_fault(spec: str) -> FaultSpec:
    """Parse one ``--fault`` string (see the module docstring grammar)."""
    text = spec.strip()
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"malformed fault spec {spec!r}: expected "
            "'<kind>:w=<worker>@n=<messages>' or '...@t=<seconds>'"
        )
    kind = parts[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )
    target = parts[1]
    if "@" not in target:
        raise ValueError(
            f"malformed fault spec {spec!r}: missing '@n=' or '@t=' trigger"
        )
    worker_part, trigger_part = target.split("@", 1)
    if not worker_part.startswith("w="):
        raise ValueError(
            f"malformed fault spec {spec!r}: target must be 'w=<worker>'"
        )
    try:
        worker = int(worker_part[2:])
    except ValueError:
        raise ValueError(
            f"malformed fault spec {spec!r}: worker id "
            f"{worker_part[2:]!r} is not an integer"
        ) from None
    at_messages: Optional[int] = None
    at_seconds: Optional[float] = None
    if trigger_part.startswith("n="):
        try:
            at_messages = int(trigger_part[2:])
        except ValueError:
            raise ValueError(
                f"malformed fault spec {spec!r}: @n trigger "
                f"{trigger_part[2:]!r} is not an integer"
            ) from None
    elif trigger_part.startswith("t="):
        at_seconds = _parse_value("t", trigger_part[2:])
    else:
        raise ValueError(
            f"malformed fault spec {spec!r}: trigger must be '@n=<messages>'"
            " or '@t=<seconds>'"
        )
    defaults = _PARAM_DEFAULTS[kind]
    params: Dict[str, float] = dict(defaults)
    for extra in parts[2:]:
        if "=" not in extra:
            raise ValueError(
                f"malformed fault spec {spec!r}: parameter {extra!r} is "
                "not '<name>=<value>'"
            )
        name, raw = extra.split("=", 1)
        if name not in defaults:
            valid = ", ".join(sorted(defaults)) or "none"
            raise ValueError(
                f"fault kind {kind!r} does not accept parameter {name!r} "
                f"(valid: {valid})"
            )
        params[name] = _parse_value(name, raw)
    return FaultSpec(
        kind=kind,
        worker=worker,
        at_messages=at_messages,
        at_seconds=at_seconds,
        duration=float(params.get("duration", math.inf)),
        factor=float(params.get("factor", 4.0)),
        count=int(params.get("count", 1_000)),
    )


def validate_fault_spec(spec: str) -> Optional[str]:
    """Why ``spec`` fails the fault grammar, or None if it parses.

    The REPRO005 lint rule calls this to validate fault-spec literals in
    code and docs the same way it validates scheme specs.
    """
    try:
        parse_fault(spec)
    except ValueError as exc:
        return str(exc)
    return None


@dataclass(frozen=True)
class FaultPlan:
    """A composable, seeded schedule of faults across the worker set."""

    specs: Tuple[FaultSpec, ...] = ()
    #: seed recorded for provenance (set by :meth:`random`).
    seed: int = 0

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from ``--fault`` grammar strings."""
        return cls(specs=tuple(parse_fault(s) for s in specs), seed=seed)

    @classmethod
    def random(
        cls,
        seed: int,
        num_workers: int,
        num_messages: int,
        kinds: Sequence[str] = FAULT_KINDS,
        max_faults: int = 2,
    ) -> "FaultPlan":
        """A seeded chaos schedule: 1..max_faults faults over the run.

        Message triggers land in the middle 80% of the per-worker share
        of the stream so they reliably fire; stalls get a short finite
        duration so a plan never *requires* supervision to terminate
        (killing a stalled worker stays the supervisor's choice).
        """
        if num_workers < 2:
            raise ValueError("chaos plans need at least 2 workers")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        rng = np.random.default_rng(seed)
        share = max(num_messages // num_workers, 1)
        n_faults = int(rng.integers(1, max_faults + 1))
        specs: List[FaultSpec] = []
        for _ in range(n_faults):
            kind = str(rng.choice(np.asarray(kinds, dtype=object)))
            worker = int(rng.integers(0, num_workers))
            at = int(rng.integers(max(share // 10, 1), max(share, 2)))
            specs.append(
                FaultSpec(
                    kind=kind,
                    worker=worker,
                    at_messages=at,
                    duration=float(rng.uniform(0.01, 0.05)),
                    factor=float(rng.uniform(2.0, 8.0)),
                    count=int(rng.integers(1, share + 1)),
                )
            )
        return cls(specs=tuple(specs), seed=seed)

    def for_worker(self, worker: int) -> Tuple[FaultSpec, ...]:
        """The subset of the plan aimed at ``worker`` (schedule order)."""
        return tuple(s for s in self.specs if s.worker == worker)

    def workers(self) -> Tuple[int, ...]:
        """Distinct targeted worker ids, ascending."""
        return tuple(sorted({s.worker for s in self.specs}))

    def describe(self) -> str:
        return " ".join(s.describe() for s in self.specs) or "(no faults)"


def consume_cause(
    specs: Sequence[FaultSpec], reason: str
) -> Tuple[FaultSpec, ...]:
    """``specs`` minus the fault that just killed its worker.

    Restart recovery calls this before respawning so the cause of death
    is consumed while every *later* fault on the same worker stays
    armed (it fires again during or after the replay, and recovery
    handles it recursively, bounded by the restart limit).  ``reason``
    picks the kind: ``"exit"`` consumes the first kill, ``"wedged"``
    the first stall; if no kind-matching spec exists the first lethal
    spec is consumed instead, and a worker that died with no matching
    fault at all (a genuine crash) keeps its specs unchanged.
    """
    kinds = {"exit": ("kill",), "wedged": ("stall",)}.get(reason, ())
    specs = tuple(specs)
    idx = next(
        (i for i, s in enumerate(specs) if s.kind in kinds), None
    )
    if idx is None:
        idx = next((i for i, s in enumerate(specs) if s.lethal), None)
    if idx is None:
        return specs
    return specs[:idx] + specs[idx + 1 :]


@dataclass
class FaultState:
    """One worker's live fault machine, advanced by its drain loop.

    The loop calls :meth:`message_budget` before each pop (so n-triggers
    land on exact boundaries), :meth:`poll` once per step to fire due
    specs, and consults the state fields that firing mutates.  All
    timing is relative to ``started_at`` (the worker's own start), so
    the machine itself never reads a clock.
    """

    specs: Tuple[FaultSpec, ...] = ()
    started_at: float = 0.0
    #: set by a fired kill (the loop turns this into death).
    killed: bool = False
    #: product of fired slow factors.
    service_factor: float = 1.0
    #: messages still to silently discard (fired drops).
    drop_remaining: int = 0
    #: absolute deadline of the current stall (None = not stalled).
    stalled_until: Optional[float] = None
    _pending: List[FaultSpec] = field(default_factory=list)
    fired: List[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._pending = sorted(
            self.specs,
            key=lambda s: (
                s.at_messages if s.at_messages is not None else math.inf,
                s.at_seconds if s.at_seconds is not None else math.inf,
            ),
        )

    def message_budget(self, count: int) -> Optional[int]:
        """Messages processable before the next n-trigger must fire.

        None = unbounded (no pending n-trigger).  Zero means a trigger
        is due *now*; the loop must poll before popping anything.
        """
        budgets = [
            s.at_messages - count
            for s in self._pending
            if s.at_messages is not None
        ]
        if not budgets:
            return None
        return max(min(budgets), 0)

    def stall_remaining(self, now: float) -> float:
        """Seconds of stall left at ``now`` (0.0 = not stalled)."""
        if self.stalled_until is None:
            return 0.0
        remaining = self.stalled_until - now
        if remaining <= 0:
            self.stalled_until = None
            return 0.0
        return remaining

    def poll(self, count: int, now: float) -> None:
        """Fire every spec whose trigger has been reached."""
        if not self._pending:
            return
        elapsed = now - self.started_at
        still: List[FaultSpec] = []
        for spec in self._pending:
            due = (
                spec.at_messages is not None and count >= spec.at_messages
            ) or (spec.at_seconds is not None and elapsed >= spec.at_seconds)
            if not due:
                still.append(spec)
                continue
            self.fired.append(spec)
            if spec.kind == "kill":
                self.killed = True
            elif spec.kind == "stall":
                deadline = (
                    math.inf
                    if math.isinf(spec.duration)
                    else now + spec.duration
                )
                self.stalled_until = deadline
            elif spec.kind == "slow":
                self.service_factor *= spec.factor
            elif spec.kind == "drop":
                self.drop_remaining += spec.count
        self._pending = still
