"""Bounded SPSC ring buffers over shared (or private) memory.

One ring connects the source process to one worker process: the source
is the single producer, the worker the single consumer.  The layout is
a fixed-capacity circular buffer of message slots plus a small header
of monotonically increasing int64 cursors:

* ``tail`` -- messages *published*; written only by the producer;
* ``head`` -- messages *consumed*; written only by the consumer;
* ``done`` -- end-of-stream flag, set once by the producer after the
  last push (the clean-shutdown signal the worker drains against).

Because each cursor has exactly one writer, no compare-and-swap is
needed anywhere (the same no-CAS discipline the per-worker accumulators
use, see :mod:`repro.runtime.worker`): the producer writes slot data
first and publishes by bumping ``tail`` with a single aligned int64
store; the consumer copies slot data out and releases by bumping
``head``.  Cursors never wrap -- slot positions are ``cursor %
capacity`` -- so ``tail - head`` is always the exact occupancy
(seqlock-style monotonic counters rather than wrapping indices, which
would need an extra full/empty disambiguation bit).

Each slot carries the message's stream *index* (int64) and its
enqueue timestamp (float64).  Routing decisions never travel through
the ring -- the source decides them (see :mod:`repro.runtime.engine`)
-- so ring timing can never change who processed what, only when.

The same class runs over two backings:

* :meth:`SpscRing.create_local` -- private numpy arrays, used by the
  simulated-rings fallback mode (single process, no /dev/shm needed);
* :meth:`SpscRing.from_buffer` -- views over a
  ``multiprocessing.shared_memory`` block, used by the real
  multi-process engine.  :func:`ring_nbytes` sizes the block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SpscRing", "ring_nbytes", "HEADER_SLOTS"]

#: int64 header slots; cursors sit one cache line (8 slots) apart so
#: the producer's tail stores never false-share the consumer's head.
HEADER_SLOTS = 24
_HEAD = 0
_TAIL = 8
_DONE = 16

#: bytes per slot: int64 message index + float64 enqueue timestamp.
_SLOT_BYTES = 16


def ring_nbytes(capacity: int) -> int:
    """Bytes a shared-memory block needs to host one ring."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    return HEADER_SLOTS * 8 + int(capacity) * _SLOT_BYTES


class SpscRing:
    """A bounded single-producer/single-consumer message ring.

    The producer side uses :meth:`try_push` and :meth:`mark_done`; the
    consumer side :meth:`try_pop` and :meth:`exhausted`.  Neither side
    ever blocks here -- waiting strategies live in
    :mod:`repro.runtime.backpressure` so they can be tested and
    configured independently of the buffer mechanics.
    """

    __slots__ = ("capacity", "_header", "_indices", "_stamps")

    def __init__(
        self,
        capacity: int,
        header: np.ndarray,
        indices: np.ndarray,
        stamps: np.ndarray,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if header.shape != (HEADER_SLOTS,) or header.dtype != np.int64:
            raise ValueError("header must be int64 with HEADER_SLOTS entries")
        if indices.shape != (capacity,) or stamps.shape != (capacity,):
            raise ValueError("data lanes must have one entry per slot")
        self.capacity = int(capacity)
        self._header = header
        self._indices = indices
        self._stamps = stamps

    # -- construction -------------------------------------------------------

    @classmethod
    def create_local(cls, capacity: int) -> "SpscRing":
        """A ring over private memory (the simulated-rings backing)."""
        return cls(
            capacity,
            np.zeros(HEADER_SLOTS, dtype=np.int64),
            np.zeros(capacity, dtype=np.int64),
            np.zeros(capacity, dtype=np.float64),
        )

    @classmethod
    def from_buffer(
        cls, buf: memoryview, capacity: int, initialize: bool = False
    ) -> "SpscRing":
        """A ring viewing an existing (shared-memory) buffer.

        The creator passes ``initialize=True`` to zero the header before
        any worker attaches; attachers must leave it untouched.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        needed = ring_nbytes(capacity)
        if len(buf) < needed:
            raise ValueError(
                f"buffer holds {len(buf)} bytes; a capacity-{capacity} "
                f"ring needs {needed}"
            )
        header = np.ndarray((HEADER_SLOTS,), dtype=np.int64, buffer=buf)
        offset = HEADER_SLOTS * 8
        indices = np.ndarray(
            (capacity,), dtype=np.int64, buffer=buf, offset=offset
        )
        stamps = np.ndarray(
            (capacity,),
            dtype=np.float64,
            buffer=buf,
            offset=offset + capacity * 8,
        )
        if initialize:
            header[:] = 0
        return cls(capacity, header, indices, stamps)

    # -- occupancy ----------------------------------------------------------

    @property
    def head(self) -> int:
        """Messages consumed so far (monotonic)."""
        return int(self._header[_HEAD])

    @property
    def tail(self) -> int:
        """Messages published so far (monotonic)."""
        return int(self._header[_TAIL])

    @property
    def size(self) -> int:
        """Messages currently buffered."""
        return self.tail - self.head

    @property
    def free(self) -> int:
        """Slots currently available to the producer."""
        return self.capacity - self.size

    # -- producer side ------------------------------------------------------

    def try_push(self, indices: np.ndarray, stamps: np.ndarray) -> int:
        """Publish as many leading messages as fit; returns the count.

        Writes slot data (wrapping at the capacity boundary) before the
        single tail store that makes the messages visible, so a
        concurrent consumer can never observe a published-but-unwritten
        slot.
        """
        n = min(int(indices.size), self.free)
        if n <= 0:
            return 0
        tail = self.tail
        pos = tail % self.capacity
        first = min(n, self.capacity - pos)
        self._indices[pos : pos + first] = indices[:first]
        self._stamps[pos : pos + first] = stamps[:first]
        if n > first:
            self._indices[: n - first] = indices[first:n]
            self._stamps[: n - first] = stamps[first:n]
        self._header[_TAIL] = tail + n  # publish: single aligned store
        return n

    def mark_done(self) -> None:
        """Producer's end-of-stream signal (set after the last push)."""
        self._header[_DONE] = 1

    def reset(self) -> None:
        """Rewind the ring to empty-and-open (restart recovery only).

        Clears both cursors and the done flag.  This breaks the
        single-writer discipline on ``head``, so it is only legal while
        the consumer side is provably gone -- the supervisor calls it
        after reaping a dead worker and before attaching its
        replacement to the same backing memory.
        """
        self._header[_HEAD] = 0
        self._header[_TAIL] = 0
        self._header[_DONE] = 0

    # -- consumer side ------------------------------------------------------

    def try_pop(self, max_items: int) -> Tuple[np.ndarray, np.ndarray]:
        """Copy out up to ``max_items`` messages; returns (indices, stamps).

        Copies slot data before the single head store that releases the
        slots back to the producer.  Returns empty arrays when the ring
        is empty.
        """
        head = self.head
        n = min(int(max_items), self.tail - head)
        if n <= 0:
            empty_i: np.ndarray = np.empty(0, dtype=np.int64)
            empty_s: np.ndarray = np.empty(0, dtype=np.float64)
            return empty_i, empty_s
        pos = head % self.capacity
        first = min(n, self.capacity - pos)
        indices = np.empty(n, dtype=np.int64)
        stamps = np.empty(n, dtype=np.float64)
        indices[:first] = self._indices[pos : pos + first]
        stamps[:first] = self._stamps[pos : pos + first]
        if n > first:
            indices[first:] = self._indices[: n - first]
            stamps[first:] = self._stamps[: n - first]
        self._header[_HEAD] = head + n  # release: single aligned store
        return indices, stamps

    @property
    def done(self) -> bool:
        """Whether the producer has signalled end-of-stream."""
        return bool(self._header[_DONE])

    @property
    def exhausted(self) -> bool:
        """End-of-stream signalled *and* every message drained."""
        # Order matters: read done before size, so a push racing this
        # check can only make `exhausted` spuriously False (another
        # drain iteration), never spuriously True (lost messages).
        done = self.done
        return done and self.size == 0

    def __repr__(self) -> str:
        return (
            f"SpscRing(capacity={self.capacity}, size={self.size}, "
            f"done={self.done})"
        )
