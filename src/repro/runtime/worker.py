"""Worker side of the sharded runtime: drain, serve, account privately.

A worker owns one ring (single consumer) and two private accumulators
-- a message count and a :class:`~repro.queueing.latency.LatencyStore`
sojourn sketch -- that nothing else writes.  This is the
privatize-then-reduce discipline: accumulate into per-worker private
state with no synchronisation at all, publish a checkpoint snapshot
into a single-writer slot of the shared progress array every
``checkpoint_interval`` messages, and reduce the full private state
exactly once at shutdown (the report the engine merges).  No CAS, no
locks, no shared hot counters.

:class:`WorkerLoop` holds that logic once, for both deployment modes:
the real multi-process engine runs it inside :func:`worker_main` (a
module-level, picklable entrypoint -- the REPRO004 contract, same as
``parallel_map`` cells), and the simulated-rings fallback calls
:meth:`WorkerLoop.step` inline from the source loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.runtime.ring import SpscRing

__all__ = ["WorkerSpec", "WorkerLoop", "worker_main"]

#: seconds an idle real-process worker sleeps before re-polling its ring.
_IDLE_SLEEP = 20e-6


@dataclass(frozen=True)
class WorkerSpec:
    """Plain-data description of one worker (picklable under spawn)."""

    worker_id: int
    num_workers: int
    #: shared-memory block name of this worker's ring.
    ring_name: str
    #: shared-memory block name of the cluster-wide progress array.
    progress_name: str
    capacity: int
    #: seconds of simulated per-message service cost (busy-wait).
    service_cost: float
    #: messages between checkpoint publications to the progress array.
    checkpoint_interval: int
    #: LatencyStore relative error for the sojourn sketch.
    relative_error: float = DEFAULT_RELATIVE_ERROR
    #: largest batch one drain step pops.
    max_batch: int = 4096
    #: record every popped message id in the final report ("indices").
    capture_indices: bool = False


def _busy_wait(seconds: float) -> None:
    """Occupy the CPU for ``seconds`` (the simulated service cost).

    Spins on the monotonic clock: the duration models real work, so it
    must consume real time -- sleep would let the OS run the producer
    and understate contention.
    """
    if seconds <= 0:
        return
    # Service cost is elapsed real time by definition (REPRO002 noqa:
    # this measures/creates wall time on purpose; no routing decision
    # or load count depends on the values read here).
    deadline = time.perf_counter() + seconds  # repro: noqa[REPRO002]
    while time.perf_counter() < deadline:  # repro: noqa[REPRO002]
        pass


class WorkerLoop:
    """One worker's drain loop and private accumulators."""

    def __init__(
        self,
        worker_id: int,
        ring: SpscRing,
        progress: np.ndarray,
        *,
        service_cost: float = 0.0,
        checkpoint_interval: int = 4096,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_batch: int = 4096,
        capture_indices: bool = False,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if service_cost < 0:
            raise ValueError(f"service_cost must be >= 0, got {service_cost}")
        self.worker_id = int(worker_id)
        self.ring = ring
        self.progress = progress
        self.service_cost = float(service_cost)
        self.checkpoint_interval = int(checkpoint_interval)
        self.max_batch = int(max_batch)
        #: private accumulators -- this worker is the only writer.
        self.count = 0
        self.latency = LatencyStore(relative_error)
        self.checkpoints_published = 0
        self._since_checkpoint = 0
        #: popped message ids, batch by batch (tests assert FIFO order
        #: against the replay's assignments; None = not capturing).
        self.captured: Optional[List[np.ndarray]] = (
            [] if capture_indices else None
        )

    @classmethod
    def from_spec(
        cls, spec: WorkerSpec, ring: SpscRing, progress: np.ndarray
    ) -> "WorkerLoop":
        return cls(
            spec.worker_id,
            ring,
            progress,
            service_cost=spec.service_cost,
            checkpoint_interval=spec.checkpoint_interval,
            relative_error=spec.relative_error,
            max_batch=spec.max_batch,
            capture_indices=spec.capture_indices,
        )

    def step(self) -> int:
        """Drain one batch from the ring; returns messages processed."""
        indices, stamps = self.ring.try_pop(self.max_batch)
        n = int(indices.size)
        if n == 0:
            return 0
        if self.captured is not None:
            self.captured.append(indices.copy())
        if self.service_cost > 0.0:
            _busy_wait(n * self.service_cost)
        # Sojourn = dequeue-complete minus enqueue stamp: a real
        # end-to-end wall measurement, the quantity throughput_e2e
        # reports (REPRO002 noqa: measurement is the purpose; the
        # values never feed a routing decision or a load count).
        now = time.perf_counter()  # repro: noqa[REPRO002]
        self.latency.record_many(now - stamps)
        self.count += n
        self._since_checkpoint += n
        if self._since_checkpoint >= self.checkpoint_interval:
            self.publish_checkpoint()
        return n

    def publish_checkpoint(self) -> None:
        """Snapshot the private count into this worker's progress slot.

        The slot has exactly one writer (this worker), so a plain
        aligned int64 store is the whole reduction protocol.
        """
        self.progress[self.worker_id] = self.count
        self.checkpoints_published += 1
        self._since_checkpoint = 0

    def drain_until_done(self) -> None:
        """Run until the producer marked done and the ring is empty."""
        while True:
            if self.step() == 0:
                if self.ring.exhausted:
                    break
                time.sleep(_IDLE_SLEEP)
        self.publish_checkpoint()

    def report(self) -> Dict[str, Any]:
        """The worker's final reduced state (sent to the engine once)."""
        report: Dict[str, Any] = {
            "worker_id": self.worker_id,
            "count": self.count,
            "checkpoints_published": self.checkpoints_published,
            "latency": self.latency.to_dict(),
        }
        if self.captured is not None:
            report["indices"] = (
                np.concatenate(self.captured)
                if self.captured
                else np.empty(0, dtype=np.int64)
            )
        return report


def worker_main(spec: WorkerSpec, result_queue: Any) -> None:
    """Process entrypoint: attach shared state, drain, report, exit.

    Module-level by necessity, not style: under the ``spawn`` start
    method the target is pickled by qualified name (REPRO004).
    """
    from multiprocessing import shared_memory

    ring_shm = shared_memory.SharedMemory(name=spec.ring_name)
    progress_shm = shared_memory.SharedMemory(name=spec.progress_name)
    try:
        ring = SpscRing.from_buffer(ring_shm.buf, spec.capacity)
        progress = np.ndarray(
            (spec.num_workers,), dtype=np.int64, buffer=progress_shm.buf
        )
        loop = WorkerLoop.from_spec(spec, ring, progress)
        loop.drain_until_done()
        result_queue.put(loop.report())
    finally:
        # Views must die before the mappings close.
        del ring, progress, loop
        ring_shm.close()
        progress_shm.close()
