"""Worker side of the sharded runtime: drain, serve, account privately.

A worker owns one ring (single consumer) and two private accumulators
-- a message count and a :class:`~repro.queueing.latency.LatencyStore`
sojourn sketch -- that nothing else writes.  This is the
privatize-then-reduce discipline: accumulate into per-worker private
state with no synchronisation at all, publish a checkpoint snapshot
into a single-writer slot of the shared progress array every
``checkpoint_interval`` messages, and reduce the full private state
exactly once at shutdown (the report the engine merges).  No CAS, no
locks, no shared hot counters.

**Heartbeats.**  The shared progress block carries two single-writer
lanes per worker: the *count* lane (checkpoint snapshots, as before)
and a *beat* lane the worker bumps on every drain step -- including
idle ones -- so the source can tell "alive but idle" from "gone".  A
worker that is dead, or stalled by an injected fault, stops beating;
that silence is exactly what the supervisor's liveness deadline
measures (:mod:`repro.runtime.supervision`).

**Fault injection.**  A :class:`~repro.runtime.faults.FaultState`
built from the worker's slice of the :class:`~repro.runtime.faults.
FaultPlan` is advanced inside :meth:`WorkerLoop.step`: batches are
clipped so message-count triggers fire on exact boundaries, kills are
abrupt (``os._exit`` in process mode -- no report, no checkpoint, no
cleanup), stalls suppress draining *and* heartbeats, slow multiplies
the service cost, and drop silently discards messages (consumed from
the ring, never counted -- the engine accounts them as *lost*).

:class:`WorkerLoop` holds that logic once, for both deployment modes:
the real multi-process engine runs it inside :func:`worker_main` (a
module-level, picklable entrypoint -- the REPRO004 contract, same as
``parallel_map`` cells), and the simulated-rings fallback calls
:meth:`WorkerLoop.step` inline from the source loop.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.queueing.latency import DEFAULT_RELATIVE_ERROR, LatencyStore
from repro.runtime.backpressure import RingStallError
from repro.runtime.faults import FaultSpec, FaultState
from repro.runtime.ring import SpscRing

__all__ = [
    "FAULT_KILL_EXIT",
    "DRAIN_TIMEOUT_EXIT",
    "WorkerSpec",
    "WorkerLoop",
    "worker_main",
]

#: seconds an idle real-process worker sleeps before re-polling its ring.
_IDLE_SLEEP = 20e-6
#: largest single sleep a stalled process-mode worker takes (keeps the
#: stall interruptible by terminate/kill escalation).
_STALL_SLEEP = 5e-3
#: per-message service floor a fired ``slow`` fault multiplies when the
#: configured service cost is zero (so chaos plans still bite).
_SLOW_FLOOR = 1e-6

#: exit code of a worker killed by an injected ``kill`` fault.
FAULT_KILL_EXIT = 73
#: exit code of a worker whose bounded drain saw no producer progress.
DRAIN_TIMEOUT_EXIT = 71


@dataclass(frozen=True)
class WorkerSpec:
    """Plain-data description of one worker (picklable under spawn)."""

    worker_id: int
    num_workers: int
    #: shared-memory block name of this worker's ring.
    ring_name: str
    #: shared-memory block name of the cluster-wide progress block
    #: (2 int64 lanes per worker: counts then beats).
    progress_name: str
    capacity: int
    #: seconds of simulated per-message service cost (busy-wait).
    service_cost: float
    #: messages between checkpoint publications to the progress array.
    checkpoint_interval: int
    #: LatencyStore relative error for the sojourn sketch.
    relative_error: float = DEFAULT_RELATIVE_ERROR
    #: largest batch one drain step pops.
    max_batch: int = 4096
    #: record every popped message id in the final report ("indices").
    capture_indices: bool = False
    #: this worker's slice of the fault plan (injection harness).
    faults: Tuple[FaultSpec, ...] = ()
    #: seconds of no ring progress before the drain loop gives up
    #: (None = retry-bounded only; see drain_until_done).
    drain_deadline: Optional[float] = None


def _busy_wait(seconds: float) -> None:
    """Occupy the CPU for ``seconds`` (the simulated service cost).

    Spins on the monotonic clock: the duration models real work, so it
    must consume real time -- sleep would let the OS run the producer
    and understate contention.
    """
    if seconds <= 0:
        return
    # Service cost is elapsed real time by definition (REPRO002 noqa:
    # this measures/creates wall time on purpose; no routing decision
    # or load count depends on the values read here).
    deadline = time.perf_counter() + seconds  # repro: noqa[REPRO002]
    while time.perf_counter() < deadline:  # repro: noqa[REPRO002]
        pass


class WorkerLoop:
    """One worker's drain loop, private accumulators, and fault machine."""

    def __init__(
        self,
        worker_id: int,
        ring: SpscRing,
        progress: np.ndarray,
        *,
        service_cost: float = 0.0,
        checkpoint_interval: int = 4096,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        max_batch: int = 4096,
        capture_indices: bool = False,
        beats: Optional[np.ndarray] = None,
        faults: Tuple[FaultSpec, ...] = (),
        hard_exit: bool = False,
        allow_sleep: bool = False,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if service_cost < 0:
            raise ValueError(f"service_cost must be >= 0, got {service_cost}")
        self.worker_id = int(worker_id)
        self.ring = ring
        self.progress = progress
        self.beats = beats
        self.service_cost = float(service_cost)
        self.checkpoint_interval = int(checkpoint_interval)
        self.max_batch = int(max_batch)
        #: private accumulators -- this worker is the only writer.
        self.count = 0
        self.latency = LatencyStore(relative_error)
        self.checkpoints_published = 0
        self._since_checkpoint = 0
        self._beats_sent = 0
        #: crash flag: a killed worker never consumes or reports again.
        self.dead = False
        #: messages silently discarded by a fired ``drop`` fault.
        self.fault_dropped = 0
        #: process mode: a kill fault _exit()s instead of setting flags.
        self.hard_exit = bool(hard_exit)
        #: process mode: stalls may sleep (a simulated loop must not
        #: block its caller, which *is* the source).
        self.allow_sleep = bool(allow_sleep)
        self._faults: Optional[FaultState] = None
        if faults:
            # Fault timing is wall-clock by design (the harness injects
            # real-world failure timing; REPRO002 noqa -- no routing
            # decision or load count reads these values).
            self._faults = FaultState(
                specs=tuple(faults),
                started_at=time.perf_counter(),  # repro: noqa[REPRO002]
            )
        #: popped message ids, batch by batch (tests assert FIFO order
        #: against the replay's assignments; None = not capturing).
        self.captured: Optional[List[np.ndarray]] = (
            [] if capture_indices else None
        )

    @classmethod
    def from_spec(
        cls, spec: WorkerSpec, ring: SpscRing, progress: np.ndarray,
        beats: Optional[np.ndarray] = None,
        hard_exit: bool = False,
        allow_sleep: bool = False,
    ) -> "WorkerLoop":
        return cls(
            spec.worker_id,
            ring,
            progress,
            service_cost=spec.service_cost,
            checkpoint_interval=spec.checkpoint_interval,
            relative_error=spec.relative_error,
            max_batch=spec.max_batch,
            capture_indices=spec.capture_indices,
            beats=beats,
            faults=spec.faults,
            hard_exit=hard_exit,
            allow_sleep=allow_sleep,
        )

    @property
    def fired_faults(self) -> Tuple[FaultSpec, ...]:
        """Faults that have fired on this worker so far."""
        if self._faults is None:
            return ()
        return tuple(self._faults.fired)

    def stall_remaining(self, now: float) -> float:
        """Seconds left in the current injected stall (0.0 = none).

        Read-only (unlike ``FaultState.stall_remaining`` it never
        clears expired stalls): the simulated backend's supervisor uses
        it to decide between sleeping a stall out and condemning the
        worker, without perturbing the fault machine.
        """
        faults = self._faults
        if faults is None or faults.stalled_until is None:
            return 0.0
        if math.isinf(faults.stalled_until):
            return math.inf
        return max(float(faults.stalled_until) - now, 0.0)

    def _beat(self) -> None:
        """Bump this worker's single-writer heartbeat lane."""
        if self.beats is not None:
            self._beats_sent += 1
            self.beats[self.worker_id] = self._beats_sent

    def _die(self) -> None:
        """Abrupt crash: no report, no checkpoint, no cleanup."""
        self.dead = True
        if self.hard_exit:
            os._exit(FAULT_KILL_EXIT)

    def step(self) -> int:
        """Drain one batch from the ring; returns ring slots consumed.

        Returns 0 when the ring is empty *or* the worker is dead or
        mid-stall -- callers distinguish via :attr:`dead` and the ring
        state, never via the return value alone.
        """
        if self.dead:
            return 0
        faults = self._faults
        limit = self.max_batch
        if faults is not None:
            # Fault triggers are wall-clock by design (REPRO002 noqa on
            # this injection-harness read; see __init__).
            now = time.perf_counter()  # repro: noqa[REPRO002]
            if faults.stall_remaining(now) > 0.0:
                # Stalled: no drain, no heartbeat (that silence is the
                # signal supervision detects).
                if self.allow_sleep:
                    time.sleep(
                        min(faults.stall_remaining(now), _STALL_SLEEP)
                    )
                return 0
            faults.poll(self.count, now)
            if faults.killed:
                self._die()
                return 0
            if faults.stalled_until is not None:
                return 0
            budget = faults.message_budget(self.count)
            if budget is not None:
                limit = min(limit, max(budget, 1))
        self._beat()
        indices, stamps = self.ring.try_pop(limit)
        consumed = int(indices.size)
        if consumed == 0:
            return 0
        n = consumed
        if faults is not None and faults.drop_remaining > 0:
            # A fired drop fault discards the leading messages of the
            # batch: consumed from the ring, never counted or measured.
            discard = min(n, faults.drop_remaining)
            faults.drop_remaining -= discard
            self.fault_dropped += discard
            indices = indices[discard:]
            stamps = stamps[discard:]
            n -= discard
        if n == 0:
            return consumed
        if self.captured is not None:
            self.captured.append(indices.copy())
        service = self.service_cost
        if faults is not None and faults.service_factor != 1.0:
            service = max(service, _SLOW_FLOOR) * faults.service_factor
        if service > 0.0:
            _busy_wait(n * service)
        # Sojourn = dequeue-complete minus enqueue stamp: a real
        # end-to-end wall measurement, the quantity throughput_e2e
        # reports (REPRO002 noqa: measurement is the purpose; the
        # values never feed a routing decision or a load count).
        now_done = time.perf_counter()  # repro: noqa[REPRO002]
        self.latency.record_many(now_done - stamps)
        self.count += n
        self._since_checkpoint += n
        if self._since_checkpoint >= self.checkpoint_interval:
            self.publish_checkpoint()
        return consumed

    def publish_checkpoint(self) -> None:
        """Snapshot the private count into this worker's progress slot.

        The slot has exactly one writer (this worker), so a plain
        aligned int64 store is the whole reduction protocol.
        """
        self.progress[self.worker_id] = self.count
        self.checkpoints_published += 1
        self._since_checkpoint = 0

    def drain_until_done(self, deadline: Optional[float] = None) -> None:
        """Run until the producer marked done and the ring is empty.

        ``deadline`` bounds the wait: after that many seconds with no
        ring progress (no pops, no end-of-stream), the loop raises
        :class:`~repro.runtime.backpressure.RingStallError` instead of
        waiting forever on a dead producer.  The clock counts *any*
        no-progress time -- a worker wedged by its own stall fault
        trips the same deadline, which is what lets the supervisor
        drive a stalled simulated loop to condemnation.  A worker
        crashed by a kill fault returns immediately (its accumulators
        are already forfeit).
        """
        idle_started: Optional[float] = None
        while not self.dead:
            if self.step() > 0:
                idle_started = None
                continue
            if self.ring.exhausted:
                self.publish_checkpoint()
                return
            if deadline is not None:
                # Idle-wait bounding is supervision telemetry, not a
                # routing input (REPRO002 noqa).
                now = time.perf_counter()  # repro: noqa[REPRO002]
                if idle_started is None:
                    idle_started = now
                elif now - idle_started >= deadline:
                    raise RingStallError(
                        f"worker {self.worker_id} saw no ring progress "
                        f"for {deadline:g}s (producer dead?)"
                    )
            time.sleep(_IDLE_SLEEP)

    def kill(self) -> None:
        """Supervisor-side condemnation (simulated mode): stop consuming."""
        self.dead = True

    def report(self) -> Dict[str, Any]:
        """The worker's final reduced state (sent to the engine once)."""
        report: Dict[str, Any] = {
            "worker_id": self.worker_id,
            "count": self.count,
            "checkpoints_published": self.checkpoints_published,
            "latency": self.latency.to_dict(),
            "fault_dropped": self.fault_dropped,
        }
        if self.captured is not None:
            report["indices"] = (
                np.concatenate(self.captured)
                if self.captured
                else np.empty(0, dtype=np.int64)
            )
        return report


def worker_main(spec: WorkerSpec, result_queue: Any) -> None:
    """Process entrypoint: attach shared state, drain, report, exit.

    Module-level by necessity, not style: under the ``spawn`` start
    method the target is pickled by qualified name (REPRO004).
    """
    from multiprocessing import shared_memory

    ring_shm = shared_memory.SharedMemory(name=spec.ring_name)
    progress_shm = shared_memory.SharedMemory(name=spec.progress_name)
    ring = lanes = progress = beats = loop = None
    try:
        ring = SpscRing.from_buffer(ring_shm.buf, spec.capacity)
        lanes = np.ndarray(
            (2 * spec.num_workers,), dtype=np.int64, buffer=progress_shm.buf
        )
        progress = lanes[: spec.num_workers]
        beats = lanes[spec.num_workers :]
        loop = WorkerLoop.from_spec(
            spec, ring, progress, beats=beats, hard_exit=True, allow_sleep=True
        )
        try:
            loop.drain_until_done(deadline=spec.drain_deadline)
        except RingStallError:
            # Producer went silent past the deadline: exit with a
            # recognisable code instead of hanging as an orphan.
            raise SystemExit(DRAIN_TIMEOUT_EXIT) from None
        result_queue.put(loop.report())
    finally:
        # Views must die before the mappings close.
        del ring, progress, beats, lanes, loop
        ring_shm.close()
        progress_shm.close()
