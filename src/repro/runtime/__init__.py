"""Sharded multi-process runtime: source-routed rings, private merges.

Public surface of :mod:`repro.runtime`:

* :func:`run_runtime` / :class:`RuntimeConfig` / :class:`RuntimeResult`
  -- run a stream (a materialised array or a bounded-memory
  :class:`~repro.core.chunks.ChunkSource`) through W sharded workers
  (real processes over shared-memory rings, or the in-process
  simulated-rings fallback), with coalescing staging buffers and a
  per-stage wall breakdown in ``RuntimeResult.stage_seconds``;
* supervision & recovery -- heartbeat liveness, deadline-aware pushes
  (:class:`RingStallError`), seeded fault injection
  (:class:`FaultPlan` / :func:`parse_fault`), and the ``fail`` /
  ``reroute`` / ``restart`` recovery policies with exact
  ``sent == processed + dropped + lost`` conservation accounting;
* :class:`SpscRing` -- the bounded single-producer/single-consumer ring;
* :func:`push_with_backpressure` -- block/spin/drop policies with
  exact drop accounting;
* :func:`bench_throughput_e2e` -- the ``<scheme>@e2e`` bench harness;
* :func:`runtime_available` -- whether real worker processes can spawn.

``python -m repro.runtime`` is the CLI; see ARCHITECTURE.md's
"Sharded runtime" and "Supervision & recovery" sections for the design
contract.
"""

from repro.runtime.backpressure import (
    POLICIES,
    PushOutcome,
    RingStalledError,
    RingStallError,
    push_with_backpressure,
)
from repro.runtime.bench import DEFAULT_E2E_SCHEMES, bench_throughput_e2e, e2e_entry
from repro.runtime.engine import (
    MODES,
    RuntimeConfig,
    RuntimeResult,
    run_runtime,
    runtime_available,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    parse_fault,
    validate_fault_spec,
)
from repro.runtime.ring import HEADER_SLOTS, SpscRing, ring_nbytes
from repro.runtime.supervision import (
    RECOVERY_POLICIES,
    FailureEvent,
    LivenessDetector,
    WorkerDeadError,
    reap_process,
)
from repro.runtime.worker import WorkerLoop, WorkerSpec, worker_main

__all__ = [
    "DEFAULT_E2E_SCHEMES",
    "FAULT_KINDS",
    "FailureEvent",
    "FaultPlan",
    "FaultSpec",
    "HEADER_SLOTS",
    "LivenessDetector",
    "MODES",
    "POLICIES",
    "PushOutcome",
    "RECOVERY_POLICIES",
    "RingStallError",
    "RingStalledError",
    "RuntimeConfig",
    "RuntimeResult",
    "SpscRing",
    "WorkerDeadError",
    "WorkerLoop",
    "WorkerSpec",
    "bench_throughput_e2e",
    "e2e_entry",
    "parse_fault",
    "push_with_backpressure",
    "reap_process",
    "ring_nbytes",
    "run_runtime",
    "runtime_available",
    "validate_fault_spec",
    "worker_main",
]
