"""Sharded multi-process runtime: source-routed rings, private merges.

Public surface of :mod:`repro.runtime`:

* :func:`run_runtime` / :class:`RuntimeConfig` / :class:`RuntimeResult`
  -- run a stream (a materialised array or a bounded-memory
  :class:`~repro.core.chunks.ChunkSource`) through W sharded workers
  (real processes over shared-memory rings, or the in-process
  simulated-rings fallback), with coalescing staging buffers and a
  per-stage wall breakdown in ``RuntimeResult.stage_seconds``;
* :class:`SpscRing` -- the bounded single-producer/single-consumer ring;
* :func:`push_with_backpressure` -- block/spin/drop policies with
  exact drop accounting;
* :func:`bench_throughput_e2e` -- the ``<scheme>@e2e`` bench harness;
* :func:`runtime_available` -- whether real worker processes can spawn.

``python -m repro.runtime`` is the CLI; see ARCHITECTURE.md's
"Sharded runtime" section for the design contract.
"""

from repro.runtime.backpressure import (
    POLICIES,
    PushOutcome,
    RingStalledError,
    push_with_backpressure,
)
from repro.runtime.bench import DEFAULT_E2E_SCHEMES, bench_throughput_e2e, e2e_entry
from repro.runtime.engine import (
    MODES,
    RuntimeConfig,
    RuntimeResult,
    run_runtime,
    runtime_available,
)
from repro.runtime.ring import HEADER_SLOTS, SpscRing, ring_nbytes
from repro.runtime.worker import WorkerLoop, WorkerSpec, worker_main

__all__ = [
    "DEFAULT_E2E_SCHEMES",
    "HEADER_SLOTS",
    "MODES",
    "POLICIES",
    "PushOutcome",
    "RingStalledError",
    "RuntimeConfig",
    "RuntimeResult",
    "SpscRing",
    "WorkerLoop",
    "WorkerSpec",
    "bench_throughput_e2e",
    "e2e_entry",
    "push_with_backpressure",
    "ring_nbytes",
    "run_runtime",
    "runtime_available",
    "worker_main",
]
