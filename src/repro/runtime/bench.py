"""End-to-end runtime benchmark: messages/s and p99 sojourn per scheme.

Where :func:`repro.reports.bench.bench_partitioners` times *routing*
alone (keys/s through ``route_chunk``), :func:`bench_throughput_e2e`
times the whole sharded pipeline: route in the source, cross a ring,
get processed by a worker.  Entries land in the same
``BENCH_partitioners.json`` trajectory under ``<scheme>@e2e`` names,
each carrying ``e2e_messages_per_second`` (higher is better) and
``p99_sojourn_seconds`` (lower is better) -- both wired into the
direction-aware diff gate in :mod:`repro.reports.diffing`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.runtime.engine import RuntimeConfig, run_runtime

__all__ = ["DEFAULT_E2E_SCHEMES", "bench_throughput_e2e"]

#: the paper's headline schemes plus the queueing-layer baseline.
DEFAULT_E2E_SCHEMES = ("pkg", "kg", "sg", "jbsq")


def bench_throughput_e2e(
    schemes: Sequence[str] = DEFAULT_E2E_SCHEMES,
    num_messages: int = 50_000,
    num_workers: int = 4,
    seed: int = 42,
    dataset: str = "WP",
    config: Optional[RuntimeConfig] = None,
) -> List[Dict]:
    """Run one fixed stream through the runtime per scheme and time it.

    Returns bench entries for :func:`repro.reports.bench.
    write_bench_snapshot` / ``merge_bench_results``.  The recorded
    ``mode`` matters when reading trajectories: simulated-mode numbers
    from a 1-core container are not comparable to process-mode numbers
    from a real host, so the entry carries it alongside the values.
    """
    from repro.api import make_partitioner
    from repro.streams.datasets import get_dataset

    config = config or RuntimeConfig()
    keys = get_dataset(dataset).stream(num_messages, seed=seed)
    results = []
    for scheme in schemes:
        partitioner = make_partitioner(scheme, num_workers, seed=seed)
        result = run_runtime(keys, partitioner, config)
        results.append(
            {
                "name": f"{scheme}@e2e",
                "e2e_messages_per_second": result.messages_per_second,
                "p99_sojourn_seconds": result.p99_sojourn(),
                "duration_seconds": result.wall_seconds,
                "num_messages": int(keys.size),
                "num_workers": num_workers,
                "mode": result.mode,
                "policy": result.policy,
                "dropped": result.dropped,
            }
        )
    return results
