"""End-to-end runtime benchmark: messages/s and p99 sojourn per scheme.

Where :func:`repro.reports.bench.bench_partitioners` times *routing*
alone (keys/s through ``route_chunk``), :func:`bench_throughput_e2e`
times the whole sharded pipeline: route in the source, cross a ring,
get processed by a worker.  Entries land in the same
``BENCH_partitioners.json`` trajectory under ``<scheme>@e2e`` names,
each carrying ``e2e_messages_per_second`` (higher is better), the
per-stage wall breakdown (``route_seconds`` / ``scatter_seconds`` /
``flush_stall_seconds`` / ``drain_seconds``), the
``transport_overhead_ratio`` (source wall over pure routing wall --
the tracked "transport tax", lower is better) and ``p99_sojourn_seconds``
(lower is better) -- all wired into the direction-aware diff gate in
:mod:`repro.reports.diffing`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.engine import RuntimeConfig, RuntimeResult, run_runtime

__all__ = ["DEFAULT_E2E_SCHEMES", "bench_throughput_e2e", "e2e_entry"]

#: the paper's headline schemes plus the queueing-layer baseline.
DEFAULT_E2E_SCHEMES = ("pkg", "kg", "sg", "jbsq")


def e2e_entry(
    scheme: str, result: RuntimeResult, streaming: bool = False
) -> Dict[str, Any]:
    """One ``<scheme>@e2e`` bench entry from a runtime result."""
    stages = result.stage_seconds
    return {
        "name": f"{scheme}@e2e",
        "e2e_messages_per_second": result.messages_per_second,
        "p99_sojourn_seconds": result.p99_sojourn(),
        "duration_seconds": result.wall_seconds,
        "route_seconds": stages.get("route", 0.0),
        "scatter_seconds": stages.get("scatter", 0.0),
        "flush_stall_seconds": stages.get("flush_stall", 0.0),
        "drain_seconds": stages.get("drain", 0.0),
        "recovery_seconds": stages.get("recovery", 0.0),
        "transport_overhead_ratio": result.transport_overhead_ratio,
        "flushes": result.flushes,
        "num_messages": result.num_messages,
        "num_workers": result.num_workers,
        "mode": result.mode,
        "policy": result.policy,
        "dropped": result.dropped,
        "streaming": bool(streaming),
        "status": result.status,
        "lost": result.lost,
        "restarts": result.restarts,
        "stall_timeouts": result.stall_timeouts,
    }


def bench_throughput_e2e(
    schemes: Sequence[str] = DEFAULT_E2E_SCHEMES,
    num_messages: int = 50_000,
    num_workers: int = 4,
    seed: int = 42,
    dataset: str = "WP",
    config: Optional[RuntimeConfig] = None,
    streaming: bool = False,
) -> List[Dict]:
    """Run one fixed stream through the runtime per scheme and time it.

    Returns bench entries for :func:`repro.reports.bench.
    write_bench_snapshot` / ``merge_bench_results``.  The recorded
    ``mode`` matters when reading trajectories: simulated-mode numbers
    from a 1-core container are not comparable to process-mode numbers
    from a real host, so the entry carries it alongside the values.
    With ``streaming=True`` the keys are generated chunk-wise by the
    dataset's :class:`~repro.core.chunks.ChunkSource` (byte-identical
    stream, bounded memory) instead of materialised up front.
    """
    from repro.api import make_partitioner
    from repro.streams.datasets import get_dataset

    config = config or RuntimeConfig()
    spec = get_dataset(dataset)
    # One stream for every scheme: a ChunkSource re-iterates byte-
    # identically (chunks() starts a fresh pass), so both forms are
    # safely shared across schemes.
    keys = (
        spec.chunk_source(num_messages, seed=seed)
        if streaming
        else spec.stream(num_messages, seed=seed)
    )
    results = []
    for scheme in schemes:
        partitioner = make_partitioner(scheme, num_workers, seed=seed)
        result = run_runtime(keys, partitioner, config)
        results.append(e2e_entry(scheme, result, streaming=streaming))
    return results
