"""repro: PARTIAL KEY GROUPING and its evaluation substrate.

A from-scratch reproduction of *"The Power of Both Choices: Practical
Load Balancing for Distributed Stream Processing Engines"* (Nasir,
De Francisci Morales, García-Soriano, Kourtellis, Serafini -- ICDE
2015).

Quickstart (the unified :mod:`repro.api` facade)::

    from repro import run

    pkg = run("pkg", dataset="WP", num_workers=10)
    kg = run("kg", dataset="WP", num_workers=10)
    print(pkg.average_imbalance, "<<", kg.average_imbalance)

See ARCHITECTURE.md for the paper-section -> module map and
EXPERIMENTS.md for the paper-vs-measured record of every table and
figure.  EXPERIMENTS.md is generated from the JSON artifacts in
``results/``; regenerate it with::

    PYTHONPATH=src python -m repro.reports run --scale 0.1
    PYTHONPATH=src python -m repro.reports render
"""

from repro.hashing import HashFamily, HashFunction
from repro.partitioning import (
    KeyGrouping,
    LeastLoaded,
    OfflineGreedy,
    OnlineGreedy,
    PartialKeyGrouping,
    Partitioner,
    RebalancingKeyGrouping,
    ShuffleGrouping,
    StaticPoTC,
)
from repro.load import (
    GlobalOracleEstimator,
    LocalLoadEstimator,
    ProbingLoadEstimator,
    WorkerLoadRegistry,
)
from repro.streams import (
    DATASETS,
    DatasetSpec,
    DriftingKeyStream,
    EdgeStream,
    EmpiricalKeyDistribution,
    KeyDistribution,
    LogNormalKeyDistribution,
    Message,
    UniformKeyDistribution,
    ZipfKeyDistribution,
    get_dataset,
)

# The unified public API (kept last: repro.api pulls in the dspe and
# simulation layers, which build on everything above).
from repro.api import (
    RunResult,
    Topology,
    available_schemes,
    make_partitioner,
    run,
)

__version__ = "1.2.0"

__all__ = [
    "make_partitioner",
    "available_schemes",
    "Topology",
    "run",
    "RunResult",
    "HashFamily",
    "HashFunction",
    "Partitioner",
    "KeyGrouping",
    "ShuffleGrouping",
    "PartialKeyGrouping",
    "StaticPoTC",
    "OnlineGreedy",
    "OfflineGreedy",
    "LeastLoaded",
    "RebalancingKeyGrouping",
    "WorkerLoadRegistry",
    "GlobalOracleEstimator",
    "LocalLoadEstimator",
    "ProbingLoadEstimator",
    "Message",
    "KeyDistribution",
    "ZipfKeyDistribution",
    "LogNormalKeyDistribution",
    "UniformKeyDistribution",
    "EmpiricalKeyDistribution",
    "DriftingKeyStream",
    "EdgeStream",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "__version__",
]
