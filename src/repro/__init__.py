"""repro: PARTIAL KEY GROUPING and its evaluation substrate.

A from-scratch reproduction of *"The Power of Both Choices: Practical
Load Balancing for Distributed Stream Processing Engines"* (Nasir,
De Francisci Morales, García-Soriano, Kourtellis, Serafini -- ICDE
2015).

Quickstart::

    import numpy as np
    from repro import PartialKeyGrouping, KeyGrouping, ZipfKeyDistribution
    from repro.simulation import simulate_stream

    keys = ZipfKeyDistribution(1.5, 10_000).sample(100_000, np.random.default_rng(7))
    pkg = simulate_stream(keys, PartialKeyGrouping(num_workers=10))
    kg = simulate_stream(keys, KeyGrouping(num_workers=10))
    print(pkg.average_imbalance, "<<", kg.average_imbalance)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.hashing import HashFamily, HashFunction
from repro.partitioning import (
    KeyGrouping,
    LeastLoaded,
    OfflineGreedy,
    OnlineGreedy,
    PartialKeyGrouping,
    Partitioner,
    RebalancingKeyGrouping,
    ShuffleGrouping,
    StaticPoTC,
)
from repro.load import (
    GlobalOracleEstimator,
    LocalLoadEstimator,
    ProbingLoadEstimator,
    WorkerLoadRegistry,
)
from repro.streams import (
    DATASETS,
    DatasetSpec,
    DriftingKeyStream,
    EdgeStream,
    EmpiricalKeyDistribution,
    KeyDistribution,
    LogNormalKeyDistribution,
    Message,
    UniformKeyDistribution,
    ZipfKeyDistribution,
    get_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "HashFamily",
    "HashFunction",
    "Partitioner",
    "KeyGrouping",
    "ShuffleGrouping",
    "PartialKeyGrouping",
    "StaticPoTC",
    "OnlineGreedy",
    "OfflineGreedy",
    "LeastLoaded",
    "RebalancingKeyGrouping",
    "WorkerLoadRegistry",
    "GlobalOracleEstimator",
    "LocalLoadEstimator",
    "ProbingLoadEstimator",
    "Message",
    "KeyDistribution",
    "ZipfKeyDistribution",
    "LogNormalKeyDistribution",
    "UniformKeyDistribution",
    "EmpiricalKeyDistribution",
    "DriftingKeyStream",
    "EdgeStream",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "__version__",
]
