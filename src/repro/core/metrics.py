"""Streaming checkpoint/imbalance accumulation.

The paper reports the imbalance time series ``I(t)`` sampled at evenly
spaced checkpoints (Section II; Figures 2-4, Table II).  The batch
implementation needed the full per-message assignment array;
:class:`StreamingLoadSeries` accumulates the same statistics one chunk
at a time, so the engine can route and discard windows while producing
**bit-identical** positions and imbalance values: loads are integer
bincounts accumulated in the same order, and the checkpoint grid is a
pure function of the total message count.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def checkpoint_positions(num_messages: int, num_checkpoints: int = 100) -> np.ndarray:
    """The checkpoint grid: message counts where ``I(t)`` is sampled.

    ``num_checkpoints`` evenly spaced positions ending exactly at the
    stream end, deduplicated for short streams.
    """
    m = int(num_messages)
    if m == 0:
        return np.array([], dtype=np.int64)
    num_checkpoints = max(1, min(int(num_checkpoints), m))
    positions = (
        np.linspace(m / num_checkpoints, m, num_checkpoints).round().astype(np.int64)
    )
    return np.unique(positions)


class StreamingLoadSeries:
    """Accumulate worker loads and checkpoint imbalances chunk by chunk.

    Parameters
    ----------
    num_messages:
        Total stream length (fixes the checkpoint grid up front).
    num_workers:
        Worker count W; workers never hit still count toward the mean.
    num_checkpoints:
        Number of ``I(t)`` samples; the last lands on the stream end.

    Feed every routed chunk, in arrival order, to :meth:`update`; then
    :meth:`finish` returns ``(positions, imbalances)`` exactly as the
    batch ``load_series`` did.
    """

    def __init__(
        self, num_messages: int, num_workers: int, num_checkpoints: int = 100
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_messages = int(num_messages)
        self.num_workers = int(num_workers)
        self.positions = checkpoint_positions(num_messages, num_checkpoints)
        self.loads = np.zeros(num_workers, dtype=np.int64)
        self.imbalances = np.empty(self.positions.size, dtype=np.float64)
        self._consumed = 0
        self._next_checkpoint = 0

    def update(self, workers_chunk: np.ndarray) -> None:
        """Absorb the next chunk of per-message worker assignments."""
        chunk = np.asarray(workers_chunk, dtype=np.int64)
        start = self._consumed
        stop = start + chunk.size
        if stop > self.num_messages:
            raise ValueError(
                f"received {stop} assignments for a {self.num_messages}-message stream"
            )
        # Split the chunk at every checkpoint boundary it crosses so the
        # bincount accumulation order matches the batch implementation.
        prev = start
        while (
            self._next_checkpoint < self.positions.size
            and self.positions[self._next_checkpoint] <= stop
        ):
            pos = int(self.positions[self._next_checkpoint])
            self.loads += np.bincount(
                chunk[prev - start : pos - start], minlength=self.num_workers
            )
            self.imbalances[self._next_checkpoint] = (
                self.loads.max() - self.loads.mean()
            )
            prev = pos
            self._next_checkpoint += 1
        if prev < stop:
            self.loads += np.bincount(
                chunk[prev - start :], minlength=self.num_workers
            )
        self._consumed = stop

    @property
    def consumed(self) -> int:
        """Messages absorbed so far."""
        return self._consumed

    def imbalance(self) -> float:
        """Current ``I(t) = max(L) - avg(L)`` over the absorbed prefix."""
        return float(self.loads.max() - self.loads.mean())

    def finish(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(positions, imbalances)`` series; requires a full stream."""
        if self._consumed != self.num_messages:
            raise ValueError(
                f"stream incomplete: consumed {self._consumed} of "
                f"{self.num_messages} messages"
            )
        return self.positions, self.imbalances
