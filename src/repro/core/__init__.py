"""The unified chunked execution core.

Every replay path of this reproduction -- the single-source frequency
simulations (:mod:`repro.simulation.runner`), the multi-source
interleaved simulations (:mod:`repro.simulation.multisource`), and the
discrete-event DSPE cluster (:mod:`repro.dspe`) -- executes through
this package:

* :mod:`repro.core.chunks` -- stream chunking and key encoding
  (non-integer keys are factorised to int64 ids so hashing is paid
  once per *distinct* key);
* :mod:`repro.core.metrics` -- streaming checkpoint/imbalance
  accumulation, so replays never need the full assignment array;
* :mod:`repro.core.engine` -- the chunked replay engine (and the
  discrete-event loop the DSPE cluster runs on);
* :mod:`repro.core.parallel` -- the deterministic multi-process sweep
  executor (order-preserving :func:`~repro.core.parallel.parallel_map`
  plus the shared-memory materialized stream cache) that experiment
  grids fan out on.

Stateless partitioners vectorise whole chunks; stateful ones run a
precomputed-hash chunk loop whose per-key work is an argmin over d
candidate loads -- accelerated by the optional C kernels in
:mod:`repro._native` when a compiler is available.
"""

from repro.core.chunks import (
    DEFAULT_CHUNK_SIZE,
    ArrayChunkSource,
    ChunkSource,
    EncodedKeys,
    counting_scatter,
    encode_keys,
    factorize,
    hashed_buckets,
    hashed_choices,
    iter_chunks,
    iter_keyed_chunks,
    stream_length,
)
from repro.core.engine import (
    EventLoop,
    ReplayResult,
    replay_interleaved,
    replay_per_source,
    replay_stream,
    route_chunked,
)
from repro.core.metrics import StreamingLoadSeries, checkpoint_positions
from repro.core.parallel import (
    dataset_stream_cached,
    edge_stream_cached,
    materialized_stream,
    parallel_map,
    resolve_jobs,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ArrayChunkSource",
    "ChunkSource",
    "EncodedKeys",
    "counting_scatter",
    "encode_keys",
    "factorize",
    "hashed_buckets",
    "hashed_choices",
    "iter_chunks",
    "iter_keyed_chunks",
    "stream_length",
    "EventLoop",
    "ReplayResult",
    "replay_interleaved",
    "replay_per_source",
    "replay_stream",
    "route_chunked",
    "StreamingLoadSeries",
    "checkpoint_positions",
    "dataset_stream_cached",
    "edge_stream_cached",
    "materialized_stream",
    "parallel_map",
    "resolve_jobs",
]
