"""The unified chunked execution engine (and the discrete-event loop).

One replay implementation for every path in the repo:

* :func:`replay_stream` -- single partitioner, one pass (the old
  ``simulation.runner`` loop);
* :func:`replay_per_source` -- S independent per-source partitioner
  instances merged back into arrival order (the old
  ``simulation.multisource`` generic runner);
* :func:`replay_interleaved` -- S sources sharing the paper's
  local/global/probing load-estimation modes over one precomputed hash
  matrix (the old ``simulation.multisource`` hot loop);
* :class:`EventLoop` -- the deterministic event heap the DSPE cluster
  (:mod:`repro.dspe`) schedules on.

All stream replays drive fixed-size key chunks through
``Partitioner.route_chunk`` and feed a
:class:`~repro.core.metrics.StreamingLoadSeries`, so metrics
bookkeeping exists exactly once.  The sequential inner loops
(Greedy-d argmin, first-sight binding, interleaved multi-source
routing) dispatch to the C kernels of :mod:`repro._native` when a
compiler is available and to the pure-Python implementations below
otherwise; both are decision-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._native import get_kernels
from repro.core.chunks import (
    DEFAULT_CHUNK_SIZE,
    KeyStream,
    StreamLike,
    as_key_array,
    iter_chunks,
    iter_keyed_chunks,
    stream_length,
)
from repro.core.metrics import StreamingLoadSeries

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

__all__ = [
    "EventLoop",
    "ReplayResult",
    "replay_stream",
    "replay_per_source",
    "replay_interleaved",
    "route_chunked",
    "greedy_route_chunk",
    "least_loaded_chunk",
    "bind_route_chunk",
    "InterleavedRouter",
]


# ---------------------------------------------------------------------------
# Chunk kernels: native dispatch + pure-Python fallbacks
# ---------------------------------------------------------------------------

def greedy_route_chunk(choices: np.ndarray, loads: np.ndarray) -> np.ndarray:
    """Route one chunk with the Greedy-d process, updating ``loads``.

    ``choices`` is the chunk's ``(m, d)`` candidate matrix; each message
    goes to its least-loaded candidate (ties to the earliest), and the
    chosen worker's entry in ``loads`` (int64, mutated in place) is
    incremented before the next message decides.
    """
    choices = np.ascontiguousarray(choices, dtype=np.int64)
    m, d = choices.shape
    out = np.empty(m, dtype=np.int64)
    kernels = get_kernels()
    if kernels is not None:
        kernels.greedy_route(choices, loads, out)
        return out
    view = loads.tolist()
    if d == 2:
        col1, col2 = choices[:, 0].tolist(), choices[:, 1].tolist()
        for i in range(m):
            a, b = col1[i], col2[i]
            w = a if view[a] <= view[b] else b
            view[w] += 1
            out[i] = w
    else:
        cols = [choices[:, j].tolist() for j in range(d)]
        for i in range(m):
            best = cols[0][i]
            best_load = view[best]
            for j in range(1, d):
                c = cols[j][i]
                if view[c] < best_load:
                    best, best_load = c, view[c]
            view[best] += 1
            out[i] = best
    loads[:] = view
    return out


def least_loaded_chunk(m: int, loads: np.ndarray) -> np.ndarray:
    """Route ``m`` messages to the globally least-loaded worker each."""
    out = np.empty(int(m), dtype=np.int64)
    kernels = get_kernels()
    if kernels is not None:
        kernels.least_loaded(int(m), loads, out)
        return out
    view = loads.tolist()
    num_workers = len(view)
    for i in range(int(m)):
        best = 0
        best_load = view[0]
        for w in range(1, num_workers):
            if view[w] < best_load:
                best, best_load = w, view[w]
        view[best] += 1
        out[i] = best
    loads[:] = view
    return out


def bind_route_chunk(
    codes: np.ndarray,
    choices: Optional[np.ndarray],
    num_workers: int,
    table: np.ndarray,
    loads: np.ndarray,
) -> np.ndarray:
    """First-sight binding over one chunk (PoTC / On-Greedy inner loop).

    ``codes`` are dense int64 key ids indexing ``table`` (entry < 0 =
    unbound).  A bound key keeps its worker; an unbound one binds to the
    least-loaded of its row in ``choices`` (or of all ``num_workers``
    when ``choices`` is None).  ``loads`` is charged per message.
    ``table`` and ``loads`` are mutated in place.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    m = codes.size
    out = np.empty(m, dtype=np.int64)
    if choices is not None:
        choices = np.ascontiguousarray(choices, dtype=np.int64)
    kernels = get_kernels()
    if kernels is not None:
        kernels.bind_route(codes, choices, int(num_workers), table, loads, out)
        return out
    load_list = loads.tolist()
    table_list = table.tolist()
    code_list = codes.tolist()
    cols = (
        [choices[:, j].tolist() for j in range(choices.shape[1])]
        if choices is not None
        else None
    )
    for i in range(m):
        code = code_list[i]
        worker = table_list[code]
        if worker < 0:
            if cols is not None:
                worker = cols[0][i]
                best_load = load_list[worker]
                for col in cols[1:]:
                    c = col[i]
                    if load_list[c] < best_load:
                        worker, best_load = c, load_list[c]
            else:
                worker = 0
                best_load = load_list[0]
                for w in range(1, int(num_workers)):
                    if load_list[w] < best_load:
                        worker, best_load = w, load_list[w]
            table_list[code] = worker
        load_list[worker] += 1
        out[i] = worker
    loads[:] = load_list
    table[:] = table_list
    return out


class InterleavedRouter:
    """Chunk-resumable multi-source Greedy-d routing with shared modes.

    Holds the cross-chunk state of the paper's estimation modes: the
    true load vector, each source's private view (local/probing), and
    each source's probe clock (probing).  :meth:`route` consumes one
    chunk of precomputed candidates and returns its assignments.
    """

    MODES = ("local", "global", "probing")

    def __init__(
        self,
        num_sources: int,
        num_workers: int,
        mode: str = "local",
        probe_period: float = 0.0,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if mode == "probing" and probe_period <= 0:
            raise ValueError("probing mode requires a positive probe_period")
        self.mode = mode
        self.num_sources = int(num_sources)
        self.num_workers = int(num_workers)
        self.probe_period = float(probe_period)
        self.true_loads = np.zeros(num_workers, dtype=np.int64)
        self.views: Optional[np.ndarray] = (
            None
            if mode == "global"
            else np.zeros((num_sources, num_workers), dtype=np.int64)
        )
        self.next_probe: Optional[np.ndarray] = (
            np.full(num_sources, probe_period, dtype=np.float64)
            if mode == "probing"
            else None
        )

    def route(
        self,
        choices: np.ndarray,
        sources: np.ndarray,
        times: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Route one chunk; ``times`` is required in probing mode."""
        choices = np.ascontiguousarray(choices, dtype=np.int64)
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        m, d = choices.shape
        if m and (
            int(sources.min()) < 0 or int(sources.max()) >= self.num_sources
        ):
            # Out-of-range ids would index outside the views matrix --
            # in the C kernel that is an out-of-bounds write, so reject
            # before dispatch rather than corrupt memory.
            raise ValueError(
                f"source ids must lie in [0, {self.num_sources}), got "
                f"[{int(sources.min())}, {int(sources.max())}]"
            )
        if self.mode == "probing":
            if times is None:
                raise ValueError("probing mode needs per-message times")
            times = np.ascontiguousarray(times, dtype=np.float64)
        else:
            times = None
        out = np.empty(m, dtype=np.int64)
        kernels = get_kernels()
        if kernels is not None:
            kernels.interleaved_route(
                choices,
                sources,
                self.num_workers,
                self.views,
                self.true_loads,
                times,
                self.probe_period,
                self.next_probe,
                out,
            )
            return out
        self._route_python(choices, sources, times, out)
        return out

    def _route_python(
        self,
        choices: np.ndarray,
        sources: np.ndarray,
        times: Optional[np.ndarray],
        out: np.ndarray,
    ) -> None:
        m, d = choices.shape
        true_loads = self.true_loads.tolist()
        if self.views is None:
            view_rows = None
        else:
            view_rows = [row.tolist() for row in self.views]
        probe_clock = (
            self.next_probe.tolist() if self.next_probe is not None else None
        )
        time_list = times.tolist() if times is not None else None
        if time_list is not None:
            # probing mode: route() guarantees both exist alongside times.
            assert probe_clock is not None and view_rows is not None
        src = sources.tolist()
        cols = [choices[:, j].tolist() for j in range(d)]
        for i in range(m):
            s = src[i]
            view = view_rows[s] if view_rows is not None else true_loads
            if time_list is not None and time_list[i] >= probe_clock[s]:
                view = view_rows[s] = true_loads.copy()
                while probe_clock[s] <= time_list[i]:
                    probe_clock[s] += self.probe_period
            best = cols[0][i]
            best_load = view[best]
            for j in range(1, d):
                c = cols[j][i]
                if view[c] < best_load:
                    best, best_load = c, view[c]
            view[best] += 1
            if view is not true_loads:
                true_loads[best] += 1
            out[i] = best
        self.true_loads[:] = true_loads
        if view_rows is not None:
            assert self.views is not None
            for s, row in enumerate(view_rows):
                self.views[s] = row
        if probe_clock is not None:
            assert self.next_probe is not None
            self.next_probe[:] = probe_clock


# ---------------------------------------------------------------------------
# Replay: the one engine behind every stream path
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """Outcome of one chunked replay, scheme-agnostic."""

    num_workers: int
    num_messages: int
    final_loads: np.ndarray
    checkpoint_positions: np.ndarray
    imbalance_series: np.ndarray
    assignments: Optional[np.ndarray] = None


def _as_times(
    timestamps: Optional[Sequence[float]], num_messages: int
) -> Optional[np.ndarray]:
    if timestamps is None:
        return None
    times = np.asarray(timestamps, dtype=np.float64)
    if times.size != num_messages:
        raise ValueError(
            f"timestamps has {times.size} entries for {num_messages} messages"
        )
    return times


def route_chunked(
    keys: StreamLike,
    partitioner: "Partitioner",
    timestamps: Optional[Sequence[float]] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Full per-message assignments of a stream, routed chunk by chunk.

    ``keys`` is a materialised array or a bounded-memory
    :class:`~repro.core.chunks.ChunkSource`; since ``route_chunk`` is
    chunk-size invariant for every registered scheme, both produce the
    same assignments for the same underlying stream.
    """
    m = stream_length(keys)
    times = _as_times(timestamps, m)
    out = np.empty(m, dtype=np.int64)
    for start, stop, key_chunk, time_chunk in iter_keyed_chunks(
        keys, chunk_size, times
    ):
        out[start:stop] = partitioner.route_chunk(key_chunk, time_chunk)
    return out


def replay_stream(
    keys: StreamLike,
    partitioner: "Partitioner",
    *,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    keep_assignments: bool = False,
) -> ReplayResult:
    """Replay a stream through one partitioner, measuring balance.

    Routes fixed-size chunks through ``partitioner.route_chunk`` and
    accumulates the checkpoint imbalance series as it goes; the full
    assignment array is only materialised on ``keep_assignments``.
    ``keys`` may be a materialised array or a
    :class:`~repro.core.chunks.ChunkSource` (one fresh pass; a source
    iterates on its own chunk grid).
    """
    m = stream_length(keys)
    times = _as_times(timestamps, m)
    series = StreamingLoadSeries(m, partitioner.num_workers, num_checkpoints)
    assignments = np.empty(m, dtype=np.int64) if keep_assignments else None
    for start, stop, key_chunk, time_chunk in iter_keyed_chunks(
        keys, chunk_size, times
    ):
        chunk = partitioner.route_chunk(key_chunk, time_chunk)
        series.update(chunk)
        if assignments is not None:
            assignments[start:stop] = chunk
    positions, imbalances = series.finish()
    return ReplayResult(
        num_workers=partitioner.num_workers,
        num_messages=m,
        final_loads=series.loads.copy(),
        checkpoint_positions=positions,
        imbalance_series=imbalances,
        assignments=assignments,
    )


def replay_per_source(
    keys: KeyStream,
    partitioner_factory: Callable[[int], "Partitioner"],
    num_workers: int,
    *,
    num_sources: int = 1,
    source_ids: Optional[np.ndarray] = None,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    keep_assignments: bool = False,
) -> Tuple[ReplayResult, List["Partitioner"]]:
    """Replay with one independent partitioner instance per source.

    ``partitioner_factory(source_index)`` builds each instance.  Because
    per-source state is private (no shared estimators), routing each
    source's sub-stream in one chunked pass and merging back into
    arrival order is decision-equivalent to interleaving.  Returns the
    result and the built instances (for memory accounting).
    """
    keys = as_key_array(keys)
    m = int(keys.size)
    times = _as_times(timestamps, m)
    if source_ids is None:
        source_ids = np.arange(m, dtype=np.int64) % max(1, int(num_sources))
    else:
        source_ids = np.asarray(source_ids, dtype=np.int64)
        if source_ids.size != m:
            raise ValueError("source_ids must have one entry per message")
        if m and (
            int(source_ids.min()) < 0 or int(source_ids.max()) >= num_sources
        ):
            raise ValueError("source_ids references a source >= num_sources")

    workers = np.empty(m, dtype=np.int64)
    partitioners: List["Partitioner"] = []
    for s in range(int(num_sources)):
        partitioner = partitioner_factory(s)
        partitioners.append(partitioner)
        mask = source_ids == s
        workers[mask] = route_chunked(
            keys[mask],
            partitioner,
            times[mask] if times is not None else None,
            chunk_size,
        )

    series = StreamingLoadSeries(m, num_workers, num_checkpoints)
    for start, stop in iter_chunks(m, chunk_size):
        series.update(workers[start:stop])
    positions, imbalances = series.finish()
    return (
        ReplayResult(
            num_workers=int(num_workers),
            num_messages=m,
            final_loads=series.loads.copy(),
            checkpoint_positions=positions,
            imbalance_series=imbalances,
            assignments=workers if keep_assignments else None,
        ),
        partitioners,
    )


def replay_interleaved(
    choice_matrix: np.ndarray,
    source_ids: np.ndarray,
    num_sources: int,
    num_workers: int,
    *,
    mode: str = "local",
    probe_period: float = 0.0,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    keep_assignments: bool = False,
) -> ReplayResult:
    """Replay S interleaved sources sharing a load-estimation mode.

    ``choice_matrix`` is the precomputed ``(m, d)`` candidate matrix;
    decisions interleave in arrival order, so local views, the shared
    true loads, and probe resyncs evolve exactly as in the paper's
    multi-source setting.  In probing mode ``timestamps`` defaults to
    the message index.
    """
    choice_matrix = np.ascontiguousarray(choice_matrix, dtype=np.int64)
    m = int(choice_matrix.shape[0])
    if m and (
        int(choice_matrix.min()) < 0
        or int(choice_matrix.max()) >= num_workers
    ):
        raise ValueError(
            f"choice_matrix entries must lie in [0, {num_workers})"
        )
    source_ids = np.asarray(source_ids, dtype=np.int64)
    if source_ids.size != m:
        raise ValueError("source_ids must have one entry per message")
    times = _as_times(timestamps, m)
    if mode == "probing" and times is None:
        times = np.arange(m, dtype=np.float64)

    router = InterleavedRouter(num_sources, num_workers, mode, probe_period)
    series = StreamingLoadSeries(m, num_workers, num_checkpoints)
    assignments = np.empty(m, dtype=np.int64) if keep_assignments else None
    for start, stop in iter_chunks(m, chunk_size):
        chunk = router.route(
            choice_matrix[start:stop],
            source_ids[start:stop],
            times[start:stop] if times is not None else None,
        )
        series.update(chunk)
        if assignments is not None:
            assignments[start:stop] = chunk
    positions, imbalances = series.finish()
    return ReplayResult(
        num_workers=int(num_workers),
        num_messages=m,
        final_loads=series.loads.copy(),
        checkpoint_positions=positions,
        imbalance_series=imbalances,
        assignments=assignments,
    )


# ---------------------------------------------------------------------------
# The discrete-event loop (the DSPE cluster's clock)
# ---------------------------------------------------------------------------

class EventLoop:
    """A minimal, deterministic discrete-event loop.

    Events are (time, sequence, callback) triples in a binary heap;
    ties in time break by scheduling order, so runs are exactly
    reproducible.  This is the execution core of the DSPE cluster
    simulation; :class:`repro.dspe.engine.Simulator` is its adapter.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self.now})"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Process events up to ``end_time``; returns events processed.

        Events scheduled exactly at ``end_time`` are processed.  The
        clock is left at ``end_time`` (or at the last event if the heap
        drains first).  When ``max_events`` stops the run early --
        eligible events still pending -- the clock stays at the last
        processed event, so a subsequent ``run_until`` resumes exactly
        where this one stopped instead of declaring the skipped events
        to be in the past.  ``max_events=0`` processes nothing.
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        processed = 0
        heap = self._heap
        while heap and heap[0][0] <= end_time:
            if max_events is not None and processed >= max_events:
                self._processed += processed
                return processed
            time, _seq, callback = heapq.heappop(heap)
            self.now = time
            callback()
            processed += 1
        if self.now < end_time:
            self.now = end_time
        self._processed += processed
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the heap completely; returns events processed.

        Unlike :meth:`run_until` there is no target time: the clock is
        left at the last processed event (events may schedule further
        events, all of which run).  The open-loop queueing simulator
        (:mod:`repro.queueing`) uses this to run an arrival schedule to
        completion without inventing an artificial horizon.
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        processed = 0
        heap = self._heap
        while heap:
            if max_events is not None and processed >= max_events:
                break
            time, _seq, callback = heapq.heappop(heap)
            self.now = time
            callback()
            processed += 1
        self._processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def total_events_processed(self) -> int:
        return self._processed
