"""Stream chunking, streaming sources, and key encoding for the core.

Four jobs:

* **Chunking** -- :func:`iter_chunks` slices a stream into fixed-size
  ``[start, stop)`` windows so the engine can route, measure, and
  discard one window at a time instead of materialising per-message
  state for the whole stream.

* **Streaming sources** -- :class:`ChunkSource` generates the key
  stream *chunk-wise* instead of materialising it, so billion-message
  replays run in bounded memory.  :func:`iter_keyed_chunks` lets every
  engine accept a materialised array and a streaming source through
  one loop.

* **Scatter** -- :func:`counting_scatter` groups one routed chunk's
  message positions by destination worker with a *stable* counting
  sort (``np.bincount`` + cumulative offsets, O(n + W)) instead of a
  comparison sort; the grouped order is byte-identical to
  ``np.argsort(dest, kind="stable")`` by construction.

* **Encoding** -- :func:`encode_keys` factorises an arbitrary key
  array into dense ``int64`` codes plus the distinct-key table.  Keyed
  streams are heavily skewed (that is the paper's whole premise), so
  hashing each *distinct* key once and gathering through the code
  array turns per-message Python hashing into a per-unique-key cost:
  :func:`hashed_choices` and :func:`hashed_buckets` exploit this for
  string keys while integer keys keep their fully vectorised path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:
    from repro.hashing.families import HashFamily, HashFunction

#: anything accepted as a key stream.
KeyStream = Union[Sequence[Any], np.ndarray]

#: anything accepted by the replay engines: a materialised stream or a
#: bounded-memory chunk source.
StreamLike = Union[KeyStream, "ChunkSource"]

#: Default routing-window size.  Large enough to amortise per-chunk
#: bookkeeping (hash hoisting, metric updates, kernel calls), small
#: enough that a chunk's hash matrix (chunk x d int64) stays cache- and
#: memory-friendly.
DEFAULT_CHUNK_SIZE = 65_536


def iter_chunks(
    num_messages: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` windows covering ``[0, num_messages)``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, int(num_messages), int(chunk_size)):
        yield start, min(start + int(chunk_size), int(num_messages))


class ChunkSource(ABC):
    """A bounded-memory, re-iterable generator of key chunks.

    A source knows its total stream length (``num_messages``), its
    chunk grid (``chunk_size``) and its randomness (``seed``); the
    keys themselves are produced one chunk at a time by
    :meth:`next_chunk`, which draws from an explicit
    ``numpy.random.Generator`` (REPRO001: randomness is never
    implicit).  Calling :meth:`chunks` starts a *fresh pass* -- a new
    ``default_rng(seed)`` and a rewound position -- so two iterations
    of the same source are byte-identical, which is what lets
    ``python -m repro.runtime --verify`` replay the exact stream the
    sharded runtime consumed without materialising it twice.

    Subclasses implement :meth:`sample_chunk`; everything else
    (position tracking, trimming the final partial chunk, validation)
    lives here.
    """

    def __init__(
        self,
        num_messages: int,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if num_messages < 0:
            raise ValueError(f"num_messages must be >= 0, got {num_messages}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.num_messages = int(num_messages)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self._emitted = 0

    @abstractmethod
    def sample_chunk(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Produce the next ``size`` keys of the stream from ``rng``."""

    def next_chunk(self, rng: np.random.Generator) -> np.ndarray:
        """The next chunk of the current pass (empty array = exhausted)."""
        n = min(self.chunk_size, self.num_messages - self._emitted)
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        chunk = as_key_array(self.sample_chunk(n, rng))
        if int(chunk.size) != n:
            raise ValueError(
                f"{type(self).__name__}.sample_chunk returned {chunk.size} "
                f"keys where {n} were requested"
            )
        self._emitted += n
        return chunk

    def reset(self) -> None:
        """Rewind to the start of the stream (next pass re-emits it all)."""
        self._emitted = 0

    def rng(self) -> np.random.Generator:
        """A fresh generator for one pass over the stream."""
        return np.random.default_rng(self.seed)

    def chunks(self) -> Iterator[np.ndarray]:
        """Iterate one full pass over the stream, chunk by chunk."""
        self.reset()
        rng = self.rng()
        while True:
            chunk = self.next_chunk(rng)
            if chunk.size == 0:
                return
            yield chunk

    def fork(self) -> "ChunkSource":
        """An independent, rewound copy emitting the identical stream.

        Restart recovery replays a dead worker's span from the stream
        start *while the main pass may still be mid-iteration on this
        object*, so the replay must not share ``_emitted`` (or any
        subclass state) with it.  The default deep-copies; subclasses
        wrapping large immutable buffers override to share them
        (:class:`ArrayChunkSource`).
        """
        import copy

        clone = copy.deepcopy(self)
        clone.reset()
        return clone

    def materialize(self) -> np.ndarray:
        """The whole stream as one array (tests / small streams only)."""
        parts = list(self.chunks())
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_messages={self.num_messages}, "
            f"seed={self.seed}, chunk_size={self.chunk_size})"
        )


class ArrayChunkSource(ChunkSource):
    """A :class:`ChunkSource` view over an already-materialised stream.

    Used where chunk-wise generation is impossible (drifting streams
    whose rng consumption order is inherently whole-stream, recorded
    traces) but the streaming engines still want one input type.
    """

    def __init__(
        self,
        keys: KeyStream,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self._keys = as_key_array(keys)
        super().__init__(int(self._keys.size), seed=seed, chunk_size=chunk_size)

    def sample_chunk(self, size: int, rng: np.random.Generator) -> np.ndarray:
        start = self._emitted
        return self._keys[start : start + size]

    def fork(self) -> "ArrayChunkSource":
        """A rewound copy sharing the (immutable-by-contract) key array."""
        return ArrayChunkSource(
            self._keys, seed=self.seed, chunk_size=self.chunk_size
        )


def fork_source(keys: StreamLike) -> StreamLike:
    """An input safe to iterate concurrently with the original pass.

    Arrays are returned as-is (slicing is stateless); a
    :class:`ChunkSource` is forked so the replay's fresh pass cannot
    corrupt the main pass's position.  Both emit byte-identical streams
    -- the property deterministic restart recovery rests on.
    """
    if isinstance(keys, ChunkSource):
        return keys.fork()
    return keys


def stream_length(keys: StreamLike) -> int:
    """Total number of messages in an array or a :class:`ChunkSource`."""
    if isinstance(keys, ChunkSource):
        return keys.num_messages
    return int(as_key_array(keys).size)


def iter_keyed_chunks(
    keys: StreamLike,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    times: Optional[np.ndarray] = None,
) -> Iterator[Tuple[int, int, np.ndarray, Optional[np.ndarray]]]:
    """Yield ``(start, stop, key_chunk, time_chunk)`` for any stream input.

    Materialised arrays are sliced on the ``chunk_size`` grid exactly
    as :func:`iter_chunks` does; a :class:`ChunkSource` is iterated on
    its own grid (one fresh pass).  ``times`` is only valid with an
    array input -- sources carry no per-message timestamps.
    """
    if isinstance(keys, ChunkSource):
        if times is not None:
            raise ValueError(
                "per-message timestamps are not supported with a "
                "ChunkSource input"
            )
        start = 0
        for chunk in keys.chunks():
            stop = start + int(chunk.size)
            yield start, stop, chunk, None
            start = stop
        return
    arr = as_key_array(keys)
    for start, stop in iter_chunks(int(arr.size), chunk_size):
        yield (
            start,
            stop,
            arr[start:stop],
            times[start:stop] if times is not None else None,
        )


def counting_scatter(
    dest: np.ndarray, num_buckets: int, base: int = 0
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable O(n + W) grouping of chunk positions by destination bucket.

    Returns ``(counts, boundaries, grouped)`` where ``counts[w]`` is the
    number of messages routed to bucket ``w``, ``boundaries`` is the
    exclusive prefix sum (``boundaries[w]:boundaries[w+1]`` delimits
    bucket ``w``'s segment), and ``grouped`` holds the message positions
    -- offset by ``base`` -- grouped by bucket *in arrival order*.

    The grouping is a counting sort: one ``np.bincount`` pass for the
    bucket sizes, a cumulative-offset pass for the boundaries, and one
    linear scatter pass (the C kernel when available).  Because the
    scatter walks positions in arrival order and each bucket's cursor
    only moves forward, the result is stable -- byte-identical to
    ``np.argsort(dest, kind="stable") + base``, which is also the
    no-compiler fallback (numpy's stable argsort of int64 is a radix
    sort, so the fallback stays O(n) too).
    """
    from repro._native import get_kernels

    dest = np.ascontiguousarray(dest, dtype=np.int64)
    n = int(dest.size)
    counts = np.bincount(dest, minlength=num_buckets)
    if counts.size > num_buckets:
        raise ValueError(
            f"destination ids must lie in [0, {num_buckets}), got "
            f"{int(dest.max())}"
        )
    boundaries = np.empty(num_buckets + 1, dtype=np.int64)
    boundaries[0] = 0
    np.cumsum(counts, out=boundaries[1:])
    kernels = get_kernels()
    if kernels is not None:
        grouped = np.empty(n, dtype=np.int64)
        cursors = boundaries[:-1].copy()
        kernels.counting_scatter(dest, int(base), cursors, grouped)
        return counts, boundaries, grouped
    order = np.argsort(dest, kind="stable")
    if base:
        order += base
    return counts, boundaries, order


@dataclass(frozen=True)
class EncodedKeys:
    """A key stream factorised to dense int64 codes.

    ``codes[i]`` is the id of message i's key; ``unique`` is the
    distinct-key table such that ``unique[codes[i]]`` is the original
    key, or ``None`` when the stream was already integer-typed (then
    the codes *are* the original keys, not renumbered -- hashes must
    see the true key values).
    """

    codes: np.ndarray
    unique: Optional[np.ndarray]

    @property
    def num_messages(self) -> int:
        return int(self.codes.size)


def as_key_array(keys: KeyStream) -> np.ndarray:
    """Normalise any key sequence to a numpy array (no copy if possible)."""
    arr = np.asarray(keys)
    if arr.ndim != 1 and arr.size > 0:
        raise ValueError(f"key stream must be one-dimensional, got shape {arr.shape}")
    return arr


def factorize(keys: KeyStream) -> Tuple[np.ndarray, np.ndarray]:
    """``(codes, unique)`` such that ``unique[codes]`` reproduces ``keys``.

    Unlike :func:`encode_keys` this always renumbers -- integer keys
    included -- so ``codes`` densely index ``unique``.  Used by
    routing-table schemes to turn per-message dict lookups into one
    table fill per distinct key.
    """
    arr = as_key_array(keys)
    unique, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64, copy=False), unique


def encode_keys(keys: KeyStream) -> EncodedKeys:
    """Factorise ``keys`` into int64 codes (identity for integer keys)."""
    arr = as_key_array(keys)
    if np.issubdtype(arr.dtype, np.integer):
        return EncodedKeys(codes=arr.astype(np.int64, copy=False), unique=None)
    unique, inverse = np.unique(arr, return_inverse=True)
    return EncodedKeys(codes=inverse.astype(np.int64, copy=False), unique=unique)


def hashed_choices(
    family: "HashFamily", keys: KeyStream, num_workers: int
) -> np.ndarray:
    """The ``(m, d)`` candidate-worker matrix of a key stream.

    Integer keys use the family's vectorised path; other keys are
    hashed once per distinct key and gathered back through the codes.
    Candidate values are identical to calling ``family.choices`` per
    message (duplicates preserved).
    """
    encoded = encode_keys(keys)
    if encoded.unique is None:
        return family.choice_matrix(encoded.codes, num_workers)
    per_unique = np.empty((encoded.unique.size, len(family)), dtype=np.int64)
    for u, key in enumerate(encoded.unique):
        for j, f in enumerate(family.functions):
            per_unique[u, j] = f(key) % num_workers
    return per_unique[encoded.codes]


def hashed_buckets(
    hash_function: "HashFunction", keys: KeyStream, num_buckets: int
) -> np.ndarray:
    """Vectorised ``hash(key) % num_buckets`` for arbitrary key arrays."""
    encoded = encode_keys(keys)
    if encoded.unique is None:
        return hash_function.bucket_array(encoded.codes, num_buckets)
    per_unique = np.fromiter(
        (hash_function(key) % num_buckets for key in encoded.unique),
        dtype=np.int64,
        count=encoded.unique.size,
    )
    return per_unique[encoded.codes]
