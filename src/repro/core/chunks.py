"""Stream chunking and key encoding for the chunked execution core.

Two jobs:

* **Chunking** -- :func:`iter_chunks` slices a stream into fixed-size
  ``[start, stop)`` windows so the engine can route, measure, and
  discard one window at a time instead of materialising per-message
  state for the whole stream.

* **Encoding** -- :func:`encode_keys` factorises an arbitrary key
  array into dense ``int64`` codes plus the distinct-key table.  Keyed
  streams are heavily skewed (that is the paper's whole premise), so
  hashing each *distinct* key once and gathering through the code
  array turns per-message Python hashing into a per-unique-key cost:
  :func:`hashed_choices` and :func:`hashed_buckets` exploit this for
  string keys while integer keys keep their fully vectorised path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:
    from repro.hashing.families import HashFamily, HashFunction

#: anything accepted as a key stream.
KeyStream = Union[Sequence[Any], np.ndarray]

#: Default routing-window size.  Large enough to amortise per-chunk
#: bookkeeping (hash hoisting, metric updates, kernel calls), small
#: enough that a chunk's hash matrix (chunk x d int64) stays cache- and
#: memory-friendly.
DEFAULT_CHUNK_SIZE = 65_536


def iter_chunks(
    num_messages: int, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` windows covering ``[0, num_messages)``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, int(num_messages), int(chunk_size)):
        yield start, min(start + int(chunk_size), int(num_messages))


@dataclass(frozen=True)
class EncodedKeys:
    """A key stream factorised to dense int64 codes.

    ``codes[i]`` is the id of message i's key; ``unique`` is the
    distinct-key table such that ``unique[codes[i]]`` is the original
    key, or ``None`` when the stream was already integer-typed (then
    the codes *are* the original keys, not renumbered -- hashes must
    see the true key values).
    """

    codes: np.ndarray
    unique: Optional[np.ndarray]

    @property
    def num_messages(self) -> int:
        return int(self.codes.size)


def as_key_array(keys: KeyStream) -> np.ndarray:
    """Normalise any key sequence to a numpy array (no copy if possible)."""
    arr = np.asarray(keys)
    if arr.ndim != 1 and arr.size > 0:
        raise ValueError(f"key stream must be one-dimensional, got shape {arr.shape}")
    return arr


def factorize(keys: KeyStream) -> Tuple[np.ndarray, np.ndarray]:
    """``(codes, unique)`` such that ``unique[codes]`` reproduces ``keys``.

    Unlike :func:`encode_keys` this always renumbers -- integer keys
    included -- so ``codes`` densely index ``unique``.  Used by
    routing-table schemes to turn per-message dict lookups into one
    table fill per distinct key.
    """
    arr = as_key_array(keys)
    unique, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64, copy=False), unique


def encode_keys(keys: KeyStream) -> EncodedKeys:
    """Factorise ``keys`` into int64 codes (identity for integer keys)."""
    arr = as_key_array(keys)
    if np.issubdtype(arr.dtype, np.integer):
        return EncodedKeys(codes=arr.astype(np.int64, copy=False), unique=None)
    unique, inverse = np.unique(arr, return_inverse=True)
    return EncodedKeys(codes=inverse.astype(np.int64, copy=False), unique=unique)


def hashed_choices(
    family: "HashFamily", keys: KeyStream, num_workers: int
) -> np.ndarray:
    """The ``(m, d)`` candidate-worker matrix of a key stream.

    Integer keys use the family's vectorised path; other keys are
    hashed once per distinct key and gathered back through the codes.
    Candidate values are identical to calling ``family.choices`` per
    message (duplicates preserved).
    """
    encoded = encode_keys(keys)
    if encoded.unique is None:
        return family.choice_matrix(encoded.codes, num_workers)
    per_unique = np.empty((encoded.unique.size, len(family)), dtype=np.int64)
    for u, key in enumerate(encoded.unique):
        for j, f in enumerate(family.functions):
            per_unique[u, j] = f(key) % num_workers
    return per_unique[encoded.codes]


def hashed_buckets(
    hash_function: "HashFunction", keys: KeyStream, num_buckets: int
) -> np.ndarray:
    """Vectorised ``hash(key) % num_buckets`` for arbitrary key arrays."""
    encoded = encode_keys(keys)
    if encoded.unique is None:
        return hash_function.bucket_array(encoded.codes, num_buckets)
    per_unique = np.fromiter(
        (hash_function(key) % num_buckets for key in encoded.unique),
        dtype=np.int64,
        count=encoded.unique.size,
    )
    return per_unique[encoded.codes]
