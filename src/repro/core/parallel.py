"""Deterministic multi-process sweep execution.

The paper's experiments are grids -- schemes x worker counts x skews x
seeds -- whose cells are *independent*: each builds its own partitioner
state from a fixed seed and routes a deterministic stream.  This module
executes such grids across processes without changing a single routed
decision:

* :func:`parallel_map` -- an order-preserving map over picklable cell
  descriptors.  Cells are sharded over a ``ProcessPoolExecutor`` and
  the results are merged back in input order, so the merged result list
  is exactly what a serial ``[fn(c) for c in cells]`` produces.
  ``REPRO_PARALLEL=0`` forces the serial path (the two are equivalent
  by construction; the env knob exists so CI can prove it).

* **Materialized stream cache** -- grid cells over one dataset replay
  the *same* generated key stream.  :func:`materialized_stream` keeps
  one copy per ``(kind, params)`` key per process; :func:`parallel_map`
  optionally publishes the parent's copies into POSIX shared memory
  (``multiprocessing.shared_memory``) so worker processes map the bytes
  read-only instead of re-generating or re-pickling them.

Job-count resolution (:func:`resolve_jobs`): ``REPRO_PARALLEL=0`` wins
over everything; an explicit ``jobs`` argument (the ``--jobs`` CLI
flag) comes next; then a numeric ``REPRO_PARALLEL``; the default is
``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StreamKey",
    "resolve_jobs",
    "effective_jobs",
    "pool_usable",
    "parallel_map",
    "materialized_stream",
    "dataset_stream_cached",
    "edge_stream_cached",
    "clear_stream_cache",
]

#: A stream-cache key: ``(kind, *params)``, hashable and picklable.
StreamKey = Tuple[Any, ...]

#: shared-memory block descriptor: (shm_name, dtype_str, shape).
_BlockDescriptor = Tuple[str, str, Tuple[int, ...]]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker-process count for a sweep.

    ``REPRO_PARALLEL=0`` forces 1 (serial) regardless of ``jobs``; an
    explicit ``jobs`` beats a numeric ``REPRO_PARALLEL``; the default
    is ``os.cpu_count()``.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    env = os.environ.get("REPRO_PARALLEL", "").strip()
    if env == "0":
        return 1
    if jobs is not None:
        return int(jobs)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


#: Whether this process can actually spawn pool workers; None = unknown.
#: parallel_map records what it observes; pool_usable() probes on demand.
_POOL_USABLE: Optional[bool] = None


def pool_usable() -> bool:
    """Whether a worker pool can actually spawn in this environment.

    Restricted sandboxes can block process creation; :func:`parallel_map`
    then silently falls back to serial.  Probed once per process (and
    kept current by every ``parallel_map`` call) so callers recording
    job counts (the ``_sweep`` bench entry) report the width sweeps
    really ran at, not the width they asked for.
    """
    global _POOL_USABLE
    if _POOL_USABLE is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as executor:
                executor.submit(_pool_probe).result()
            _POOL_USABLE = True
        except (OSError, BrokenProcessPool):
            _POOL_USABLE = False
    return _POOL_USABLE


def effective_jobs(jobs: Optional[int] = None) -> int:
    """:func:`resolve_jobs`, corrected for pool availability."""
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return resolved
    return resolved if pool_usable() else 1


# ---------------------------------------------------------------------------
# Materialized stream cache
# ---------------------------------------------------------------------------

#: Process-local cache: StreamKey -> tuple of numpy arrays.
_CACHE: Dict[StreamKey, Tuple[np.ndarray, ...]] = {}

#: Worker-side descriptors of parent-published shared blocks:
#: StreamKey -> list of (shm_name, dtype_str, shape).
_SHARED_DESCRIPTORS: Dict[StreamKey, List[_BlockDescriptor]] = {}

#: Attached SharedMemory handles, kept alive for the worker's lifetime
#: (the numpy views borrow their buffers).
_ATTACHED: List[Any] = []


def _generate(key: StreamKey) -> Tuple[np.ndarray, ...]:
    """Materialize the arrays of one stream key (imports kept lazy)."""
    kind = key[0]
    if kind == "dataset":
        from repro.streams.datasets import dataset_stream

        _, symbol, num_messages, seed = key
        return (dataset_stream(symbol, int(num_messages), seed=int(seed)),)
    if kind == "edges":
        from repro.streams.graphs import EdgeStream

        _, num_edges, seed = key
        stream = EdgeStream.generate(int(num_edges), seed=int(seed))
        return (stream.source_keys, stream.worker_keys)
    raise ValueError(f"unknown stream kind {kind!r} in cache key {key!r}")


def _attach(key: StreamKey) -> Optional[Tuple[np.ndarray, ...]]:
    """Map a parent-published stream read-only, or None if not shared."""
    descriptors = _SHARED_DESCRIPTORS.get(key)
    if not descriptors:
        return None
    from multiprocessing import shared_memory

    arrays: List[np.ndarray] = []
    for name, dtype_str, shape in descriptors:
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED.append(shm)
        view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        view.flags.writeable = False
        arrays.append(view)
    return tuple(arrays)


def materialized_stream(key: StreamKey) -> Tuple[np.ndarray, ...]:
    """The arrays of one stream key: cached, attached, or generated.

    In a worker process a key the parent published resolves to
    read-only views over shared memory; everywhere else it is generated
    once per process.  Either way the *values* are identical (streams
    are pure functions of their key).
    """
    arrays = _CACHE.get(key)
    if arrays is None:
        arrays = _attach(key)
        if arrays is None:
            arrays = _generate(key)
        _CACHE[key] = arrays
    return arrays


def dataset_stream_cached(symbol: str, num_messages: int, seed: int) -> np.ndarray:
    """Cached :func:`repro.streams.datasets.dataset_stream`."""
    key = ("dataset", symbol.upper(), int(num_messages), int(seed))
    return materialized_stream(key)[0]


def edge_stream_cached(num_edges: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``EdgeStream.generate`` as ``(source_keys, worker_keys)``."""
    source_keys, worker_keys = materialized_stream(("edges", int(num_edges), int(seed)))
    return source_keys, worker_keys


def clear_stream_cache() -> None:
    """Drop all cached/attached streams (tests and memory pressure)."""
    _CACHE.clear()
    _SHARED_DESCRIPTORS.clear()
    for shm in _ATTACHED:
        try:
            shm.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    _ATTACHED.clear()


# ---------------------------------------------------------------------------
# Shared-memory publication (parent side)
# ---------------------------------------------------------------------------


class _Publication:
    """Parent-held shared-memory copies of materialized streams."""

    def __init__(self, keys: Iterable[StreamKey]) -> None:
        self.blocks: List[Any] = []
        self.descriptors: Dict[StreamKey, List[_BlockDescriptor]] = {}
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - always present on CPython
            return
        try:
            self._publish(keys, shared_memory)
        except BaseException:
            # A bad stream key must not leak the blocks already created
            # for earlier keys.
            self.release()
            raise

    def _publish(self, keys: Iterable[StreamKey], shared_memory: Any) -> None:
        for key in dict.fromkeys(keys):
            arrays = materialized_stream(key)
            entry: List[_BlockDescriptor] = []
            try:
                for arr in arrays:
                    arr = np.ascontiguousarray(arr)
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(1, arr.nbytes)
                    )
                    self.blocks.append(shm)
                    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                    view[:] = arr
                    entry.append((shm.name, arr.dtype.str, tuple(arr.shape)))
            except OSError:
                # No usable /dev/shm (sandboxes): workers fall back to
                # generating streams themselves -- identical values.
                continue
            self.descriptors[key] = entry

    def release(self) -> None:
        for shm in self.blocks:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self.blocks.clear()


def _pool_probe() -> None:
    """No-op task proving the pool can actually spawn workers."""


def _worker_init(descriptors: Dict[StreamKey, List[_BlockDescriptor]]) -> None:
    """Executor initializer: record where the parent's streams live."""
    _SHARED_DESCRIPTORS.update(descriptors)


# ---------------------------------------------------------------------------
# The order-preserving parallel map
# ---------------------------------------------------------------------------


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    streams: Iterable[StreamKey] = (),
) -> List[Any]:
    """``[fn(item) for item in items]``, sharded over processes.

    ``fn`` and every item must be picklable (module-level function,
    plain-data descriptors).  Results come back in input order, so the
    output is byte-identical to the serial evaluation -- cells must be
    independent of each other, which every sweep cell in
    ``repro.experiments`` is.

    ``streams`` lists stream-cache keys the cells will read; they are
    materialized once in the parent and published to workers via shared
    memory (workers regenerate them only if shared memory is not
    available).  With one job (or one item) everything runs in-process
    and ``streams`` only warms the local cache.
    """
    items = list(items)
    effective = min(resolve_jobs(jobs), len(items)) if items else 1
    if effective <= 1:
        for key in streams:
            materialized_stream(key)
        return [fn(item) for item in items]

    # Forked workers inherit the parent's stream cache copy-on-write,
    # so warming it is all the sharing needed; spawn/forkserver workers
    # start cold and get read-only shared-memory views instead.
    if multiprocessing.get_start_method() == "fork":
        for key in streams:
            materialized_stream(key)
        publication = _Publication(())
    else:
        publication = _Publication(streams)
    try:
        # Worker processes spawn lazily at first submit, so probe the
        # pool with a no-op before committing to it: where process
        # creation is unavailable (restricted sandbox), the serial path
        # computes the exact same list.  Once the probe has proven the
        # pool works, errors raised by ``fn`` itself propagate.
        global _POOL_USABLE
        try:
            executor = ProcessPoolExecutor(
                max_workers=effective,
                initializer=_worker_init,
                initargs=(publication.descriptors,),
            )
        except (OSError, BrokenProcessPool):
            _POOL_USABLE = False
            return [fn(item) for item in items]
        with executor:
            try:
                executor.submit(_pool_probe).result()
            except (OSError, BrokenProcessPool):
                _POOL_USABLE = False
                return [fn(item) for item in items]
            _POOL_USABLE = True
            chunksize = max(1, len(items) // (4 * effective))
            return list(executor.map(fn, items, chunksize=chunksize))
    finally:
        publication.release()
