"""Streaming parallel decision tree -- SPDT (Section VI-B).

Ben-Haim & Tom-Tov's algorithm: workers build approximate histograms,
one per (leaf, feature, class) triplet, over their share of the stream;
an aggregator periodically merges the per-worker partial histograms,
evaluates candidate split points, and grows the tree.

Parallelism modes (the paper's comparison):

* **SG** -- instances are shuffled to workers; every worker may hold a
  histogram for every triplet, so the system keeps up to ``W*D*C*L``
  histograms and the aggregator merges W partials per triplet;
* **PKG** -- each *feature* is a key routed to its two hash candidates,
  so a triplet's partials live on at most two workers: ``2*D*C*L``
  histograms and two-way merges, independent of W.
* **KG** -- one worker per feature: minimal memory, but skewed feature
  popularity (sparse data) imbalances the load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.partitioning.base import Partitioner
from repro.partitioning.shuffle import ShuffleGrouping
from repro.sketches.histogram import StreamingHistogram


@dataclass
class TreeNode:
    """One node of the decision tree."""

    node_id: int
    depth: int
    #: class -> sample count since this node became a leaf
    class_counts: Dict = field(default_factory=dict)
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def total(self) -> int:
        return sum(self.class_counts.values())

    def majority_class(self):
        if not self.class_counts:
            return None
        return max(self.class_counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]


def entropy(class_counts: Dict) -> float:
    """Shannon entropy (nats) of a class-count mapping."""
    total = sum(class_counts.values())
    if total <= 0:
        return 0.0
    h = 0.0
    for c in class_counts.values():
        if c > 0:
            p = c / total
            h -= p * math.log(p)
    return h


@dataclass
class SPDTStats:
    """Cost accounting for the SPDT comparison of Section VI-B."""

    instances: int = 0
    feature_messages: int = 0
    #: histogram merge operations performed during split decisions
    merge_operations: int = 0
    splits: int = 0
    split_attempts: int = 0


class StreamingParallelDecisionTree:
    """SPDT over W workers with a pluggable feature partitioner.

    Parameters
    ----------
    partitioner:
        Routes feature keys (ints ``0..num_features-1``) to workers;
        a :class:`ShuffleGrouping` instance selects instance-shuffling
        (horizontal) mode instead.
    num_features / num_classes:
        Data dimensions D and C.
    max_bins:
        Histogram budget per (leaf, feature, class) triplet.
    split_candidates:
        Number of candidate thresholds evaluated per feature
        (the ``uniform`` procedure's B-tilde).
    split_period:
        Attempt splits every this many instances.
    min_samples_split / max_depth / min_gain:
        Growth controls.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        num_features: int,
        num_classes: int,
        max_bins: int = 32,
        split_candidates: int = 10,
        split_period: int = 500,
        min_samples_split: int = 100,
        max_depth: int = 6,
        min_gain: float = 1e-3,
    ):
        if num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {num_features}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.partitioner = partitioner
        self.num_workers = partitioner.num_workers
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.max_bins = int(max_bins)
        self.split_candidates = int(split_candidates)
        self.split_period = int(split_period)
        self.min_samples_split = int(min_samples_split)
        self.max_depth = int(max_depth)
        self.min_gain = float(min_gain)

        self._horizontal = isinstance(partitioner, ShuffleGrouping)
        self.root = TreeNode(node_id=0, depth=0)
        self._next_node_id = 1
        self._leaves: Dict[int, TreeNode] = {0: self.root}
        #: per-worker histograms: (leaf_id, feature, class) -> histogram
        self.worker_histograms: List[Dict] = [
            dict() for _ in range(self.num_workers)
        ]
        self.stats = SPDTStats()
        self._since_split = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def _find_leaf(self, x: Sequence[float]) -> TreeNode:
        node = self.root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def _update_histogram(self, worker: int, key: Tuple, value: float) -> None:
        hists = self.worker_histograms[worker]
        hist = hists.get(key)
        if hist is None:
            hist = hists[key] = StreamingHistogram(self.max_bins)
        hist.update(value)

    def ingest(self, x: Sequence[float], y) -> None:
        """Absorb one labelled instance into the distributed model."""
        leaf = self._find_leaf(x)
        leaf.class_counts[y] = leaf.class_counts.get(y, 0) + 1
        self.stats.instances += 1

        if self._horizontal:
            # The whole instance goes to one worker (round robin).
            worker = self.partitioner.route(None)
            for f in range(self.num_features):
                self._update_histogram(worker, (leaf.node_id, f, y), x[f])
                self.stats.feature_messages += 1
        else:
            # One message per feature, keyed by the feature id.
            for f in range(self.num_features):
                worker = self.partitioner.route(f)
                self._update_histogram(worker, (leaf.node_id, f, y), x[f])
                self.stats.feature_messages += 1

        self._since_split += 1
        if self._since_split >= self.split_period:
            self._since_split = 0
            self.try_splits()

    def fit_stream(self, X: np.ndarray, y: Sequence) -> None:
        """Ingest a whole batch as a stream, then attempt final splits."""
        for xi, yi in zip(np.asarray(X), y):
            self.ingest(xi, yi)
        self.try_splits()

    # ------------------------------------------------------------------
    # growing
    # ------------------------------------------------------------------

    def _merged_histograms(
        self, leaf_id: int, feature: int
    ) -> Dict[object, StreamingHistogram]:
        """Merge per-worker partials into one histogram per class."""
        per_class: Dict[object, StreamingHistogram] = {}
        for hists in self.worker_histograms:
            for (lid, f, cls), hist in hists.items():
                if lid != leaf_id or f != feature:
                    continue
                if cls in per_class:
                    per_class[cls] = per_class[cls].merge(hist)
                    self.stats.merge_operations += 1
                else:
                    per_class[cls] = hist
        return per_class

    def _best_split(self, leaf: TreeNode) -> Optional[Tuple[int, float, float]]:
        """(feature, threshold, gain) maximising information gain."""
        parent_entropy = entropy(leaf.class_counts)
        total = leaf.total
        best: Optional[Tuple[int, float, float]] = None
        for f in range(self.num_features):
            per_class = self._merged_histograms(leaf.node_id, f)
            if not per_class:
                continue
            overall: Optional[StreamingHistogram] = None
            for hist in per_class.values():
                overall = hist if overall is None else overall.merge(hist)
            for t in overall.uniform(self.split_candidates):
                left_counts = {
                    cls: hist.sum(t) for cls, hist in per_class.items()
                }
                left_total = sum(left_counts.values())
                right_total = total - left_total
                if left_total < 1 or right_total < 1:
                    continue
                right_counts = {
                    cls: leaf.class_counts.get(cls, 0) - cnt
                    for cls, cnt in left_counts.items()
                }
                gain = parent_entropy - (
                    left_total / total * entropy(left_counts)
                    + right_total / total * entropy(right_counts)
                )
                if gain > self.min_gain and (best is None or gain > best[2]):
                    best = (f, float(t), float(gain))
        return best

    def try_splits(self) -> int:
        """Attempt to split every eligible leaf; returns splits made."""
        made = 0
        for leaf_id in list(self._leaves):
            leaf = self._leaves[leaf_id]
            if leaf.total < self.min_samples_split:
                continue
            if leaf.depth >= self.max_depth:
                continue
            if len(leaf.class_counts) < 2:
                continue
            self.stats.split_attempts += 1
            best = self._best_split(leaf)
            if best is None:
                continue
            feature, threshold, _gain = best
            self._split_leaf(leaf, feature, threshold)
            made += 1
        return made

    def _split_leaf(self, leaf: TreeNode, feature: int, threshold: float) -> None:
        leaf.feature = feature
        leaf.threshold = threshold
        leaf.left = TreeNode(node_id=self._next_node_id, depth=leaf.depth + 1)
        leaf.right = TreeNode(node_id=self._next_node_id + 1, depth=leaf.depth + 1)
        # Children inherit the majority information via fresh counts;
        # SPDT restarts statistics below a split.
        self._next_node_id += 2
        del self._leaves[leaf.node_id]
        self._leaves[leaf.left.node_id] = leaf.left
        self._leaves[leaf.right.node_id] = leaf.right
        # Drop the split leaf's histograms from every worker.
        for hists in self.worker_histograms:
            stale = [k for k in hists if k[0] == leaf.node_id]
            for k in stale:
                del hists[k]
        self.stats.splits += 1

    # ------------------------------------------------------------------
    # inference and accounting
    # ------------------------------------------------------------------

    def predict(self, x: Sequence[float]):
        """Predicted class for one instance."""
        node = self._find_leaf(x)
        label = node.majority_class()
        if label is None:
            # Fresh leaf after a split: fall back to its parent path by
            # using the global majority.
            label = self._global_majority()
        return label

    def predict_batch(self, X: np.ndarray) -> list:
        return [self.predict(x) for x in np.asarray(X)]

    def _global_majority(self):
        counts: Dict = {}
        for leaf in self._leaves.values():
            for cls, c in leaf.class_counts.items():
                counts[cls] = counts.get(cls, 0) + c
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]

    def accuracy(self, X: np.ndarray, y: Sequence) -> float:
        predictions = self.predict_batch(X)
        y = list(y)
        if not y:
            return 0.0
        return sum(p == t for p, t in zip(predictions, y)) / len(y)

    def histogram_count(self) -> int:
        """Live histograms across all workers.

        The Section VI-B memory comparison: up to ``W*D*C*L`` under
        shuffle grouping but at most ``2*D*C*L`` under PKG.
        """
        return sum(len(h) for h in self.worker_histograms)

    def histogram_bound(self) -> int:
        """The scheme's worst-case histogram count for the current tree."""
        L = len(self._leaves)
        replicas = self.num_workers if self._horizontal else min(
            2, self.num_workers
        )
        return replicas * self.num_features * self.num_classes * L

    def worker_loads(self) -> List[int]:
        """Feature messages absorbed per worker (for balance checks)."""
        loads = [0] * self.num_workers
        for w, hists in enumerate(self.worker_histograms):
            loads[w] = int(sum(h.total for h in hists.values()))
        return loads

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def depth(self) -> int:
        return max((leaf.depth for leaf in self._leaves.values()), default=0)
