"""Distributed heavy hitters with SPACESAVING (Section VI-C).

Each worker runs an independent SPACESAVING summary over its sub-stream;
queries merge summaries.  The error structure follows the paper:

* **KG** -- a key lives in exactly one summary: error of a single
  summary (sequential quality) but poor load balance;
* **SG** -- a key may appear in all W summaries: merged error is the
  sum of W per-summary errors, growing with parallelism;
* **PKG** -- a key lives in exactly its two candidate summaries: the
  merged error is the sum of **two** error terms *regardless of W*,
  while the load stays balanced -- "both benefits".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.partitioning.base import Partitioner
from repro.partitioning.shuffle import ShuffleGrouping
from repro.sketches.spacesaving import SpaceSaving


class DistributedHeavyHitters:
    """Parallel top-k / heavy-hitter tracking over W workers.

    Parameters
    ----------
    partitioner:
        Routing scheme for item keys.
    capacity:
        SPACESAVING capacity of each worker's summary.
    """

    def __init__(self, partitioner: Partitioner, capacity: int = 256):
        self.partitioner = partitioner
        self.num_workers = partitioner.num_workers
        self.capacity = int(capacity)
        self.summaries: List[SpaceSaving] = [
            SpaceSaving(capacity) for _ in range(self.num_workers)
        ]
        self.worker_loads = [0] * self.num_workers
        self._broadcast = isinstance(partitioner, ShuffleGrouping)

    def process(self, item, now: float = 0.0) -> int:
        """Route one item to its worker's summary."""
        worker = self.partitioner.route(item, now)
        self.summaries[worker].offer(item)
        self.worker_loads[worker] += 1
        return worker

    def process_stream(self, items: Iterable) -> None:
        for i, item in enumerate(items):
            self.process(item, float(i))

    def _holders(self, item) -> Tuple[int, ...]:
        """Workers whose summaries may track ``item``."""
        if self._broadcast:
            return tuple(range(self.num_workers))
        return tuple(set(self.partitioner.candidates(item)))

    def estimate(self, item) -> int:
        """Merged frequency estimate of ``item``."""
        return sum(self.summaries[w].estimate(item) for w in self._holders(item))

    def error_bound(self, item) -> int:
        """Maximum error of :meth:`estimate`.

        The sum of the contributing summaries' errors: one term for KG,
        two for PKG, W for SG (the bound of Section VI-C).
        """
        return sum(self.summaries[w].error(item) for w in self._holders(item))

    def summaries_probed(self, item) -> int:
        """How many summaries a query for ``item`` must consult."""
        return len(self._holders(item))

    def merged_summary(self) -> SpaceSaving:
        """Merge all worker summaries (what an aggregator would hold)."""
        merged = self.summaries[0]
        for s in self.summaries[1:]:
            merged = merged.merge(s)
        return merged

    def top_k(self, k: int) -> List[Tuple[object, int]]:
        """Global top-k candidates with merged estimates.

        Candidates are drawn from every summary, but each candidate's
        estimate only consults its *holder* summaries, so PKG pays two
        probes per candidate.
        """
        candidates = set()
        for s in self.summaries:
            candidates.update(item for item, _ in s.top_k(self.capacity))
        ranked = sorted(
            ((item, self.estimate(item)) for item in candidates),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        return ranked[:k]

    def load_imbalance(self) -> float:
        """I = max - avg of per-worker item counts."""
        loads = self.worker_loads
        return max(loads) - sum(loads) / len(loads)
