"""Streaming top-k word count (Sections II-A and V, Q4).

The topology: sources emit words; W counter PEIs accumulate per-word
(partial) counts under some partitioning scheme; every aggregation
period T the counters flush their partials to a single aggregator that
holds the authoritative totals and answers top-k queries.

The scheme determines the costs (Section III-A's example):

* **KG** -- each word counted on exactly one worker: memory O(K), one
  flush entry per word, but load imbalance under skew;
* **SG** -- every worker may count every word: memory O(W*K) and W
  partials to aggregate per word;
* **PKG** -- each word on at most two workers: memory <= 2K and at
  most two partials per word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.partitioning.base import Partitioner


def exact_top_k(words: Iterable, k: int) -> List[Tuple[object, int]]:
    """Reference exact top-k by full counting (for tests/validation)."""
    counts: Dict = {}
    for w in words:
        counts[w] = counts.get(w, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:k]


@dataclass
class WordCountStats:
    """Cost accounting for one run."""

    messages: int = 0
    #: flush messages sent to the aggregator (the aggregation overhead)
    aggregation_messages: int = 0
    #: peak number of live partial counters across all workers
    peak_worker_counters: int = 0
    #: total partial-counter slots summed over flush epochs (for averages)
    counter_slot_sum: int = 0
    flushes: int = 0
    worker_loads: List[int] = field(default_factory=list)

    @property
    def average_worker_counters(self) -> float:
        if self.flushes == 0:
            return float(self.peak_worker_counters)
        return self.counter_slot_sum / self.flushes


class DistributedWordCount:
    """Word count over W workers under a pluggable partitioner.

    Parameters
    ----------
    partitioner:
        Routing scheme for the word stream (KG / SG / PKG instance).
    aggregation_period:
        Flush partial counts to the aggregator every this many
        messages; 0 disables periodic flushing (a single final flush
        happens at :meth:`top_k` time).
    """

    def __init__(self, partitioner: Partitioner, aggregation_period: int = 0):
        if aggregation_period < 0:
            raise ValueError("aggregation_period must be >= 0")
        self.partitioner = partitioner
        self.num_workers = partitioner.num_workers
        self.aggregation_period = int(aggregation_period)
        self.worker_counts: List[Dict] = [dict() for _ in range(self.num_workers)]
        self.aggregator: Dict = {}
        self.stats = WordCountStats(worker_loads=[0] * self.num_workers)
        self._since_flush = 0
        self._live_counters = 0

    def process(self, word, now: float = 0.0) -> int:
        """Route and count one word; returns the worker used."""
        worker = self.partitioner.route(word, now)
        counts = self.worker_counts[worker]
        if word in counts:
            counts[word] += 1
        else:
            counts[word] = 1
            self._live_counters += 1
            if self._live_counters > self.stats.peak_worker_counters:
                self.stats.peak_worker_counters = self._live_counters
        self.stats.messages += 1
        self.stats.worker_loads[worker] += 1
        self._since_flush += 1
        if self.aggregation_period and self._since_flush >= self.aggregation_period:
            self.flush()
        return worker

    def process_stream(self, words: Iterable) -> None:
        for i, w in enumerate(words):
            self.process(w, float(i))

    def flush(self) -> int:
        """Send all partial counters to the aggregator; returns #messages.

        Matches the paper's periodic aggregation: partials are merged
        into the aggregator's totals and the worker-side counters are
        cleared (shorter periods => less worker memory, more messages).
        """
        sent = 0
        live = 0
        for counts in self.worker_counts:
            live += len(counts)
            for word, partial in counts.items():
                self.aggregator[word] = self.aggregator.get(word, 0) + partial
                sent += 1
            counts.clear()
        self.stats.aggregation_messages += sent
        self.stats.counter_slot_sum += live
        self.stats.flushes += 1
        self._since_flush = 0
        self._live_counters = 0
        return sent

    def top_k(self, k: int) -> List[Tuple[object, int]]:
        """Authoritative top-k after a final flush.

        Exact for every scheme: partial counts always sum to the true
        totals; what differs between schemes is *cost*, not accuracy.
        """
        self.flush()
        return sorted(
            self.aggregator.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )[:k]

    def load_imbalance(self) -> float:
        """Worker load imbalance I = max - avg accumulated so far."""
        loads = self.stats.worker_loads
        return max(loads) - sum(loads) / len(loads)

    def replication_of(self, word) -> int:
        """Workers currently holding a live partial for ``word``."""
        return sum(1 for counts in self.worker_counts if word in counts)
