"""The Section VI applications, built on the partitioning substrate.

Each application demonstrates the paper's trade-off triangle between
key grouping (KG), shuffle grouping (SG) and PARTIAL KEY GROUPING (PKG):

* :mod:`wordcount` -- streaming top-k word count (the paper's running
  example and the Q4 deployment workload);
* :mod:`naive_bayes` -- naive Bayes with vertical parallelism; PKG
  gives balanced load with 2-probe queries instead of broadcasts;
* :mod:`decision_tree` -- the Ben-Haim & Tom-Tov streaming parallel
  decision tree; PKG cuts the histogram count from W*D*C*L to 2*D*C*L;
* :mod:`heavy_hitters` -- SPACESAVING heavy hitters; PKG's merged
  error involves two summaries regardless of W.
"""

from repro.applications.wordcount import DistributedWordCount, exact_top_k
from repro.applications.naive_bayes import DistributedNaiveBayes
from repro.applications.decision_tree import StreamingParallelDecisionTree
from repro.applications.heavy_hitters import DistributedHeavyHitters

__all__ = [
    "DistributedWordCount",
    "exact_top_k",
    "DistributedNaiveBayes",
    "StreamingParallelDecisionTree",
    "DistributedHeavyHitters",
]
