"""Distributed streaming naive Bayes (Section VI-A).

The classifier counts co-occurrences of (feature, value, class).  With
*vertical parallelism* each feature is a key and its counters live on
the worker(s) the partitioner maps it to:

* **KG** -- one worker per feature: balanced queries (1 probe) but load
  imbalance when feature popularity is skewed (sparse text data);
* **SG** (horizontal) -- counts for a feature are scattered over all W
  workers: balanced load but queries must broadcast to all workers;
* **PKG** -- each feature on exactly two deterministic workers:
  balanced load *and* 2-probe queries.

Prediction is exact under every scheme (partials always sum to the true
counts); the schemes differ in load balance and query cost, which this
implementation accounts explicitly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.partitioning.base import Partitioner
from repro.partitioning.shuffle import ShuffleGrouping


class DistributedNaiveBayes:
    """Categorical naive Bayes with partitioned counters.

    Parameters
    ----------
    partitioner:
        Scheme routing *feature* keys to workers.  A
        :class:`ShuffleGrouping` instance selects horizontal
        parallelism (broadcast queries); anything else is vertical.
    alpha:
        Laplace smoothing pseudo-count.
    """

    def __init__(self, partitioner: Partitioner, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.partitioner = partitioner
        self.num_workers = partitioner.num_workers
        self.alpha = float(alpha)
        #: per-worker counters: (feature, value, class) -> count
        self.worker_counts: List[Dict] = [dict() for _ in range(self.num_workers)]
        #: class -> number of training examples (kept by the aggregator)
        self.class_counts: Dict = {}
        #: per-feature observed value sets (for smoothing denominators)
        self.feature_values: Dict = {}
        self.training_messages = 0
        self.query_probes = 0
        self._horizontal = isinstance(partitioner, ShuffleGrouping)

    @property
    def classes(self) -> List:
        return sorted(self.class_counts, key=repr)

    def train(self, features: Sequence[Tuple[object, object]], label) -> None:
        """Absorb one example given as (feature, value) pairs.

        Each pair becomes one message keyed by the feature, exactly the
        vertical-parallelism pattern of Section VI-A.
        """
        self.class_counts[label] = self.class_counts.get(label, 0) + 1
        for feature, value in features:
            worker = self.partitioner.route(feature)
            counts = self.worker_counts[worker]
            key = (feature, value, label)
            counts[key] = counts.get(key, 0) + 1
            self.feature_values.setdefault(feature, set()).add(value)
            self.training_messages += 1

    def train_batch(
        self, rows: Iterable[Sequence[Tuple[object, object]]], labels: Iterable
    ) -> None:
        for features, label in zip(rows, labels):
            self.train(features, label)

    def _count(self, feature, value, label) -> Tuple[int, int]:
        """Total count of (feature, value, label) and the probes spent."""
        if self._horizontal:
            workers: Tuple[int, ...] = tuple(range(self.num_workers))
        else:
            workers = tuple(set(self.partitioner.candidates(feature)))
        total = 0
        for w in workers:
            total += self.worker_counts[w].get((feature, value, label), 0)
        return total, len(workers)

    def probes_per_feature(self) -> int:
        """Worst-case workers contacted per feature at query time.

        1 for KG, 2 for PKG (less when a feature's two hashes collide),
        W for shuffle grouping -- the query-cost comparison of
        Section VI-A.
        """
        if self._horizontal:
            return self.num_workers
        if not self.feature_values:
            return 0
        return max(
            len(set(self.partitioner.candidates(f))) for f in self.feature_values
        )

    def log_posterior(self, features: Sequence[Tuple[object, object]]) -> Dict:
        """Unnormalised log posterior of every class for one example."""
        if not self.class_counts:
            raise RuntimeError("classifier has not been trained")
        total_examples = sum(self.class_counts.values())
        scores: Dict = {}
        for label, n_label in self.class_counts.items():
            score = math.log(n_label / total_examples)
            for feature, value in features:
                count, probes = self._count(feature, value, label)
                self.query_probes += probes
                vocab = max(len(self.feature_values.get(feature, ())), 1)
                score += math.log(
                    (count + self.alpha) / (n_label + self.alpha * vocab)
                )
            scores[label] = score
        return scores

    def predict(self, features: Sequence[Tuple[object, object]]):
        """Most probable class for one example."""
        scores = self.log_posterior(features)
        return max(scores.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]

    def counter_memory(self) -> int:
        """Total live (feature, value, class) counters across workers.

        KG stores each exactly once, PKG at most twice, SG up to W
        times -- the memory comparison of Section VI-A.
        """
        return sum(len(c) for c in self.worker_counts)

    def worker_loads(self) -> List[int]:
        """Training messages per worker (for imbalance checks)."""
        loads = [0] * self.num_workers
        for w, counts in enumerate(self.worker_counts):
            loads[w] = sum(counts.values())
        return loads
