"""Simulation harness: replaying key streams through partitioners.

This is the machinery behind the paper's Section V simulations (Q1-Q3):
a stream of keys is split among S source PEIs, each source routes its
sub-stream with its own partitioner instance, and the harness tracks the
true worker loads over time to measure imbalance
``I(t) = max_i Li(t) - avg_i Li(t)``.
"""

from repro.simulation.metrics import (
    agreement_fraction,
    average_imbalance,
    count_partial_states,
    imbalance,
    imbalance_fraction,
    jaccard_overlap,
    load_series,
    replication_factor,
)
from repro.simulation.runner import SimulationResult, simulate_stream
from repro.simulation.multisource import (
    assign_sources,
    simulate_multisource_pkg,
    simulate_partitioner_per_source,
)

__all__ = [
    "imbalance",
    "imbalance_fraction",
    "average_imbalance",
    "replication_factor",
    "load_series",
    "jaccard_overlap",
    "agreement_fraction",
    "count_partial_states",
    "SimulationResult",
    "simulate_stream",
    "assign_sources",
    "simulate_multisource_pkg",
    "simulate_partitioner_per_source",
]
