"""Multi-source simulation: the paper's distributed setting (adapter).

The stream is split among S independent source PEIs (via shuffle
grouping, or via key grouping on a *source key* for the Q3 robustness
experiments).  Each source routes its sub-stream with its own
partitioner state; decisions interleave in arrival order and the
harness measures the **true** worker loads, which is what makes the
comparison between local estimation and the global oracle meaningful.

This module owns no replay loop of its own: the interleaved hot loop
lives in :class:`repro.core.engine.InterleavedRouter` (C kernel when a
compiler is available, decision-identical pure Python otherwise) and
the per-source generic runner in
:func:`repro.core.engine.replay_per_source`.  Only the source-splitting
policies and the :class:`SimulationResult` assembly remain here.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.chunks import DEFAULT_CHUNK_SIZE, hashed_choices
from repro.core.engine import (
    InterleavedRouter,
    replay_interleaved,
    replay_per_source,
)
from repro.hashing import HashFamily, HashFunction
from repro.simulation.runner import SimulationResult

#: estimator modes of :func:`simulate_multisource_pkg`
MODES = InterleavedRouter.MODES


def assign_sources(
    num_messages: int,
    num_sources: int,
    source_keys: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Which source PEI handles each message.

    With ``source_keys=None`` messages are spread round-robin (shuffle
    grouping upstream, the paper's default: "read by multiple
    independent sources via shuffle grouping").  Otherwise messages are
    key-grouped on ``source_keys`` -- the skewed split of Q3, where the
    source key is the graph edge's source vertex.
    """
    if num_sources < 1:
        raise ValueError(f"num_sources must be >= 1, got {num_sources}")
    if source_keys is None:
        return np.arange(num_messages, dtype=np.int64) % num_sources
    source_keys = np.asarray(source_keys)
    if source_keys.size != num_messages:
        raise ValueError("source_keys must have one entry per message")
    hasher = HashFunction(seed=seed ^ 0x5CE5)
    if np.issubdtype(source_keys.dtype, np.integer):
        return hasher.bucket_array(source_keys, num_sources)
    return np.fromiter(
        (hasher.bucket(k, num_sources) for k in source_keys),
        dtype=np.int64,
        count=num_messages,
    )


def simulate_multisource_pkg(
    keys: Sequence,
    num_workers: int,
    num_sources: int = 1,
    mode: str = "local",
    num_choices: int = 2,
    probe_period: float = 0.0,
    timestamps: Optional[np.ndarray] = None,
    source_ids: Optional[np.ndarray] = None,
    num_checkpoints: int = 100,
    seed: int = 0,
    keep_assignments: bool = False,
    scheme_name: Optional[str] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """PKG with S sources under a chosen load-estimation mode.

    Parameters
    ----------
    mode:
        ``"local"`` (paper's L), ``"global"`` (G, shared oracle), or
        ``"probing"`` (LP: local + resync to true loads every
        ``probe_period`` time units).
    timestamps:
        Message times; required for probing (defaults to message index).
    source_ids:
        Per-message source assignment; defaults to round-robin.

    Returns a :class:`SimulationResult` whose loads are the *true*
    worker loads accumulated across all sources.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "probing" and probe_period <= 0:
        raise ValueError("probing mode requires a positive probe_period")
    keys = np.asarray(keys)
    m = int(keys.size)
    if source_ids is None:
        source_ids = assign_sources(m, num_sources)
    else:
        source_ids = np.asarray(source_ids, dtype=np.int64)
        if source_ids.size != m:
            raise ValueError("source_ids must have one entry per message")
        if m and (
            int(source_ids.min()) < 0 or int(source_ids.max()) >= num_sources
        ):
            raise ValueError("source_ids references a source outside [0, S)")

    family = HashFamily(size=num_choices, seed=seed)
    choice_matrix = hashed_choices(family, keys, num_workers)

    replay = replay_interleaved(
        choice_matrix,
        source_ids,
        num_sources,
        num_workers,
        mode=mode,
        probe_period=probe_period,
        timestamps=timestamps,
        num_checkpoints=num_checkpoints,
        chunk_size=chunk_size,
        keep_assignments=keep_assignments,
    )
    if scheme_name is None:
        scheme_name = {
            "local": f"L{num_sources}",
            "global": "G",
            "probing": f"L{num_sources}P",
        }[mode]
    return SimulationResult(
        scheme=scheme_name,
        num_workers=num_workers,
        num_sources=num_sources,
        num_messages=m,
        final_loads=replay.final_loads,
        checkpoint_positions=replay.checkpoint_positions,
        imbalance_series=replay.imbalance_series,
        assignments=replay.assignments,
    )


def simulate_partitioner_per_source(
    keys: Sequence,
    make_partitioner,
    num_workers: int,
    num_sources: int = 1,
    source_ids: Optional[np.ndarray] = None,
    timestamps: Optional[np.ndarray] = None,
    num_checkpoints: int = 100,
    keep_assignments: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Generic multi-source runner for arbitrary partitioner objects.

    ``make_partitioner(source_index)`` builds one instance per source.
    Sources whose state is purely local (KG, SG, PKG-local) are routed
    sub-stream-at-a-time with their chunked fast paths, then merged back
    into arrival order -- decision-equivalent to interleaving because no
    shared state exists between sources.
    """
    keys = np.asarray(keys)
    m = int(keys.size)
    if source_ids is None:
        source_ids = assign_sources(m, num_sources)

    replay, partitioners = replay_per_source(
        keys,
        make_partitioner,
        num_workers,
        num_sources=num_sources,
        source_ids=source_ids,
        timestamps=timestamps,
        num_checkpoints=num_checkpoints,
        chunk_size=chunk_size,
        keep_assignments=keep_assignments,
    )
    return SimulationResult(
        scheme=partitioners[0].name if partitioners else "?",
        num_workers=num_workers,
        num_sources=num_sources,
        num_messages=m,
        final_loads=replay.final_loads,
        checkpoint_positions=replay.checkpoint_positions,
        imbalance_series=replay.imbalance_series,
        assignments=replay.assignments,
    )
