"""Multi-source simulation: the paper's distributed setting.

The stream is split among S independent source PEIs (via shuffle
grouping, or via key grouping on a *source key* for the Q3 robustness
experiments).  Each source routes its sub-stream with its own
partitioner state; the harness interleaves all decisions in arrival
order and measures the **true** worker loads, which is what makes the
comparison between local estimation and the global oracle meaningful.

The inner loop is deliberately written over plain Python lists with the
hashing hoisted out and vectorized: this is what makes million-message
multi-source sweeps tractable in pure Python.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.hashing import HashFamily, HashFunction
from repro.partitioning.base import Partitioner
from repro.simulation.metrics import load_series
from repro.simulation.runner import SimulationResult

#: estimator modes of :func:`simulate_multisource_pkg`
MODES = ("local", "global", "probing")


def assign_sources(
    num_messages: int,
    num_sources: int,
    source_keys: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Which source PEI handles each message.

    With ``source_keys=None`` messages are spread round-robin (shuffle
    grouping upstream, the paper's default: "read by multiple
    independent sources via shuffle grouping").  Otherwise messages are
    key-grouped on ``source_keys`` -- the skewed split of Q3, where the
    source key is the graph edge's source vertex.
    """
    if num_sources < 1:
        raise ValueError(f"num_sources must be >= 1, got {num_sources}")
    if source_keys is None:
        return np.arange(num_messages, dtype=np.int64) % num_sources
    source_keys = np.asarray(source_keys)
    if source_keys.size != num_messages:
        raise ValueError("source_keys must have one entry per message")
    hasher = HashFunction(seed=seed ^ 0x5CE5)
    if np.issubdtype(source_keys.dtype, np.integer):
        return hasher.bucket_array(source_keys, num_sources)
    return np.fromiter(
        (hasher.bucket(k, num_sources) for k in source_keys),
        dtype=np.int64,
        count=num_messages,
    )


def simulate_multisource_pkg(
    keys: Sequence,
    num_workers: int,
    num_sources: int = 1,
    mode: str = "local",
    num_choices: int = 2,
    probe_period: float = 0.0,
    timestamps: Optional[np.ndarray] = None,
    source_ids: Optional[np.ndarray] = None,
    num_checkpoints: int = 100,
    seed: int = 0,
    keep_assignments: bool = False,
    scheme_name: Optional[str] = None,
) -> SimulationResult:
    """PKG with S sources under a chosen load-estimation mode.

    Parameters
    ----------
    mode:
        ``"local"`` (paper's L), ``"global"`` (G, shared oracle), or
        ``"probing"`` (LP: local + resync to true loads every
        ``probe_period`` time units).
    timestamps:
        Message times; required for probing (defaults to message index).
    source_ids:
        Per-message source assignment; defaults to round-robin.

    Returns a :class:`SimulationResult` whose loads are the *true*
    worker loads accumulated across all sources.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "probing" and probe_period <= 0:
        raise ValueError("probing mode requires a positive probe_period")
    keys = np.asarray(keys)
    m = int(keys.size)
    if source_ids is None:
        source_ids = assign_sources(m, num_sources)
    else:
        source_ids = np.asarray(source_ids, dtype=np.int64)
        if source_ids.size != m:
            raise ValueError("source_ids must have one entry per message")
        if m and int(source_ids.max()) >= num_sources:
            raise ValueError("source_ids references a source >= num_sources")

    family = HashFamily(size=num_choices, seed=seed)
    if np.issubdtype(keys.dtype, np.integer):
        choice_matrix = family.choice_matrix(keys, num_workers)
    else:
        choice_matrix = np.stack(
            [
                np.fromiter((f(k) % num_workers for k in keys), np.int64, count=m)
                for f in family
            ],
            axis=1,
        )

    workers = _route_interleaved(
        choice_matrix,
        source_ids,
        num_sources,
        num_workers,
        mode,
        probe_period,
        timestamps,
    )

    positions, series = load_series(workers, num_workers, num_checkpoints)
    if scheme_name is None:
        scheme_name = {
            "local": f"L{num_sources}",
            "global": "G",
            "probing": f"L{num_sources}P",
        }[mode]
    return SimulationResult(
        scheme=scheme_name,
        num_workers=num_workers,
        num_sources=num_sources,
        num_messages=m,
        final_loads=np.bincount(workers, minlength=num_workers),
        checkpoint_positions=positions,
        imbalance_series=series,
        assignments=workers if keep_assignments else None,
    )


def _route_interleaved(
    choice_matrix: np.ndarray,
    source_ids: np.ndarray,
    num_sources: int,
    num_workers: int,
    mode: str,
    probe_period: float,
    timestamps: Optional[np.ndarray],
) -> np.ndarray:
    """Sequential routing loop over plain lists (the hot path)."""
    m, d = choice_matrix.shape
    out = np.empty(m, dtype=np.int64)
    out_list = out  # numpy assignment by index is fine here
    true_loads = [0] * num_workers
    src = source_ids.tolist()

    if mode == "global":
        views = [true_loads] * num_sources
    else:
        views = [[0] * num_workers for _ in range(num_sources)]

    if mode == "probing":
        if timestamps is None:
            timestamps = np.arange(m, dtype=np.float64)
        times = timestamps.tolist()
        next_probe = [probe_period] * num_sources
    else:
        times = None
        next_probe = None

    if d == 2:
        col1 = choice_matrix[:, 0].tolist()
        col2 = choice_matrix[:, 1].tolist()
        for i in range(m):
            s = src[i]
            view = views[s]
            if next_probe is not None and times[i] >= next_probe[s]:
                view = views[s] = true_loads.copy()
                period = probe_period
                while next_probe[s] <= times[i]:
                    next_probe[s] += period
            a, b = col1[i], col2[i]
            w = a if view[a] <= view[b] else b
            view[w] += 1
            if view is not true_loads:
                true_loads[w] += 1
            out_list[i] = w
        return out

    cols = [choice_matrix[:, j].tolist() for j in range(d)]
    for i in range(m):
        s = src[i]
        view = views[s]
        if next_probe is not None and times[i] >= next_probe[s]:
            view = views[s] = true_loads.copy()
            while next_probe[s] <= times[i]:
                next_probe[s] += probe_period
        best = cols[0][i]
        best_load = view[best]
        for j in range(1, d):
            c = cols[j][i]
            if view[c] < best_load:
                best, best_load = c, view[c]
        view[best] += 1
        if view is not true_loads:
            true_loads[best] += 1
        out_list[i] = best
    return out


def simulate_partitioner_per_source(
    keys: Sequence,
    make_partitioner,
    num_workers: int,
    num_sources: int = 1,
    source_ids: Optional[np.ndarray] = None,
    timestamps: Optional[np.ndarray] = None,
    num_checkpoints: int = 100,
    keep_assignments: bool = False,
) -> SimulationResult:
    """Generic multi-source runner for arbitrary partitioner objects.

    ``make_partitioner(source_index)`` builds one instance per source.
    Sources whose state is purely local (KG, SG, PKG-local) are routed
    sub-stream-at-a-time with their fast paths, then merged back into
    arrival order -- decision-equivalent to interleaving because no
    shared state exists between sources.
    """
    keys = np.asarray(keys)
    m = int(keys.size)
    if source_ids is None:
        source_ids = assign_sources(m, num_sources)
    else:
        source_ids = np.asarray(source_ids, dtype=np.int64)

    workers = np.empty(m, dtype=np.int64)
    scheme = None
    for s in range(num_sources):
        mask = source_ids == s
        partitioner: Partitioner = make_partitioner(s)
        scheme = scheme or partitioner.name
        sub_times = timestamps[mask] if timestamps is not None else None
        workers[mask] = partitioner.route_stream(keys[mask], sub_times)

    positions, series = load_series(workers, num_workers, num_checkpoints)
    return SimulationResult(
        scheme=scheme or "?",
        num_workers=num_workers,
        num_sources=num_sources,
        num_messages=m,
        final_loads=np.bincount(workers, minlength=num_workers),
        checkpoint_positions=positions,
        imbalance_series=series,
        assignments=workers if keep_assignments else None,
    )
