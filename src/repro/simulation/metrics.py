"""Load-balance metrics.

All definitions follow Section II of the paper:

* load ``Li(t)`` -- messages handled by worker i up to time t;
* imbalance ``I(t) = max_i Li(t) - avg_i Li(t)``;
* the figures plot the *fraction of imbalance*: ``I`` normalised by the
  total number of messages.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def imbalance(loads: Sequence[float]) -> float:
    """``I = max(L) - avg(L)`` of a worker-load vector."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("imbalance of an empty load vector is undefined")
    return float(loads.max() - loads.mean())


def imbalance_fraction(loads: Sequence[float]) -> float:
    """Imbalance normalised by total messages (the figures' y-axis)."""
    loads = np.asarray(loads, dtype=np.float64)
    total = loads.sum()
    if total <= 0:
        return 0.0
    return imbalance(loads) / float(total)


def load_series(
    workers: np.ndarray, num_workers: int, num_checkpoints: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """Imbalance ``I(t)`` sampled at evenly spaced checkpoints.

    Parameters
    ----------
    workers:
        Per-message worker assignment, in arrival order.
    num_workers:
        Worker count W (workers never hit still count toward the mean).
    num_checkpoints:
        Number of sample points; the last checkpoint is the stream end.

    Returns
    -------
    (positions, imbalances):
        ``positions[j]`` is the message count at checkpoint j,
        ``imbalances[j]`` the imbalance there.
    """
    from repro.core.metrics import StreamingLoadSeries

    workers = np.asarray(workers, dtype=np.int64)
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if workers.size == 0:
        return np.array([], dtype=np.int64), np.array([])
    # One-shot wrapper over the streaming accumulator the chunked
    # engine uses, so batch and chunked replays share one definition.
    series = StreamingLoadSeries(workers.size, num_workers, num_checkpoints)
    series.update(workers)
    return series.finish()


def average_imbalance(
    workers: np.ndarray, num_workers: int, num_checkpoints: int = 100
) -> float:
    """Mean of ``I(t)`` over checkpoints ("average imbalance measured
    throughout the simulation", Table II)."""
    _, series = load_series(workers, num_workers, num_checkpoints)
    if series.size == 0:
        return 0.0
    return float(series.mean())


def jaccard_overlap(workers_a: np.ndarray, workers_b: np.ndarray) -> float:
    """Jaccard overlap of two routings of the same stream.

    Treats each routing as the set of (message, destination) pairs; the
    intersection is the messages sent to the same worker by both.  This
    is the statistic behind the paper's Q2 observation that G and L
    agree on only ~47% of destinations yet balance equally well.
    """
    workers_a = np.asarray(workers_a)
    workers_b = np.asarray(workers_b)
    if workers_a.shape != workers_b.shape:
        raise ValueError("routings must cover the same messages")
    m = workers_a.size
    if m == 0:
        return 1.0
    equal = int((workers_a == workers_b).sum())
    return equal / (2 * m - equal)


def agreement_fraction(workers_a: np.ndarray, workers_b: np.ndarray) -> float:
    """Fraction of messages routed identically by two schemes."""
    workers_a = np.asarray(workers_a)
    workers_b = np.asarray(workers_b)
    if workers_a.shape != workers_b.shape:
        raise ValueError("routings must cover the same messages")
    if workers_a.size == 0:
        return 1.0
    return float((workers_a == workers_b).mean())


def count_partial_states(keys: np.ndarray, workers: np.ndarray) -> int:
    """Number of distinct (worker, key) partial states created.

    This is the memory cost of a stateful operator under a given
    partitioning (Section III-A): key grouping creates exactly K
    partials, PKG at most 2K, shuffle grouping up to W*K.
    """
    keys = np.asarray(keys)
    workers = np.asarray(workers, dtype=np.int64)
    if keys.shape != workers.shape:
        raise ValueError("keys and workers must align")
    if keys.size == 0:
        return 0
    if np.issubdtype(keys.dtype, np.integer):
        combined = workers.astype(np.int64) * (np.int64(keys.max()) + 1) + keys
        return int(np.unique(combined).size)
    return len(set(zip(workers.tolist(), keys.tolist())))


def replication_factor(keys: np.ndarray, workers: np.ndarray) -> float:
    """Average number of workers holding state for each distinct key."""
    keys = np.asarray(keys)
    num_keys = (
        int(np.unique(keys).size)
        if keys.size
        else 0
    )
    if num_keys == 0:
        return 0.0
    return count_partial_states(keys, workers) / num_keys
