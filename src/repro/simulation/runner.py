"""Single-source simulation runner (adapter over :mod:`repro.core`).

Replays a key stream through one partitioner instance and collects the
load-balance metrics the paper reports: final loads, the imbalance time
series I(t), its average over the run (Table II), and the normalised
"fraction of imbalance" (Figures 2-4).

This module owns no replay loop of its own: the replay runs in
:func:`repro.core.engine.replay_stream`, the single chunked engine
shared with the multi-source and DSPE paths; only the
:class:`SimulationResult` shape and the scheme-spec conveniences live
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.chunks import DEFAULT_CHUNK_SIZE
from repro.core.engine import replay_stream
from repro.partitioning.base import Partitioner


@dataclass
class SimulationResult:
    """Outcome of replaying a stream through a partitioning scheme."""

    scheme: str
    num_workers: int
    num_sources: int
    num_messages: int
    final_loads: np.ndarray
    checkpoint_positions: np.ndarray
    imbalance_series: np.ndarray
    #: per-message worker assignment (kept only on request; large)
    assignments: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def final_imbalance(self) -> float:
        """``I(m)`` at the end of the stream."""
        return float(self.final_loads.max() - self.final_loads.mean())

    @property
    def average_imbalance(self) -> float:
        """Mean I(t) over checkpoints -- the Table II statistic."""
        if self.imbalance_series.size == 0:
            return 0.0
        return float(self.imbalance_series.mean())

    @property
    def average_imbalance_fraction(self) -> float:
        """Average imbalance / total messages -- the Figure 2 y-axis."""
        if self.num_messages == 0:
            return 0.0
        return self.average_imbalance / self.num_messages

    @property
    def final_imbalance_fraction(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.final_imbalance / self.num_messages

    @property
    def imbalance_fraction_series(self) -> np.ndarray:
        """I(t) normalised by messages-so-far (the Figure 3 y-axis)."""
        positions = np.maximum(self.checkpoint_positions, 1)
        return self.imbalance_series / positions

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.scheme}: W={self.num_workers} S={self.num_sources} "
            f"m={self.num_messages} avg I={self.average_imbalance:.2f} "
            f"(fraction {self.average_imbalance_fraction:.3e})"
        )


def simulate_stream(
    keys: Sequence,
    partitioner: Partitioner,
    timestamps: Optional[Sequence[float]] = None,
    num_checkpoints: int = 100,
    keep_assignments: bool = False,
    num_workers: Optional[int] = None,
    seed: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Route a key stream through ``partitioner`` and measure balance.

    ``partitioner`` may also be a registry scheme name or spec string
    (``"pkg:d=3"``), in which case ``num_workers`` is required and the
    instance is built via :func:`repro.api.make_partitioner` with
    ``seed``.

    This is the single-source path (S = 1); for the multi-source
    experiments use :mod:`repro.simulation.multisource`.  Both delegate
    to the chunked engine in :mod:`repro.core.engine`.
    """
    if isinstance(partitioner, str):
        from repro.api.registry import make_partitioner

        if num_workers is None:
            raise ValueError(
                "num_workers is required when partitioner is a scheme name"
            )
        partitioner = make_partitioner(partitioner, num_workers, seed=seed)
    replay = replay_stream(
        keys,
        partitioner,
        timestamps=timestamps,
        num_checkpoints=num_checkpoints,
        chunk_size=chunk_size,
        keep_assignments=keep_assignments,
    )
    return SimulationResult(
        scheme=partitioner.name,
        num_workers=partitioner.num_workers,
        num_sources=1,
        num_messages=replay.num_messages,
        final_loads=replay.final_loads,
        checkpoint_positions=replay.checkpoint_positions,
        imbalance_series=replay.imbalance_series,
        assignments=replay.assignments,
    )
