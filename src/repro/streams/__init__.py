"""Stream substrate: messages, key distributions, and dataset generators.

The paper's evaluation (Section V) runs on eight datasets summarised in
Table I.  The raw data (Wikipedia page views, Twitter crawls, SNAP
graphs) is not redistributable, so this package provides synthetic
equivalents calibrated to the published statistics -- message count, key
count, and head probability ``p1`` -- which are the quantities that
determine load-balancing behaviour (see DESIGN.md, "Substitutions").
"""

from repro.streams.message import Message, stream_messages
from repro.streams.distributions import (
    EmpiricalKeyDistribution,
    KeyDistribution,
    LogNormalKeyDistribution,
    UniformKeyDistribution,
    ZipfKeyDistribution,
    calibrate_zipf_exponent,
)
from repro.streams.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_stream,
    get_dataset,
    list_datasets,
)
from repro.streams.drift import DriftingKeyStream
from repro.streams.graphs import (
    EdgeStream,
    scale_free_digraph,
    degree_sequences,
)
from repro.streams.text import SyntheticTextStream, synthetic_vocabulary, tokenize

__all__ = [
    "Message",
    "stream_messages",
    "KeyDistribution",
    "ZipfKeyDistribution",
    "LogNormalKeyDistribution",
    "UniformKeyDistribution",
    "EmpiricalKeyDistribution",
    "calibrate_zipf_exponent",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "list_datasets",
    "dataset_stream",
    "DriftingKeyStream",
    "EdgeStream",
    "scale_free_digraph",
    "degree_sequences",
    "SyntheticTextStream",
    "synthetic_vocabulary",
    "tokenize",
]
