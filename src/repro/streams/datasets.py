"""Synthetic stand-ins for the paper's Table I datasets.

Table I of the paper:

======== ======== ======= ======
Dataset  Messages Keys    p1(%)
======== ======== ======= ======
WP       22M      2.9M    9.32
TW       1.2G     31M     2.67
CT       690k     2.9k    3.29
LN1      10M      16k     14.71
LN2      10M      1.1k    7.01
LJ       69M      4.9M    0.29
SL1      905k     77k     3.28
SL2      948k     82k     3.11
======== ======== ======= ======

The raw corpora are not redistributable, so each spec here generates a
synthetic stream whose *head probability p1* matches the paper exactly
(the statistic that locates every phase transition in the evaluation)
and whose message/key counts are scaled to laptop size.  WP/TW/CT/SL use
p1-calibrated Zipf laws, LN1/LN2 use the paper's own log-normal
parameters, and LJ/SL can alternatively be streamed from generated
scale-free graphs via :class:`repro.streams.graphs.EdgeStream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from repro.core.chunks import DEFAULT_CHUNK_SIZE, ArrayChunkSource, ChunkSource
from repro.streams.distributions import (
    KeyDistribution,
    LogNormalKeyDistribution,
    ZipfKeyDistribution,
    calibrate_zipf_exponent,
)
from repro.streams.drift import DriftingKeyStream


#: Memoized stationary distributions, keyed by every spec field the
#: distribution depends on (see DatasetSpec.distribution).
_DISTRIBUTION_CACHE: Dict[tuple, "KeyDistribution"] = {}


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of one Table I dataset and its synthetic equivalent.

    Attributes
    ----------
    symbol:
        The paper's short symbol (WP, TW, ...).
    paper_messages / paper_keys / paper_p1_percent:
        The values reported in Table I; the ``table1`` harness compares
        them against the generated streams in EXPERIMENTS.md
        (regenerated from ``results/`` by ``python -m repro.reports``).
    num_keys / default_messages:
        The scaled key-universe and default stream length used here.
    kind:
        ``"zipf"`` (p1-calibrated), ``"lognormal"`` (paper parameters),
        or ``"drift"`` (CT: Zipf + epochal popularity drift).
    params:
        Extra parameters for the generator (mu/sigma, drift settings).
    """

    symbol: str
    description: str
    paper_messages: float
    paper_keys: float
    paper_p1_percent: float
    num_keys: int
    default_messages: int
    kind: str = "zipf"
    params: Dict[str, float] = field(default_factory=dict)

    def distribution(self) -> KeyDistribution:
        """The stationary key distribution of this dataset.

        For drift datasets the *stationary* head probability is boosted
        by ``params["p1_boost"]``: drift rotates which key is hottest,
        so the whole-stream (Table I) head probability is diluted by
        roughly the number of distinct heads; the boost compensates so
        the measured global p1 matches the paper.

        Memoized on the fields it reads: distributions are stateless
        parameter objects (sampling takes an external rng), and the
        Zipf-exponent calibration is iterative -- sweep cells calling
        this per cell must not each pay for it.
        """
        key = (
            self.kind,
            self.paper_p1_percent,
            self.num_keys,
            tuple(sorted(self.params.items())),
        )
        cached = _DISTRIBUTION_CACHE.get(key)
        if cached is not None:
            return cached
        dist = self._build_distribution()
        _DISTRIBUTION_CACHE[key] = dist
        return dist

    def _build_distribution(self) -> KeyDistribution:
        target_p1 = self.paper_p1_percent / 100.0
        if self.kind == "drift":
            target_p1 = min(0.99, target_p1 * float(self.params.get("p1_boost", 1.0)))
        if self.kind in ("zipf", "drift"):
            exponent = calibrate_zipf_exponent(self.num_keys, target_p1)
            return ZipfKeyDistribution(exponent, self.num_keys)
        if self.kind == "lognormal":
            return LogNormalKeyDistribution(
                mu=self.params["mu"],
                sigma=self.params["sigma"],
                num_keys=self.num_keys,
                seed=int(self.params.get("seed", 0)),
            )
        raise ValueError(f"unknown dataset kind: {self.kind!r}")

    def stream(self, num_messages: Optional[int] = None, seed: int = 0) -> np.ndarray:
        """Generate a key stream (int64 key ids) for this dataset."""
        m = self.default_messages if num_messages is None else int(num_messages)
        if m < 0:
            raise ValueError(f"num_messages must be >= 0, got {m}")
        dist = self.distribution()
        if self.kind == "drift":
            # Epochs scale with the stream so a scaled-down run drifts
            # as many times as the full-size one.
            num_epochs = int(self.params.get("num_epochs", 5))
            drifter = DriftingKeyStream(
                dist,
                epoch_messages=max(1, m // num_epochs),
                drift_fraction=float(self.params.get("drift_fraction", 0.2)),
                seed=seed,
            )
            return drifter.generate(m)
        return dist.sample(m, np.random.default_rng(seed))

    def chunk_source(
        self,
        num_messages: Optional[int] = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        method: str = "cdf",
    ) -> ChunkSource:
        """A bounded-memory chunk source for this dataset's stream.

        For stationary datasets (zipf/lognormal) this samples chunk by
        chunk, and with ``method="cdf"`` the concatenated chunks are
        **byte-identical** to :meth:`stream` under the same seed (the
        generator's uniforms concatenate exactly; the test suite
        asserts it).  Drift datasets (CT) consume randomness in
        whole-stream order -- all epoch ranks first, then per-epoch
        victims -- so chunk-wise generation cannot reproduce
        :meth:`stream` byte for byte; they fall back to a materialised
        :class:`~repro.core.chunks.ArrayChunkSource` over the exact
        :meth:`stream` output instead.
        """
        m = self.default_messages if num_messages is None else int(num_messages)
        if m < 0:
            raise ValueError(f"num_messages must be >= 0, got {m}")
        if self.kind == "drift":
            return ArrayChunkSource(
                self.stream(m, seed=seed), seed=seed, chunk_size=chunk_size
            )
        return self.distribution().chunk_source(
            m, seed=seed, chunk_size=chunk_size, method=method
        )

    def iter_stream(
        self,
        num_messages: Optional[int] = None,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[np.ndarray]:
        """Stream this dataset chunk by chunk in bounded memory.

        ``np.concatenate(list(iter_stream(m, seed)))`` equals
        ``stream(m, seed)`` byte for byte, for every dataset kind.
        """
        return self.chunk_source(num_messages, seed=seed, chunk_size=chunk_size).chunks()

    @property
    def scale_factor(self) -> float:
        """How much the default stream is shrunk vs. the paper's."""
        return self.default_messages / self.paper_messages

    def measured_p1(self, keys: np.ndarray) -> float:
        """Empirical head probability of a generated stream."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return 0.0
        counts = np.bincount(keys)
        return float(counts.max() / keys.size)


DATASETS: Dict[str, DatasetSpec] = {
    "WP": DatasetSpec(
        symbol="WP",
        description="Wikipedia page-visit log (synthetic, p1-calibrated Zipf)",
        paper_messages=22e6,
        paper_keys=2.9e6,
        paper_p1_percent=9.32,
        num_keys=50_000,
        default_messages=1_000_000,
    ),
    "TW": DatasetSpec(
        symbol="TW",
        description="Twitter word stream (synthetic, p1-calibrated Zipf)",
        paper_messages=1.2e9,
        paper_keys=31e6,
        paper_p1_percent=2.67,
        num_keys=100_000,
        default_messages=1_000_000,
    ),
    "CT": DatasetSpec(
        symbol="CT",
        description="Twitter cashtags with popularity drift (synthetic)",
        paper_messages=690e3,
        paper_keys=2.9e3,
        paper_p1_percent=3.29,
        num_keys=2_900,
        default_messages=690_000,
        kind="drift",
        # The paper's CT span is ~600 hours (~3.5 weeks) and "popular
        # cash tags change from week to week": 5 drift epochs.  The
        # boost compensates the dilution of the whole-stream p1 caused
        # by the head keys rotating (see DatasetSpec.distribution).
        params={"num_epochs": 5, "drift_fraction": 0.2, "p1_boost": 5.0},
    ),
    "LN1": DatasetSpec(
        symbol="LN1",
        description="Log-normal synthetic 1 (Orkut-calibrated, paper params)",
        paper_messages=10e6,
        paper_keys=16e3,
        paper_p1_percent=14.71,
        num_keys=16_000,
        default_messages=1_000_000,
        kind="lognormal",
        params={"mu": 1.789, "sigma": 2.366, "seed": 41},
    ),
    "LN2": DatasetSpec(
        symbol="LN2",
        description="Log-normal synthetic 2 (Orkut-calibrated, paper params)",
        paper_messages=10e6,
        paper_keys=1.1e3,
        paper_p1_percent=7.01,
        num_keys=1_100,
        default_messages=1_000_000,
        kind="lognormal",
        params={"mu": 2.245, "sigma": 1.133, "seed": 42},
    ),
    "LJ": DatasetSpec(
        symbol="LJ",
        description="LiveJournal-like edge stream (synthetic scale-free digraph)",
        paper_messages=69e6,
        paper_keys=4.9e6,
        paper_p1_percent=0.29,
        num_keys=200_000,
        default_messages=1_000_000,
    ),
    "SL1": DatasetSpec(
        symbol="SL1",
        description="Slashdot0811-like edge stream (synthetic scale-free digraph)",
        paper_messages=905e3,
        paper_keys=77e3,
        paper_p1_percent=3.28,
        num_keys=77_000,
        default_messages=905_000,
    ),
    "SL2": DatasetSpec(
        symbol="SL2",
        description="Slashdot0902-like edge stream (synthetic scale-free digraph)",
        paper_messages=948e3,
        paper_keys=82e3,
        paper_p1_percent=3.11,
        num_keys=82_000,
        default_messages=948_000,
    ),
}


def get_dataset(symbol: str) -> DatasetSpec:
    """Look up a dataset spec by its Table I symbol (case-insensitive)."""
    try:
        return DATASETS[symbol.upper()]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {symbol!r}; known: {known}") from None


def list_datasets() -> list:
    """All registered dataset symbols in Table I order."""
    return list(DATASETS)


def dataset_stream(
    symbol: str, num_messages: Optional[int] = None, seed: int = 0
) -> np.ndarray:
    """Shorthand for ``get_dataset(symbol).stream(...)``."""
    return get_dataset(symbol).stream(num_messages, seed=seed)
