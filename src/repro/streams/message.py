"""The message model of Section II.

A stream is a sequence of messages ``m = <t, k, v>`` where ``t`` is the
arrival timestamp, ``k`` the key, and ``v`` the value, presented in
ascending timestamp order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

import numpy as np


@dataclass(frozen=True, order=True)
class Message:
    """A single stream message ``<t, k, v>``.

    Ordering is by timestamp (then key), matching the paper's
    "presented to the engine in ascending order by timestamp".
    """

    timestamp: float
    key: Any = field(compare=False)
    value: Any = field(default=None, compare=False)

    def with_key(self, key: Any) -> "Message":
        """A copy of this message with a different key.

        Used e.g. by the graph experiments of Q3, where the source PEI
        re-keys each edge from source-vertex to destination-vertex.
        """
        return Message(self.timestamp, key, self.value)


def stream_messages(
    keys: Iterable[Any],
    values: Optional[Iterable[Any]] = None,
    start: float = 0.0,
    rate: float = 1.0,
) -> Iterator[Message]:
    """Wrap raw keys into :class:`Message` objects.

    Timestamps are assigned as ``start + i / rate`` -- one message per
    ``1/rate`` time units, the paper's "one message arrives per unit of
    time" when ``rate == 1``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if values is None:
        for i, key in enumerate(keys):
            yield Message(start + i / rate, key)
    else:
        for i, (key, value) in enumerate(zip(keys, values)):
            yield Message(start + i / rate, key, value)


def keys_of(messages: Iterable[Message]) -> np.ndarray:
    """Extract the key sequence of a message stream as an array."""
    return np.asarray([m.key for m in messages])
