"""Streams whose key popularity drifts over time.

The paper's cashtag dataset (CT) exists to test robustness to drift:
"Popular cash tags change from week to week" (Section V-A).  We model
drift as a piecewise-stationary process: ranks are drawn from a fixed
skewed distribution, but the mapping from rank to key identity is
perturbed at every epoch boundary, so the *identity* of the hot keys
changes while the *shape* of the distribution does not -- exactly the
phenomenon the CT experiments probe (Figure 3, bottom row).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.streams.distributions import KeyDistribution


class DriftingKeyStream:
    """Generate a key stream with epochal popularity drift.

    Parameters
    ----------
    distribution:
        The stationary rank distribution (e.g. Zipf calibrated to CT's
        p1 = 3.29%).
    epoch_messages:
        Number of messages per epoch; the rank-to-key mapping changes at
        each epoch boundary.
    drift_fraction:
        Fraction of the key universe whose identity is reshuffled at
        each boundary, sampled preferentially from the head (popular
        cashtags change; the long tail is stable).  ``1.0`` reshuffles
        everything.
    seed:
        Seed for both sampling and the drift permutations.
    """

    def __init__(
        self,
        distribution: KeyDistribution,
        epoch_messages: int,
        drift_fraction: float = 0.2,
        seed: int = 0,
    ):
        if epoch_messages < 1:
            raise ValueError(f"epoch_messages must be >= 1, got {epoch_messages}")
        if not (0.0 <= drift_fraction <= 1.0):
            raise ValueError(f"drift_fraction must be in [0, 1], got {drift_fraction}")
        self.distribution = distribution
        self.epoch_messages = int(epoch_messages)
        self.drift_fraction = float(drift_fraction)
        self.seed = int(seed)

    def generate(self, num_messages: int) -> np.ndarray:
        """Produce ``num_messages`` keys with drift applied.

        Returns an int64 array of key identities in ``[0, K)``.
        """
        if num_messages < 0:
            raise ValueError(f"num_messages must be >= 0, got {num_messages}")
        rng = np.random.default_rng(self.seed)
        num_keys = self.distribution.num_keys
        ranks = self.distribution.sample(num_messages, rng)

        # identity[rank] = key id currently occupying that popularity rank.
        identity = np.arange(num_keys, dtype=np.int64)
        num_drifting = max(1, int(round(self.drift_fraction * num_keys)))

        out = np.empty(num_messages, dtype=np.int64)
        for start in range(0, num_messages, self.epoch_messages):
            stop = min(start + self.epoch_messages, num_messages)
            out[start:stop] = identity[ranks[start:stop]]
            # Reshuffle which keys occupy the top `num_drifting` ranks:
            # swap them with randomly chosen ranks anywhere in the
            # universe, so yesterday's hot cashtags cool off and cold
            # ones heat up.
            if stop < num_messages and num_keys > 1:
                victims = rng.integers(0, num_keys, size=num_drifting)
                for rank, victim in enumerate(victims):
                    identity[rank], identity[victim] = identity[victim], identity[rank]
        return out

    def epoch_of(self, message_index: int) -> int:
        """Epoch number in which a given message index falls."""
        return message_index // self.epoch_messages

    def __repr__(self) -> str:
        return (
            f"DriftingKeyStream(distribution={self.distribution!r}, "
            f"epoch_messages={self.epoch_messages}, "
            f"drift_fraction={self.drift_fraction}, seed={self.seed})"
        )


def head_churn(
    keys: np.ndarray, epoch_messages: int, top: int = 10
) -> np.ndarray:
    """Measure drift: per-epoch Jaccard distance between top-key sets.

    Returns, for each epoch boundary, ``1 - |A ∩ B| / |A ∪ B|`` where A
    and B are the sets of ``top`` most frequent keys in the adjacent
    epochs.  A stationary stream scores near 0; heavy drift near 1.
    """
    keys = np.asarray(keys, dtype=np.int64)
    num_epochs = int(np.ceil(len(keys) / epoch_messages))
    tops = []
    for e in range(num_epochs):
        chunk = keys[e * epoch_messages : (e + 1) * epoch_messages]
        if chunk.size == 0:
            continue
        counts = np.bincount(chunk)
        order = np.argsort(counts)[::-1]
        tops.append(set(order[:top].tolist()))
    distances = []
    for a, b in zip(tops, tops[1:]):
        union = a | b
        distances.append(1.0 - len(a & b) / len(union) if union else 0.0)
    return np.asarray(distances)
