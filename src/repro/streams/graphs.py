"""Directed power-law graphs streamed as edges.

Q3 of the evaluation (Figure 4) streams the edges of social graphs
(LiveJournal, Slashdot).  The source PEIs are keyed by the *source*
vertex of each edge and the workers by the *destination* vertex, which
"projects the out-degree distribution of the graph on sources, and the
in-degree distribution on workers, both of which are highly skewed".

The SNAP datasets are not redistributable, so we generate directed
scale-free graphs with the same qualitative degree skew using the
preferential-attachment scheme of Bollobás et al. (the model behind
``networkx.scale_free_graph``), implemented here with endpoint pools so
that generation is O(edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def scale_free_digraph(
    num_edges: int,
    alpha: float = 0.41,
    beta: float = 0.54,
    gamma: float = 0.05,
    delta_in: float = 1.0,
    delta_out: float = 0.2,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a directed scale-free multigraph with ``num_edges`` edges.

    At each step:

    * with probability ``alpha``: add a new node v and an edge v -> w,
      where w is chosen preferentially by in-degree;
    * with probability ``beta``: add an edge v -> w between existing
      nodes, v chosen by out-degree and w by in-degree;
    * with probability ``gamma``: add a new node w and an edge v -> w,
      v chosen preferentially by out-degree.

    ``delta_in`` / ``delta_out`` mix in uniform choice, avoiding
    degenerate star graphs.  Returns ``(sources, destinations)`` int64
    arrays of length ``num_edges``.  Both in- and out-degree sequences
    are power-law distributed, matching the LJ/SL datasets' skew; the
    default ``delta_in = 1.0`` puts the heaviest in-degree hub at
    ~0.3% of all edges, the ``p1`` Table I reports for LiveJournal.
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    total = alpha + beta + gamma
    if total <= 0:
        raise ValueError("alpha + beta + gamma must be positive")
    alpha, beta, gamma = alpha / total, beta / total, gamma / total

    rng = np.random.default_rng(seed)
    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)

    # Endpoint pools: picking a uniform element of out_pool selects a
    # node with probability proportional to its out-degree.
    out_pool: list = [0]
    in_pool: list = [1]
    num_nodes = 2
    src[0], dst[0] = 0, 1

    # Pre-draw randomness in blocks for speed.
    coins = rng.random(num_edges)
    mix_out = rng.random(num_edges)
    mix_in = rng.random(num_edges)
    p_uniform_out = delta_out / (1.0 + delta_out)
    p_uniform_in = delta_in / (1.0 + delta_in)

    for i in range(1, num_edges):
        coin = coins[i]
        if coin < alpha:
            v = num_nodes
            num_nodes += 1
            w = _pick(in_pool, num_nodes, mix_in[i], p_uniform_in, rng)
        elif coin < alpha + beta:
            v = _pick(out_pool, num_nodes, mix_out[i], p_uniform_out, rng)
            w = _pick(in_pool, num_nodes, mix_in[i], p_uniform_in, rng)
        else:
            w = num_nodes
            num_nodes += 1
            v = _pick(out_pool, num_nodes, mix_out[i], p_uniform_out, rng)
        src[i], dst[i] = v, w
        out_pool.append(v)
        in_pool.append(w)

    return src, dst


def _pick(pool: list, num_nodes: int, mix: float, p_uniform: float, rng) -> int:
    """Preferential choice from an endpoint pool with uniform mixing."""
    if mix < p_uniform or not pool:
        return int(rng.integers(0, num_nodes))
    return pool[int(rng.integers(0, len(pool)))]


def degree_sequences(
    src: np.ndarray, dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Out-degree and in-degree sequences of an edge list."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    out_deg = np.bincount(src, minlength=n)
    in_deg = np.bincount(dst, minlength=n)
    return out_deg, in_deg


@dataclass(frozen=True)
class EdgeStream:
    """A graph streamed as timestamped edges.

    ``source_keys`` are the keys used to split the stream among source
    PEIs (the edge's source vertex) and ``worker_keys`` the keys used to
    partition among workers (the destination vertex) -- the re-keying
    performed by the source PE in the paper's Q3 setup ("the source PE
    inverts the edge").
    """

    source_keys: np.ndarray
    worker_keys: np.ndarray

    def __post_init__(self) -> None:
        if len(self.source_keys) != len(self.worker_keys):
            raise ValueError("source and worker key arrays must align")

    def __len__(self) -> int:
        return len(self.worker_keys)

    @classmethod
    def from_graph(cls, src: np.ndarray, dst: np.ndarray, shuffle_seed: Optional[int] = None) -> "EdgeStream":
        """Stream a graph's edges, optionally in random arrival order."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if shuffle_seed is not None:
            order = np.random.default_rng(shuffle_seed).permutation(len(src))
            src, dst = src[order], dst[order]
        return cls(source_keys=src, worker_keys=dst)

    @classmethod
    def generate(
        cls,
        num_edges: int,
        seed: int = 0,
        shuffle_arrivals: bool = True,
        **kwargs,
    ) -> "EdgeStream":
        """Generate a scale-free digraph and stream its edges."""
        src, dst = scale_free_digraph(num_edges, seed=seed, **kwargs)
        shuffle_seed = seed + 1 if shuffle_arrivals else None
        return cls.from_graph(src, dst, shuffle_seed=shuffle_seed)
