"""Key distributions: the discrete distribution D of Section IV.

Keys are identified with their ranks ``0 .. K-1`` ordered by decreasing
probability (``p1 >= p2 >= ...``), as in the paper.  Every distribution
exposes the probability vector, the head probability ``p1`` (the single
quantity that drives the paper's feasibility threshold ``W = O(1/p1)``),
and fast sampling through a cached inverse-CDF.

Two streaming extras feed the runtime's bounded-memory mode:

* :meth:`KeyDistribution.chunk_source` wraps sampling in a
  :class:`~repro.core.chunks.ChunkSource`.  Because ``Generator.random``
  consumes the underlying bit stream sequentially, chunked inverse-CDF
  draws concatenate **byte-identically** to one materialised
  ``sample(m)`` under the same seed -- the property the runtime's
  streaming ``--verify`` rests on.
* :class:`AliasSampler` (Vose's alias method) is the O(1)-per-draw
  alternative for huge key universes: O(K) build, one uniform and two
  table reads per key, no binary search.  Same rng consumption (one
  ``random()`` per draw) but a *different* mapping from uniforms to
  keys, so it is deterministic under a seed yet not byte-identical to
  the inverse-CDF stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.core.chunks import DEFAULT_CHUNK_SIZE, ChunkSource


class KeyDistribution(ABC):
    """A discrete distribution over the key universe ``[0, K)``.

    Subclasses implement :meth:`_build_probabilities`; the base class
    caches the probability vector (sorted by decreasing probability) and
    its CDF for O(log K) sampling per message.
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._cdf: Optional[np.ndarray] = None
        self._alias: Optional["AliasSampler"] = None

    @abstractmethod
    def _build_probabilities(self) -> np.ndarray:
        """Return the (unnormalised is fine) probability weights."""

    @property
    def probabilities(self) -> np.ndarray:
        """Probability of each key, sorted in decreasing order."""
        if self._probs is None:
            weights = np.asarray(self._build_probabilities(), dtype=np.float64)
            if weights.ndim != 1 or weights.size == 0:
                raise ValueError("distribution must have at least one key")
            if np.any(weights < 0):
                raise ValueError("key weights must be non-negative")
            total = weights.sum()
            if total <= 0:
                raise ValueError("key weights must have positive total mass")
            probs = weights / total
            # Sort in decreasing order so rank 0 is the hottest key.
            self._probs = np.sort(probs)[::-1].copy()
        return self._probs

    @property
    def num_keys(self) -> int:
        """Size of the key universe, ``K``."""
        return int(self.probabilities.size)

    @property
    def p1(self) -> float:
        """Probability of the most frequent key (the paper's ``p1``)."""
        return float(self.probabilities[0])

    def head_mass(self, top: int) -> float:
        """Total probability of the ``top`` most frequent keys."""
        return float(self.probabilities[:top].sum())

    def entropy(self) -> float:
        """Shannon entropy of the key distribution in nats."""
        p = self.probabilities
        nz = p[p > 0]
        return float(-(nz * np.log(nz)).sum())

    def feasible_workers(self) -> int:
        """The ``O(1/p1)`` upper bound on usefully balanceable workers.

        Section IV: once the number of workers exceeds ``2/p1`` the two
        bins holding the hottest key must become overloaded, so good
        balance with two choices is only possible for ``n <= 2/p1``.
        """
        return int(np.floor(2.0 / self.p1))

    def sample(
        self,
        size: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. keys (as int64 ranks) from D.

        Randomness must be explicit: pass a ``Generator`` via ``rng``
        or an integer ``seed`` (REPRO001 -- an entropy-seeded default
        would break byte-identical artifact replays).
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if rng is None:
            if seed is None:
                raise ValueError(
                    "sample() needs explicit randomness: pass rng=<Generator> "
                    "or seed=<int> (unseeded draws are non-reproducible)"
                )
            rng = np.random.default_rng(seed)
        elif seed is not None:
            raise ValueError("pass either rng or seed, not both")
        if self._cdf is None:
            self._cdf = np.cumsum(self.probabilities)
            self._cdf[-1] = 1.0
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_counts(self, num_messages: int) -> np.ndarray:
        """Expected number of occurrences per key in a stream of length m."""
        return self.probabilities * float(num_messages)

    def alias_sampler(self) -> "AliasSampler":
        """The cached Vose alias sampler for this distribution."""
        if self._alias is None:
            self._alias = AliasSampler(self.probabilities)
        return self._alias

    def chunk_source(
        self,
        num_messages: int,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        method: str = "cdf",
    ) -> "DistributionChunkSource":
        """A bounded-memory :class:`~repro.core.chunks.ChunkSource` of D.

        ``method="cdf"`` draws through the inverse CDF -- byte-identical
        to ``sample(num_messages, seed=seed)`` chunk boundaries or not,
        because sequential ``Generator.random`` calls concatenate
        exactly.  ``method="alias"`` draws through the alias table --
        O(1) per key instead of O(log K), still deterministic under the
        seed, but a different stream.
        """
        return DistributionChunkSource(
            self, num_messages, seed=seed, chunk_size=chunk_size, method=method
        )


class AliasSampler:
    """Vose's alias method: O(K) build, O(1) per draw.

    The key universe is split into ``K`` equal-mass columns; column
    ``i`` keeps probability ``prob[i]`` of returning key ``i`` and
    hands the rest to ``alias[i]``.  One uniform per draw selects the
    column (integer part) and the branch (fractional part) -- no
    binary search, so sampling cost is independent of ``K``.
    """

    def __init__(self, probabilities: Sequence[float]) -> None:
        p = np.ascontiguousarray(probabilities, dtype=np.float64)
        if p.ndim != 1 or p.size == 0:
            raise ValueError("probabilities must be a non-empty 1-d array")
        total = float(p.sum())
        if total <= 0 or np.any(p < 0):
            raise ValueError("probabilities must be non-negative with positive mass")
        num_keys = int(p.size)
        scaled = (p / total * num_keys).tolist()
        prob = np.ones(num_keys, dtype=np.float64)
        alias = np.arange(num_keys, dtype=np.int64)
        small = [i for i in range(num_keys) if scaled[i] < 1.0]
        large = [i for i in range(num_keys) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            big = large.pop()
            prob[s] = scaled[s]
            alias[s] = big
            scaled[big] -= 1.0 - scaled[s]
            (small if scaled[big] < 1.0 else large).append(big)
        # Leftovers are exactly-1 columns up to float round-off.
        self._prob = prob
        self._alias = alias
        self.num_keys = num_keys

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` i.i.d. keys (one uniform per draw)."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        u = rng.random(size) * self.num_keys
        idx = u.astype(np.int64)
        # u * K can round up to exactly K in float64; clamp to the
        # last column instead of indexing out of bounds.
        np.minimum(idx, self.num_keys - 1, out=idx)
        frac = u - idx
        return np.where(frac < self._prob[idx], idx, self._alias[idx])


class DistributionChunkSource(ChunkSource):
    """Chunk-wise i.i.d. sampling from a :class:`KeyDistribution`."""

    METHODS = ("cdf", "alias")

    def __init__(
        self,
        distribution: KeyDistribution,
        num_messages: int,
        seed: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        method: str = "cdf",
    ) -> None:
        if method not in self.METHODS:
            raise ValueError(
                f"method must be one of {self.METHODS}, got {method!r}"
            )
        super().__init__(num_messages, seed=seed, chunk_size=chunk_size)
        self.distribution = distribution
        self.method = method

    def sample_chunk(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if self.method == "alias":
            return self.distribution.alias_sampler().sample(size, rng)
        return self.distribution.sample(size, rng)


class ZipfKeyDistribution(KeyDistribution):
    """Zipf (power-law) distribution: ``p_i proportional to i^-s``.

    The canonical model for word frequencies ("the distribution of word
    frequencies follows a Zipf law", Section II-A).
    """

    def __init__(self, exponent: float, num_keys: int):
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        super().__init__()
        self.exponent = float(exponent)
        self._num_keys = int(num_keys)

    def _build_probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self._num_keys + 1, dtype=np.float64)
        return ranks ** (-self.exponent)

    def __repr__(self) -> str:
        return f"ZipfKeyDistribution(exponent={self.exponent}, num_keys={self._num_keys})"


class UniformKeyDistribution(KeyDistribution):
    """Uniform distribution over ``K`` keys.

    The worst case of Theorem 4.2 is the uniform distribution over
    ``5n`` keys; used by the analysis benchmarks.
    """

    def __init__(self, num_keys: int):
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        super().__init__()
        self._num_keys = int(num_keys)

    def _build_probabilities(self) -> np.ndarray:
        return np.full(self._num_keys, 1.0 / self._num_keys)

    def __repr__(self) -> str:
        return f"UniformKeyDistribution(num_keys={self._num_keys})"


class LogNormalKeyDistribution(KeyDistribution):
    """Keys as integer-rounded samples of a log-normal variable.

    The paper's synthetic datasets LN1 (mu=1.789, sigma=2.366) and LN2
    (mu=2.245, sigma=1.133) emulate Orkut workloads [22]: each message's
    key is a log-normal draw rounded to the nearest integer.  The
    probability of key ``k`` is therefore the log-normal mass of the
    interval ``(k - 1/2, k + 1/2]``; this discretisation reproduces the
    head probabilities Table I reports (14.71% for LN1, 7.01% for LN2),
    which a weights-per-key construction cannot.

    ``num_keys`` truncates the (infinite) integer support; the tail mass
    beyond it is renormalised away, which perturbs ``p1`` only in the
    4th decimal for the paper's parameter choices.
    """

    def __init__(self, mu: float, sigma: float, num_keys: int, seed: int = 0):
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        super().__init__()
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.seed = int(seed)  # kept for API compatibility; unused
        self._num_keys = int(num_keys)

    def _build_probabilities(self) -> np.ndarray:
        # P(round(X) = k) = Phi((ln(k+.5)-mu)/sigma) - Phi((ln(k-.5)-mu)/sigma)
        # with the k = 0 bin collecting all mass below 0.5.
        from math import erf, sqrt

        edges = np.arange(self._num_keys, dtype=np.float64) + 0.5
        z = (np.log(edges) - self.mu) / self.sigma
        cdf = 0.5 * (1.0 + np.vectorize(erf)(z / sqrt(2.0)))
        probs = np.empty(self._num_keys, dtype=np.float64)
        probs[0] = cdf[0]
        probs[1:] = np.diff(cdf)
        return probs

    def __repr__(self) -> str:
        return (
            f"LogNormalKeyDistribution(mu={self.mu}, sigma={self.sigma}, "
            f"num_keys={self._num_keys})"
        )


class EmpiricalKeyDistribution(KeyDistribution):
    """A distribution given directly by observed counts or weights."""

    def __init__(self, weights: Sequence[float]):
        super().__init__()
        self._weights = np.asarray(weights, dtype=np.float64)

    def _build_probabilities(self) -> np.ndarray:
        return self._weights

    @classmethod
    def from_stream(cls, keys: np.ndarray) -> "EmpiricalKeyDistribution":
        """Fit the empirical distribution of an observed key stream."""
        counts = np.bincount(np.asarray(keys, dtype=np.int64))
        return cls(counts[counts > 0])

    def __repr__(self) -> str:
        return f"EmpiricalKeyDistribution(num_keys={self._weights.size})"


def zipf_p1(exponent: float, num_keys: int) -> float:
    """Head probability of a Zipf(``exponent``) law over ``num_keys`` keys."""
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    return float(1.0 / (ranks ** (-float(exponent))).sum())


def calibrate_zipf_exponent(
    num_keys: int,
    target_p1: float,
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Find the Zipf exponent whose head probability matches ``target_p1``.

    This is how the synthetic stand-ins for the paper's datasets are
    built: Table I reports ``p1`` for each dataset, and ``p1`` is the
    statistic that locates the imbalance phase transition (Section IV),
    so we solve for the exponent that reproduces it exactly.

    Uses bisection; ``p1`` is strictly increasing in the exponent, from
    ``1/K`` at 0 towards 1 as the exponent grows.
    """
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    if not (0.0 < target_p1 < 1.0):
        raise ValueError(f"target_p1 must be in (0, 1), got {target_p1}")
    floor_p1 = 1.0 / num_keys
    if target_p1 < floor_p1:
        raise ValueError(
            f"target p1 {target_p1} is below the uniform floor 1/K = {floor_p1}; "
            f"reduce num_keys or raise target_p1"
        )

    lo, hi = 0.0, 1.0
    while zipf_p1(hi, num_keys) < target_p1:
        hi *= 2.0
        if hi > 64:
            raise RuntimeError("failed to bracket the Zipf exponent")
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        if zipf_p1(mid, num_keys) < target_p1:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    return 0.5 * (lo + hi)
