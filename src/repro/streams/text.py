"""Synthetic text streams: the TW word-stream scenario made concrete.

The paper's Twitter dataset is "a sample of tweets ... parsed and split
into its words, which are used as the key for the message".  This
module generates a synthetic corpus with the same pipeline: documents
(tweets) whose words follow a Zipf law, a tokenizer, and a word-stream
adapter, so the word-count examples and the DSPE topology can consume
realistic-looking text rather than pre-baked integer keys.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.streams.distributions import KeyDistribution, ZipfKeyDistribution

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def synthetic_vocabulary(size: int, seed: int = 0) -> List[str]:
    """Pronounceable, distinct fake words ordered by popularity rank."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    rng = np.random.default_rng(seed)
    words: List[str] = []
    seen = set()
    while len(words) < size:
        syllables = rng.integers(1, 4)
        word = "".join(
            _CONSONANTS[rng.integers(0, len(_CONSONANTS))]
            + _VOWELS[rng.integers(0, len(_VOWELS))]
            for _ in range(syllables)
        )
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class SyntheticTextStream:
    """A stream of documents whose word frequencies follow ``distribution``.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct words.
    distribution:
        Word-rank distribution; defaults to a Zipf(1.05) law, the
        classic model for natural-language word frequencies.
    words_per_document:
        Mean document length (tweet-sized by default); actual lengths
        are Poisson distributed (min 1).
    seed:
        Seeds vocabulary, lengths and word draws.
    """

    def __init__(
        self,
        vocabulary_size: int = 10_000,
        distribution: Optional[KeyDistribution] = None,
        words_per_document: float = 12.0,
        seed: int = 0,
    ):
        if words_per_document <= 0:
            raise ValueError("words_per_document must be positive")
        self.distribution = distribution or ZipfKeyDistribution(
            1.05, vocabulary_size
        )
        if self.distribution.num_keys != vocabulary_size:
            raise ValueError(
                "distribution key universe must match vocabulary_size"
            )
        self.vocabulary = synthetic_vocabulary(vocabulary_size, seed)
        self.words_per_document = float(words_per_document)
        self.seed = int(seed)

    def documents(self, count: int) -> Iterator[str]:
        """Yield ``count`` space-joined documents."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(self.seed + 1)
        lengths = np.maximum(1, rng.poisson(self.words_per_document, count))
        ranks = self.distribution.sample(int(lengths.sum()), rng)
        pos = 0
        for n in lengths:
            chunk = ranks[pos : pos + n]
            pos += n
            yield " ".join(self.vocabulary[r] for r in chunk)

    def words(self, num_words: int) -> Iterator[str]:
        """Yield a flat stream of ``num_words`` words (the TW pipeline)."""
        if num_words < 0:
            raise ValueError(f"num_words must be >= 0, got {num_words}")
        rng = np.random.default_rng(self.seed + 2)
        ranks = self.distribution.sample(num_words, rng)
        vocab = self.vocabulary
        for r in ranks:
            yield vocab[r]


def tokenize(document: str) -> List[str]:
    """Split a document into word keys (lower-cased, blank-safe)."""
    return [w for w in document.lower().split() if w]
