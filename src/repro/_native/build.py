"""On-demand compilation and loading of the C routing kernels.

No build system, no new dependencies: when a system C compiler exists,
``kernels.c`` is compiled once into ``_kernels_<hash>.so`` next to this
module (hash over source + platform, so stale binaries are never
reused) and bound through :mod:`ctypes`.  When compilation is
impossible -- no compiler, read-only checkout, sandboxed subprocess --
:func:`get_kernels` returns ``None`` and callers use the pure-Python
chunk loops, which are decision-identical.

Set ``REPRO_NO_NATIVE=1`` to force the pure-Python paths (used by the
equivalence tests to compare both implementations).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["NativeKernels", "get_kernels", "native_disabled"]

_SOURCE = Path(__file__).with_name("kernels.c")
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_DOUBLE_P = ctypes.POINTER(ctypes.c_double)

#: cached load result; False = not attempted yet
_KERNELS: object = False


def native_disabled() -> bool:
    """Whether the ``REPRO_NO_NATIVE`` escape hatch is set."""
    return os.environ.get("REPRO_NO_NATIVE", "").strip() not in ("", "0")


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _build_tag() -> str:
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(platform.machine().encode())
    digest.update((sysconfig.get_platform() or "").encode())
    return digest.hexdigest()[:16]


def _shared_object_path() -> Path:
    return _SOURCE.with_name(f"_kernels_{_build_tag()}.so")


def _compile(compiler: str, target: Path) -> bool:
    """Compile kernels.c to ``target`` atomically; True on success."""
    try:
        fd, tmp_name = tempfile.mkstemp(
            suffix=".so", prefix=".kernels-", dir=str(target.parent)
        )
        os.close(fd)
    except OSError:
        return False
    tmp = Path(tmp_name)
    cmd = [compiler, "-O3", "-shared", "-fPIC", str(_SOURCE), "-o", str(tmp)]
    try:
        result = subprocess.run(
            cmd, capture_output=True, timeout=120, check=False
        )
        if result.returncode != 0:
            return False
        os.replace(tmp, target)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


class NativeKernels:
    """ctypes bindings over the compiled routing kernels."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.repro_greedy_route.argtypes = [
            _INT64_P, ctypes.c_int64, ctypes.c_int64, _INT64_P, _INT64_P,
        ]
        lib.repro_least_loaded.argtypes = [
            ctypes.c_int64, ctypes.c_int64, _INT64_P, _INT64_P,
        ]
        lib.repro_bind_route.argtypes = [
            _INT64_P, ctypes.c_int64, _INT64_P, ctypes.c_int64,
            ctypes.c_int64, _INT64_P, _INT64_P, _INT64_P,
        ]
        lib.repro_interleaved_route.argtypes = [
            _INT64_P, ctypes.c_int64, ctypes.c_int64, _INT64_P,
            ctypes.c_int64, _INT64_P, _INT64_P, _DOUBLE_P,
            ctypes.c_double, _DOUBLE_P, _INT64_P,
        ]
        lib.repro_counting_scatter.argtypes = [
            _INT64_P, ctypes.c_int64, ctypes.c_int64, _INT64_P, _INT64_P,
        ]
        for fn in (
            lib.repro_greedy_route,
            lib.repro_least_loaded,
            lib.repro_bind_route,
            lib.repro_interleaved_route,
            lib.repro_counting_scatter,
        ):
            fn.restype = None

    @staticmethod
    def _i64(array: np.ndarray):
        assert array.dtype == np.int64 and array.flags.c_contiguous
        return array.ctypes.data_as(_INT64_P)

    @staticmethod
    def _f64(array: Optional[np.ndarray]):
        if array is None:
            return None
        assert array.dtype == np.float64 and array.flags.c_contiguous
        return array.ctypes.data_as(_DOUBLE_P)

    def greedy_route(
        self, choices: np.ndarray, loads: np.ndarray, out: np.ndarray
    ) -> None:
        m, d = choices.shape
        self._lib.repro_greedy_route(
            self._i64(choices), m, d, self._i64(loads), self._i64(out)
        )

    def least_loaded(self, m: int, loads: np.ndarray, out: np.ndarray) -> None:
        self._lib.repro_least_loaded(
            m, loads.size, self._i64(loads), self._i64(out)
        )

    def bind_route(
        self,
        codes: np.ndarray,
        choices: Optional[np.ndarray],
        num_workers: int,
        table: np.ndarray,
        loads: np.ndarray,
        out: np.ndarray,
    ) -> None:
        d = choices.shape[1] if choices is not None else 0
        self._lib.repro_bind_route(
            self._i64(codes),
            codes.size,
            self._i64(choices) if choices is not None else None,
            d,
            num_workers,
            self._i64(table),
            self._i64(loads),
            self._i64(out),
        )

    def counting_scatter(
        self,
        dest: np.ndarray,
        base: int,
        cursors: np.ndarray,
        out: np.ndarray,
    ) -> None:
        self._lib.repro_counting_scatter(
            self._i64(dest), dest.size, base, self._i64(cursors), self._i64(out)
        )

    def interleaved_route(
        self,
        choices: np.ndarray,
        sources: np.ndarray,
        num_workers: int,
        views: Optional[np.ndarray],
        true_loads: np.ndarray,
        times: Optional[np.ndarray],
        probe_period: float,
        next_probe: Optional[np.ndarray],
        out: np.ndarray,
    ) -> None:
        m, d = choices.shape
        self._lib.repro_interleaved_route(
            self._i64(choices),
            m,
            d,
            self._i64(sources),
            num_workers,
            self._i64(views) if views is not None else None,
            self._i64(true_loads),
            self._f64(times),
            probe_period,
            self._f64(next_probe),
            self._i64(out),
        )


def get_kernels() -> Optional[NativeKernels]:
    """The native kernels, building them on first use; None if unavailable."""
    global _KERNELS
    if native_disabled():
        return None
    if _KERNELS is not False:
        return _KERNELS
    _KERNELS = None
    try:
        target = _shared_object_path()
        if not target.exists():
            compiler = _find_compiler()
            if compiler is None or not _compile(compiler, target):
                return None
        _KERNELS = NativeKernels(ctypes.CDLL(str(target)))
    except OSError:
        _KERNELS = None
    return _KERNELS
