"""Optional C acceleration for the chunked routing loops.

Only source lives in the repository (``kernels.c`` + the ctypes
builder); compiled ``*.so`` artifacts are produced on demand next to
this package and are gitignored.  Everything here is optional: callers
must treat ``get_kernels() is None`` as the normal no-compiler case and
fall back to the pure-Python chunk loops.
"""

from repro._native.build import NativeKernels, get_kernels, native_disabled

__all__ = ["NativeKernels", "get_kernels", "native_disabled"]
