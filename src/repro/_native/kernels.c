/* Routing kernels for the chunked execution core.
 *
 * Each kernel is the exact C transliteration of a pure-Python chunk
 * loop in repro.core.engine / repro.partitioning: same iteration
 * order, same strict-less argmin with ties to the earliest candidate,
 * same load updates.  Equivalence is enforced by
 * tests/test_native_kernels.py and tests/test_route_chunk_equivalence.py.
 *
 * Compiled on demand by repro._native.build via the system C compiler;
 * pure-Python fallbacks cover environments without one.
 */

#include <stdint.h>
#include <string.h>

/* Greedy-d routing (PKG / ch-pkg inner loop): each message goes to the
 * least-loaded of its d candidate workers; ties break to the earliest
 * candidate; the chosen worker's load is incremented immediately. */
void repro_greedy_route(const int64_t *choices, int64_t m, int64_t d,
                        int64_t *loads, int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        const int64_t *cand = choices + i * d;
        int64_t best = cand[0];
        int64_t best_load = loads[best];
        for (int64_t j = 1; j < d; j++) {
            int64_t c = cand[j];
            if (loads[c] < best_load) {
                best = c;
                best_load = loads[c];
            }
        }
        loads[best] += 1;
        out[i] = best;
    }
}

/* Least-loaded routing (the d = W limit): argmin over the whole load
 * vector, ties to the lowest worker index. */
void repro_least_loaded(int64_t m, int64_t num_workers, int64_t *loads,
                        int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t best = 0;
        int64_t best_load = loads[0];
        for (int64_t w = 1; w < num_workers; w++) {
            if (loads[w] < best_load) {
                best = w;
                best_load = loads[w];
            }
        }
        loads[best] += 1;
        out[i] = best;
    }
}

/* First-sight binding (PoTC / On-Greedy): a key already in the table
 * keeps its worker; a new key (table entry < 0) binds to the
 * least-loaded of its candidates (or of all workers when choices is
 * NULL).  Loads are charged for every message, bound or not. */
void repro_bind_route(const int64_t *codes, int64_t m,
                      const int64_t *choices, int64_t d, int64_t num_workers,
                      int64_t *table, int64_t *loads, int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t code = codes[i];
        int64_t worker = table[code];
        if (worker < 0) {
            if (choices != NULL) {
                const int64_t *cand = choices + i * d;
                worker = cand[0];
                int64_t best_load = loads[worker];
                for (int64_t j = 1; j < d; j++) {
                    int64_t c = cand[j];
                    if (loads[c] < best_load) {
                        worker = c;
                        best_load = loads[c];
                    }
                }
            } else {
                worker = 0;
                int64_t best_load = loads[0];
                for (int64_t w = 1; w < num_workers; w++) {
                    if (loads[w] < best_load) {
                        worker = w;
                        best_load = loads[w];
                    }
                }
            }
            table[code] = worker;
        }
        loads[worker] += 1;
        out[i] = worker;
    }
}

/* Stable counting-sort scatter: walk message positions in arrival
 * order and append each (offset by base) to its destination bucket's
 * segment.  cursors must arrive holding each bucket's segment start
 * (the exclusive prefix sum of the bucket counts); on return each
 * cursor sits at its segment end.  Stability is structural -- each
 * cursor only moves forward -- so the output is byte-identical to a
 * stable argsort of dest. */
void repro_counting_scatter(const int64_t *dest, int64_t n, int64_t base,
                            int64_t *cursors, int64_t *out)
{
    for (int64_t i = 0; i < n; i++)
        out[cursors[dest[i]]++] = base + i;
}

/* Multi-source interleaved Greedy-d under a load-estimation mode:
 *   views == NULL            -> global mode (every source reads/writes
 *                               true_loads directly);
 *   views != NULL            -> local mode (source s reads/writes row s,
 *                               true_loads mirrors every send);
 *   times != NULL            -> probing: when a source's clock passes
 *                               next_probe[s], its view resyncs to the
 *                               true loads and the probe clock advances
 *                               in whole periods.
 */
void repro_interleaved_route(const int64_t *choices, int64_t m, int64_t d,
                             const int64_t *sources, int64_t num_workers,
                             int64_t *views, int64_t *true_loads,
                             const double *times, double probe_period,
                             double *next_probe, int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t s = sources[i];
        int64_t *view = views != NULL ? views + s * num_workers : true_loads;
        if (times != NULL && times[i] >= next_probe[s]) {
            memcpy(view, true_loads, (size_t)num_workers * sizeof(int64_t));
            while (next_probe[s] <= times[i])
                next_probe[s] += probe_period;
        }
        const int64_t *cand = choices + i * d;
        int64_t best = cand[0];
        int64_t best_load = view[best];
        for (int64_t j = 1; j < d; j++) {
            int64_t c = cand[j];
            if (view[c] < best_load) {
                best = c;
                best_load = view[c];
            }
        }
        view[best] += 1;
        if (view != true_loads)
            true_loads[best] += 1;
        out[i] = best;
    }
}
