"""Run the simulated Storm word-count cluster (the paper's Q4 testbed).

Deploys the 1-spout + 9-counter topology under each partitioning scheme
at two CPU delays, then once more with the aggregation stage enabled --
a miniature of Figures 5(a) and 5(b).

Run:  python examples/wordcount_topology.py
"""

from repro.dspe import ClusterConfig, run_wordcount
from repro.streams import get_dataset


def main() -> None:
    distribution = get_dataset("WP").distribution()

    print("== throughput vs CPU delay (Fig 5a miniature) ==")
    print(f"{'scheme':6s} {'delay':>7s} {'keys/s':>8s} {'mean lat':>9s} {'p99 lat':>9s}")
    for delay in (0.1e-3, 1.0e-3):
        for scheme in ("kg", "sg", "pkg"):
            cfg = ClusterConfig(cpu_delay=delay, duration=10.0, warmup=2.0)
            m = run_wordcount(scheme, distribution, cfg)
            print(
                f"{m.scheme:6s} {delay * 1e3:6.1f}ms {m.throughput:8.0f} "
                f"{m.latency.mean * 1e3:8.2f}ms {m.latency.percentile(99) * 1e3:8.2f}ms"
            )

    print("\n== with periodic aggregation (Fig 5b miniature) ==")
    print(f"{'scheme':6s} {'period':>7s} {'keys/s':>8s} {'avg counters':>13s}")
    for scheme in ("pkg", "sg"):
        for period in (2.0, 10.0):
            cfg = ClusterConfig(
                cpu_delay=0.4e-3,
                duration=30.0,
                warmup=10.0,
                aggregation_period=period,
            )
            m = run_wordcount(scheme, distribution, cfg)
            print(
                f"{m.scheme:6s} {period:6.0f}s {m.throughput:8.0f} "
                f"{m.average_memory_counters:13.0f}"
            )
    kg = run_wordcount(
        "kg",
        distribution,
        ClusterConfig(cpu_delay=0.4e-3, duration=30.0, warmup=10.0),
    )
    print(f"{'KG':6s} {'none':>7s} {kg.throughput:8.0f} {kg.average_memory_counters:13.0f}")


if __name__ == "__main__":
    main()
