"""Run the simulated Storm word-count cluster (the paper's Q4 testbed).

Deploys the 1-spout + 9-counter topology under each partitioning scheme
at two CPU delays, then once more with the aggregation stage enabled --
a miniature of Figures 5(a) and 5(b) -- and finally a heterogeneous
cluster with a straggling worker, all through the fluent
``repro.api.Topology`` builder.

Run:  PYTHONPATH=src python examples/wordcount_topology.py
"""

from repro.api import Topology, run


def main() -> None:
    print("== throughput vs CPU delay (Fig 5a miniature) ==")
    print(f"{'scheme':6s} {'delay':>7s} {'keys/s':>8s} {'mean lat':>9s} {'p99 lat':>9s}")
    for delay in (0.1e-3, 1.0e-3):
        for scheme in ("kg", "sg", "pkg"):
            topo = (
                Topology()
                .source("WP")
                .partition_by(scheme)
                .workers(9, cpu_delay=delay)
                .timing(duration=10.0, warmup=2.0)
            )
            m = run(topo)
            print(
                f"{m.scheme:6s} {delay * 1e3:6.1f}ms {m.throughput:8.0f} "
                f"{m.latency_mean * 1e3:8.2f}ms {m.latency_p99 * 1e3:8.2f}ms"
            )

    print("\n== with periodic aggregation (Fig 5b miniature) ==")
    print(f"{'scheme':6s} {'period':>7s} {'keys/s':>8s} {'avg counters':>13s}")
    for scheme in ("pkg", "sg"):
        for period in (2.0, 10.0):
            topo = (
                Topology()
                .source("WP")
                .partition_by(scheme)
                .workers(9, cpu_delay=0.4e-3)
                .aggregate(every=period)
                .timing(duration=30.0, warmup=10.0)
            )
            m = run(topo)
            print(
                f"{m.scheme:6s} {period:6.0f}s {m.throughput:8.0f} "
                f"{m.average_memory:13.0f}"
            )
    kg = run(
        Topology()
        .source("WP")
        .partition_by("kg")
        .workers(9, cpu_delay=0.4e-3)
        .timing(duration=30.0, warmup=10.0)
    )
    print(f"{'KG':6s} {'none':>7s} {kg.throughput:8.0f} {kg.average_memory:13.0f}")

    print("\n== straggler injection: worker 0 slowed 4x ==")
    print(f"{'scheme':6s} {'keys/s':>8s} {'p99 lat':>9s}")
    for scheme in ("kg", "pkg"):
        topo = (
            Topology()
            .source("WP")
            .partition_by(scheme)
            .workers(9, cpu_delay=0.4e-3)
            .straggler(0, factor=4.0)
            .timing(duration=10.0, warmup=2.0)
        )
        m = run(topo)
        print(f"{m.scheme:6s} {m.throughput:8.0f} {m.latency_p99 * 1e3:8.2f}ms")


if __name__ == "__main__":
    main()
