"""Distributed heavy hitters over a drifting cashtag-like stream.

Eight workers run SPACESAVING summaries over a PKG-partitioned stream
whose hot keys drift over time (the paper's CT scenario).  Queries
probe at most two summaries per key (Section VI-C), and the merged
error bound stays independent of the worker count.

Run:  python examples/heavy_hitters_monitor.py
"""

from repro.api import make_partitioner
from repro.applications import DistributedHeavyHitters, exact_top_k
from repro.streams import get_dataset


def main() -> None:
    spec = get_dataset("CT")
    keys = spec.stream(200_000, seed=11).tolist()

    pkg = DistributedHeavyHitters(make_partitioner("pkg", 8), capacity=128)
    sg = DistributedHeavyHitters(make_partitioner("sg", 8), capacity=128)
    pkg.process_stream(keys)
    sg.process_stream(keys)

    truth = exact_top_k(keys, 10)
    print("rank  key      true  PKG est (err<=)   SG est (err<=)")
    for rank, (key, true_count) in enumerate(truth, 1):
        print(
            f"{rank:4d}  {key:7d} {true_count:6d}  "
            f"{pkg.estimate(key):7d} ({pkg.error_bound(key):5d})   "
            f"{sg.estimate(key):7d} ({sg.error_bound(key):5d})"
        )

    pkg_probes = max(pkg.summaries_probed(k) for k, _ in truth)
    sg_probes = max(sg.summaries_probed(k) for k, _ in truth)
    print(
        f"\nsummaries probed per query (worst case over top keys): "
        f"PKG={pkg_probes} SG={sg_probes} (of {pkg.num_workers} workers)"
    )
    print(
        f"worker load imbalance: PKG={pkg.load_imbalance():.0f} "
        f"SG={sg.load_imbalance():.0f} messages"
    )
    found = [k for k, _ in pkg.top_k(10)]
    hits = len(set(found) & {k for k, _ in truth})
    print(f"PKG recovered {hits}/10 of the true top-10")


if __name__ == "__main__":
    main()
