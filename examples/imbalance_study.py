"""Imbalance study across all Table I datasets (miniature Figure 2).

For each dataset, compare hashing, the PKG global oracle, and PKG with
local estimation at 5 sources, across worker counts -- and show where
each dataset's O(1/p1) feasibility threshold falls.

Run:  python examples/imbalance_study.py
"""

from repro.analysis import feasible_workers
from repro.experiments import ExperimentConfig, run_fig2
from repro.streams import DATASETS


def main() -> None:
    config = ExperimentConfig(scale=0.2, workers=(5, 10, 50, 100), sources=(5,))
    rows = run_fig2(config, datasets=("WP", "TW", "CT", "LN1", "LN2"))

    print("feasibility thresholds (W = 2/p1):")
    for symbol in ("WP", "TW", "CT", "LN1", "LN2"):
        p1 = DATASETS[symbol].paper_p1_percent / 100.0
        print(f"  {symbol:4s} p1={p1:.2%}  ->  W <= {feasible_workers(p1)}")

    print("\nfraction of average imbalance (lower is better):")
    datasets = list(dict.fromkeys(r.dataset for r in rows))
    workers = sorted({r.num_workers for r in rows})
    techniques = list(dict.fromkeys(r.technique for r in rows))
    for d in datasets:
        print(f"\n[{d}]")
        print("tech  " + "".join(f"{f'W={w}':>12s}" for w in workers))
        for t in techniques:
            vals = []
            for w in workers:
                match = [
                    r
                    for r in rows
                    if r.dataset == d and r.technique == t and r.num_workers == w
                ]
                vals.append(f"{match[0].average_imbalance_fraction:12.2e}")
            print(f"{t:5s} " + "".join(vals))


if __name__ == "__main__":
    main()
