"""Quickstart: the unified ``repro.api`` facade in one tour.

One import surface covers everything: the partitioner registry
(``make_partitioner``, spec strings like ``"pkg:d=3"``), the frequency
simulation and the DSPE cluster simulation (both behind ``run()``), and
the fluent ``Topology`` builder.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro.api import Topology, available_schemes, make_partitioner, run


def main() -> None:
    print("registered schemes:", ", ".join(available_schemes()))

    # -- 1. Frequency-only comparison (the paper's Q1 simulations) ----
    # Replay a synthetic Wikipedia-like stream (Table I's WP: p1 ~ 9%)
    # through each scheme and compare load imbalance.
    print(f"\n{'scheme':24s} {'avg imbalance':>14s} {'fraction':>10s} {'memory':>8s}")
    for spec, label in [
        ("kg", "key grouping (hash)"),
        ("sg", "shuffle grouping"),
        ("potc", "static PoTC"),
        ("pkg", "PARTIAL KEY GROUPING"),
    ]:
        result = run(
            spec, dataset="WP", num_workers=10, num_messages=300_000, seed=7
        )
        print(
            f"{label:24s} {result.average_imbalance:14.1f} "
            f"{result.average_imbalance_fraction:10.2e} "
            f"{result.average_memory:8.0f}"
        )

    # -- 2. Spec strings: the d-choices ablation in one line each -----
    print(f"\n{'spec':10s} {'avg imbalance fraction':>22s}")
    for spec in ("pkg:d=1", "pkg:d=2", "pkg:d=4"):
        result = run(
            spec, dataset="WP", num_workers=10, num_messages=300_000, seed=7
        )
        print(f"{spec:10s} {result.average_imbalance_fraction:22.2e}")

    # -- 3. Key splitting in action -----------------------------------
    # A key is only ever handled by its two hash candidates, so stateful
    # operators keep at most two partial states per key.
    pkg = make_partitioner("pkg", 10)
    hot_key = next(k for k in range(10) if len(set(pkg.candidates(k))) == 2)
    used = {pkg.route(hot_key) for _ in range(1000)}
    print(
        f"\nhot key {hot_key}: candidates {pkg.candidates(hot_key)}, "
        f"workers actually used by 1000 messages: {sorted(used)}"
    )

    # -- 4. Full DSPE simulation via the fluent builder (Q4) ----------
    # A 1-spout, 9-counter word-count cluster; PKG's better balance
    # turns into throughput and latency wins over hashing.
    for spec in ("kg", "pkg"):
        topo = (
            Topology()
            .source("WP")
            .partition_by(spec)
            .workers(9, cpu_delay=1.0e-3)
            .timing(duration=6.0, warmup=2.0)
            .seed(1)
        )
        result = run(topo)
        print(
            f"cluster [{spec:3s}]: throughput={result.throughput:7.0f} keys/s "
            f"latency(mean)={result.latency_mean * 1e3:5.2f} ms "
            f"p99={result.latency_p99 * 1e3:5.2f} ms"
        )


if __name__ == "__main__":
    main()
