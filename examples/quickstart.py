"""Quickstart: route a skewed stream with PKG and compare against KG/SG.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    KeyGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
    ZipfKeyDistribution,
)
from repro.simulation import count_partial_states, simulate_stream


def main() -> None:
    # A Zipf-skewed stream: a handful of hot keys dominate, the classic
    # regime where hash-based key grouping falls over.  p1 ~ 9% keeps us
    # inside PKG's feasibility region (W <= 2/p1, Section IV).
    num_workers = 10
    distribution = ZipfKeyDistribution(exponent=1.084, num_keys=20_000)
    keys = distribution.sample(300_000, np.random.default_rng(7))
    print(
        f"stream: {keys.size} messages, {distribution.num_keys} keys, "
        f"p1 = {distribution.p1:.1%} (hottest key's share)"
    )

    schemes = [
        ("key grouping (hash)", KeyGrouping(num_workers)),
        ("shuffle grouping", ShuffleGrouping(num_workers)),
        ("PARTIAL KEY GROUPING", PartialKeyGrouping(num_workers)),
    ]
    print(f"\n{'scheme':24s} {'avg imbalance':>14s} {'fraction':>10s} {'partials':>9s}")
    for name, partitioner in schemes:
        result = simulate_stream(keys, partitioner, keep_assignments=True)
        partials = count_partial_states(keys, result.assignments)
        print(
            f"{name:24s} {result.average_imbalance:14.1f} "
            f"{result.average_imbalance_fraction:10.2e} {partials:9d}"
        )

    # Key splitting in action: a key is only ever handled by its two
    # hash candidates, so stateful operators keep at most two partials.
    pkg = PartialKeyGrouping(num_workers)
    hot_key = next(
        k for k in range(10) if len(set(pkg.candidates(k))) == 2
    )
    used = {pkg.route(hot_key) for _ in range(1000)}
    print(
        f"\nhot key {hot_key}: candidates {pkg.candidates(hot_key)}, "
        f"workers actually used by 1000 messages: {sorted(used)}"
    )


if __name__ == "__main__":
    main()
