"""Elastic PKG with consistent hashing (the paper's Section VII idea).

The paper notes the two PKG candidates could be chosen with consistent
hashing "using the replication technique used by Chord".  The payoff is
elasticity: growing or shrinking the worker pool relocates only the
keys whose ring arcs are touched, instead of remapping the world as
``H(k) mod W`` does.

Run:  python examples/elastic_scaling.py
"""

import numpy as np

from repro.api import make_partitioner
from repro.simulation import simulate_stream
from repro.streams import ZipfKeyDistribution


def remap_fraction_mod_hash(num_workers_before: int, num_workers_after: int, keys):
    """Fraction of keys whose worker changes under plain mod-W hashing."""
    before = make_partitioner("kg", num_workers_before, seed=1)
    after = make_partitioner("kg", num_workers_after, seed=1)
    moved = sum(1 for k in keys if before.route(k) != after.route(k))
    return moved / len(keys)


def main() -> None:
    distribution = ZipfKeyDistribution(1.0, 5000)
    keys = distribution.sample(100_000, np.random.default_rng(3))
    sample_keys = [int(k) for k in np.unique(keys)[:3000]]

    # Balance: ring-selected candidates work as well as hash candidates.
    for name, spec in (
        ("hash PKG", "pkg"),
        ("ring PKG", "ch-pkg"),
        ("hash KG", "kg"),
    ):
        result = simulate_stream(keys, spec, num_workers=10, seed=1)
        print(f"{name:9s} avg imbalance = {result.average_imbalance:10.1f}")

    # Elasticity: shrink the pool from 10 to 9 workers.
    stable = make_partitioner("ch-pkg", 10, seed=5)
    shrunk = make_partitioner("ch-pkg", 10, seed=5)
    before = {k: stable.candidates(k) for k in sample_keys}
    shrunk.remove_worker(9)
    ring_moved = sum(1 for k in sample_keys if shrunk.candidates(k) != before[k])
    mod_moved = remap_fraction_mod_hash(10, 9, sample_keys)
    print(
        f"\nremoving 1 of 10 workers relocates:"
        f"\n  ring PKG candidate pairs : {ring_moved / len(sample_keys):6.1%}"
        f"\n  mod-W hashing keys       : {mod_moved:6.1%}"
    )
    print("(the ring moves only arcs adjacent to the removed worker)")


if __name__ == "__main__":
    main()
