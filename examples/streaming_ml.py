"""Streaming machine learning with PKG: naive Bayes and decision trees.

Reproduces the cost comparison of Sections VI-A and VI-B on synthetic
data: PKG matches shuffle grouping's load balance while keeping the
2-worker state bound (memory, merges, query probes) of key grouping.

Run:  python examples/streaming_ml.py
"""

import numpy as np

from repro.api import make_partitioner
from repro.applications import DistributedNaiveBayes, StreamingParallelDecisionTree


def categorical_data(n: int, num_features: int, seed: int):
    """Two-class categorical data with class-dependent feature bias."""
    rng = np.random.default_rng(seed)
    rows, labels = [], []
    for _ in range(n):
        y = int(rng.integers(0, 2))
        p = 0.75 if y else 0.25
        rows.append([(f, int(rng.random() < p)) for f in range(num_features)])
        labels.append(y)
    return rows, labels


def main() -> None:
    num_workers = 8

    print("== naive Bayes (vertical parallelism, Section VI-A) ==")
    train_rows, train_labels = categorical_data(4000, 8, seed=1)
    test_rows, test_labels = categorical_data(500, 8, seed=2)
    print(f"{'scheme':5s} {'accuracy':>8s} {'probes/feat':>12s} {'counters':>9s} {'imbalance':>10s}")
    for spec in ("kg", "sg", "pkg"):
        partitioner = make_partitioner(spec, num_workers)
        nb = DistributedNaiveBayes(partitioner)
        nb.train_batch(train_rows, train_labels)
        accuracy = sum(
            nb.predict(r) == t for r, t in zip(test_rows, test_labels)
        ) / len(test_labels)
        loads = nb.worker_loads()
        imbalance = max(loads) - sum(loads) / len(loads)
        print(
            f"{partitioner.name:5s} {accuracy:8.2f} {nb.probes_per_feature():12d} "
            f"{nb.counter_memory():9d} {imbalance:10.0f}"
        )

    print("\n== streaming parallel decision tree (Section VI-B) ==")
    rng = np.random.default_rng(3)
    X = rng.normal(size=(6000, 5))
    y = ((X[:, 0] > 0.2) ^ (X[:, 2] < -0.4)).astype(int)
    print(f"{'scheme':5s} {'accuracy':>8s} {'histograms':>11s} {'bound':>7s} {'merges':>8s}")
    for spec in ("sg", "pkg"):
        partitioner = make_partitioner(spec, num_workers)
        tree = StreamingParallelDecisionTree(
            partitioner, num_features=5, num_classes=2, max_depth=4
        )
        tree.fit_stream(X, y)
        print(
            f"{partitioner.name:5s} {tree.accuracy(X, y):8.2f} "
            f"{tree.histogram_count():11d} {tree.histogram_bound():7d} "
            f"{tree.stats.merge_operations:8d}"
        )
    print(
        "\nPKG keeps the SPDT's histogram count at <= 2*D*C*L instead of"
        f" W*D*C*L, so the model no longer grows with the worker count."
    )


if __name__ == "__main__":
    main()
