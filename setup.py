"""Setup shim for environments without the ``wheel`` package.

All package metadata lives in ``pyproject.toml`` (PEP 621); normal
installs use it directly (``pip install -e .``).  This shim exists only
for offline machines lacking ``wheel`` (required by PEP 660 editable
builds), where legacy setuptools still works::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
