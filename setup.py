"""Setup shim for environments without the ``wheel`` package.

Normal installs use pyproject.toml (``pip install -e .``).  On offline
machines lacking ``wheel`` (required by PEP 660 editable builds), use::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
