"""Tests for the Section IV analysis module."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ChromaticBallsAndBins,
    expected_used_bins,
    feasible_workers,
    find_overpopulated_sets,
    greedy_d_imbalance,
    imbalance_lower_bound_hot_key,
    imbalance_upper_bound,
    max_useful_choices,
    mu_measure,
    satisfies_theorem_hypothesis,
)
from repro.analysis.bounds import single_choice_expected_maximum
from repro.analysis.measures import choice_table, used_bins
from repro.hashing import HashFamily
from repro.streams.distributions import UniformKeyDistribution, ZipfKeyDistribution


class TestBounds:
    def test_d2_bound_linear_in_m_over_n(self):
        assert imbalance_upper_bound(1000, 10, 2) == pytest.approx(100.0)

    def test_d1_bound_larger(self):
        assert imbalance_upper_bound(1000, 100, 1) > imbalance_upper_bound(
            1000, 100, 2
        )

    def test_d1_factor_is_logn_over_loglogn(self):
        m, n = 10_000, 1000
        expected = m / n * math.log(n) / math.log(math.log(n))
        assert imbalance_upper_bound(m, n, 1) == pytest.approx(expected)

    def test_small_n_does_not_crash(self):
        assert imbalance_upper_bound(100, 2, 1) >= 50.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            imbalance_upper_bound(-1, 10)
        with pytest.raises(ValueError):
            imbalance_upper_bound(10, 0)
        with pytest.raises(ValueError):
            imbalance_upper_bound(10, 10, 0)

    def test_hot_key_lower_bound_zero_when_feasible(self):
        assert imbalance_lower_bound_hot_key(10_000, 10, p1=0.1, num_choices=2) == 0.0

    def test_hot_key_lower_bound_linear_when_infeasible(self):
        # p1 = 0.5 with n = 10, d = 2: rate = 0.25 - 0.1 = 0.15
        assert imbalance_lower_bound_hot_key(1000, 10, 0.5) == pytest.approx(150.0)

    def test_invalid_p1(self):
        with pytest.raises(ValueError):
            imbalance_lower_bound_hot_key(10, 10, 1.5)

    def test_feasible_workers(self):
        assert feasible_workers(0.0932) == int(2 / 0.0932)
        assert feasible_workers(0.1, num_choices=1) == 10

    def test_feasible_workers_invalid(self):
        with pytest.raises(ValueError):
            feasible_workers(0.0)

    def test_theorem_hypothesis(self):
        assert satisfies_theorem_hypothesis(100, 10, p1=0.01)
        assert not satisfies_theorem_hypothesis(99, 10, p1=0.01)  # m < n^2
        assert not satisfies_theorem_hypothesis(100, 10, p1=0.05)  # p1 > 1/5n

    def test_max_useful_choices(self):
        assert max_useful_choices(1) == 1
        assert max_useful_choices(10) == math.ceil(10 * math.log(10))

    def test_single_choice_expected_maximum(self):
        assert single_choice_expected_maximum(1000, 1) == 1000.0
        assert single_choice_expected_maximum(1000, 10) > 100.0


class TestMuMeasures:
    def setup_method(self):
        self.dist = UniformKeyDistribution(50)
        self.family = HashFamily(size=2, seed=3)
        self.n = 10

    def test_mu1_of_everything_is_one(self):
        assert mu_measure(range(self.n), self.dist, self.family, self.n, r=1) == (
            pytest.approx(1.0)
        )

    def test_mud_monotone_in_set(self):
        small = mu_measure((0, 1), self.dist, self.family, self.n)
        large = mu_measure((0, 1, 2, 3), self.dist, self.family, self.n)
        assert large >= small

    def test_mud_le_mu1(self):
        bins = (0, 1, 2)
        mud = mu_measure(bins, self.dist, self.family, self.n)
        mu1 = mu_measure(bins, self.dist, self.family, self.n, r=1)
        assert mud <= mu1 + 1e-12

    def test_r_validation(self):
        with pytest.raises(ValueError):
            mu_measure((0,), self.dist, self.family, self.n, r=3)

    def test_hot_key_pair_is_overpopulated(self):
        # One key with probability ~1: its two bins form an
        # overpopulated set.
        dist = ZipfKeyDistribution(8.0, 50)  # p1 ~ 1
        family = HashFamily(size=2, seed=1)
        found = find_overpopulated_sets(dist, family, 10, max_size=2)
        assert found, "the hot pair must be detected"
        top_bins = set(family.choices(0, 10))
        assert any(top_bins <= set(bins) for bins, _ in found)

    def test_uniform_distribution_no_small_overpopulated_sets(self):
        # With p1 = 1/50 <= 1/(5*10) Corollary 4.7 says small sets are
        # fine w.h.p.
        found = find_overpopulated_sets(self.dist, self.family, self.n, max_size=2)
        assert all(len(bins) > 2 for bins, _ in found) or not found

    def test_choice_table_shape(self):
        table = choice_table(self.dist, self.family, self.n)
        assert table.shape == (50, 2)

    def test_used_bins_subset(self):
        bins = used_bins(self.dist, self.family, self.n)
        assert bins.min() >= 0 and bins.max() < self.n


class TestExpectedUsedBins:
    def test_formula_uniform_n_keys(self):
        n = 100
        expected = expected_used_bins(n, n, 2)
        # n(1 - (1 - 1/n)^{2n}) ~ n(1 - e^-2) ~ 0.8647 n
        assert expected == pytest.approx(n * (1 - math.exp(-2)), rel=0.01)

    def test_saturates_with_many_keys(self):
        assert expected_used_bins(10, 10_000, 2) == pytest.approx(10.0, abs=1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_used_bins(0, 10)

    def test_empirical_match(self):
        n = 50
        dist = UniformKeyDistribution(n)
        sizes = [
            used_bins(dist, HashFamily(size=2, seed=s), n).size for s in range(30)
        ]
        assert np.mean(sizes) == pytest.approx(expected_used_bins(n, n, 2), rel=0.06)


class TestChromaticProcess:
    def test_two_choices_beat_one(self):
        # Theorem 4.1's gap, observed empirically on the extremal
        # distribution (uniform over 5n keys).
        n, m = 20, 40_000
        one = greedy_d_imbalance(n, m, 1, seed=1)
        two = greedy_d_imbalance(n, m, 2, seed=1)
        assert two < one

    def test_d2_imbalance_order_m_over_n(self):
        n, m = 20, 40_000
        result = ChromaticBallsAndBins(n, 2, seed=2).run(m)
        # O(m/n) with a modest constant (Theorem 4.1, d >= 2).
        assert result.imbalance <= 3.0 * m / n
        assert result.normalized_imbalance <= 3.0

    def test_loads_conserve_balls(self):
        result = ChromaticBallsAndBins(10, 2, seed=0).run(5000)
        assert result.loads.sum() == 5000

    def test_d1_vectorized_matches_distribution(self):
        result = ChromaticBallsAndBins(10, 1, seed=0).run(5000)
        assert result.loads.sum() == 5000

    def test_three_choices_constant_factor(self):
        n, m = 20, 20_000
        two = greedy_d_imbalance(n, m, 2, seed=3)
        three = greedy_d_imbalance(n, m, 3, seed=3)
        assert three <= max(2.0 * two, 3.0 * m / n)

    def test_custom_distribution(self):
        dist = ZipfKeyDistribution(1.0, 500)
        result = ChromaticBallsAndBins(5, 2, distribution=dist, seed=0).run(10_000)
        assert result.num_balls == 10_000

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChromaticBallsAndBins(0, 2)
        with pytest.raises(ValueError):
            ChromaticBallsAndBins(5, 0)
