"""Tests for the empirical-estimation analysis utilities."""

import numpy as np
import pytest

from repro.analysis import (
    feasible_workers,
    find_transition_workers,
    fit_imbalance_growth,
)
from repro.streams.distributions import UniformKeyDistribution, ZipfKeyDistribution


class TestGrowthFit:
    def test_linear_growth_exponent_one(self):
        t = np.array([10, 100, 1000, 10_000], dtype=float)
        assert fit_imbalance_growth(t, 0.3 * t) == pytest.approx(1.0, abs=0.01)

    def test_sqrt_growth_exponent_half(self):
        t = np.array([10, 100, 1000, 10_000], dtype=float)
        assert fit_imbalance_growth(t, 5 * np.sqrt(t)) == pytest.approx(0.5, abs=0.01)

    def test_flat_growth_exponent_zero(self):
        t = np.array([10, 100, 1000], dtype=float)
        assert fit_imbalance_growth(t, [7, 7, 7]) == pytest.approx(0.0, abs=0.01)

    def test_zero_imbalances_clipped(self):
        t = np.array([10, 100], dtype=float)
        assert fit_imbalance_growth(t, [0, 0]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_imbalance_growth([10], [1])
        with pytest.raises(ValueError):
            fit_imbalance_growth([0, 10], [1, 1])

    def test_feasible_vs_infeasible_regimes_differ(self):
        """PKG's trajectory: sublinear below threshold, linear above."""
        from repro.simulation import simulate_multisource_pkg

        dist = ZipfKeyDistribution(1.0, 5000)  # p1 ~ 10.5%, threshold ~19
        keys = dist.sample(100_000, np.random.default_rng(0))
        feasible = simulate_multisource_pkg(keys, num_workers=5)
        infeasible = simulate_multisource_pkg(keys, num_workers=60)
        a_feasible = fit_imbalance_growth(
            feasible.checkpoint_positions, feasible.imbalance_series
        )
        a_infeasible = fit_imbalance_growth(
            infeasible.checkpoint_positions, infeasible.imbalance_series
        )
        assert a_infeasible > 0.9  # linear collapse
        assert a_feasible < a_infeasible


class TestTransitionFinder:
    def test_transition_matches_prediction(self):
        from repro.streams.distributions import calibrate_zipf_exponent

        # p1 = 4% -> predicted threshold ~50 workers.  Below threshold
        # even a colliding hot pair fits in one worker's fair share
        # (p1 < 1/W for W <= 20), so the measurement is collision-proof.
        exponent = calibrate_zipf_exponent(5000, 0.04)
        dist = ZipfKeyDistribution(exponent, 5000)
        report = find_transition_workers(
            dist, worker_grid=(5, 10, 20, 80, 160), num_messages=60_000
        )
        assert report.predicted_workers == feasible_workers(dist.p1) == 50
        assert report.measured_workers in (80, 160)
        assert len(report.fractions) == 5

    def test_no_transition_on_gentle_distribution(self):
        dist = UniformKeyDistribution(100_000)  # p1 = 1e-5: never collapses
        report = find_transition_workers(
            dist, worker_grid=(5, 10, 20), num_messages=40_000
        )
        assert report.measured_workers is None
        assert report.agrees  # prediction also beyond the grid

    def test_fractions_monotone_at_collapse(self):
        dist = ZipfKeyDistribution(1.2, 2000)
        report = find_transition_workers(
            dist, worker_grid=(5, 50), num_messages=40_000
        )
        assert report.fractions[-1] >= report.fractions[0]

    def test_empty_grid(self):
        with pytest.raises(ValueError):
            find_transition_workers(UniformKeyDistribution(10), worker_grid=())
