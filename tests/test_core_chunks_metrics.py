"""repro.core.chunks and repro.core.metrics unit tests."""

import numpy as np
import pytest

from repro.core.chunks import (
    DEFAULT_CHUNK_SIZE,
    encode_keys,
    factorize,
    hashed_buckets,
    hashed_choices,
    iter_chunks,
)
from repro.core.metrics import StreamingLoadSeries, checkpoint_positions
from repro.hashing import HashFamily, HashFunction
from repro.simulation.metrics import load_series


class TestIterChunks:
    def test_covers_stream_exactly(self):
        spans = list(iter_chunks(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_empty_stream(self):
        assert list(iter_chunks(0, 4)) == []

    def test_single_chunk(self):
        assert list(iter_chunks(5, DEFAULT_CHUNK_SIZE)) == [(0, 5)]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(10, 0))


class TestEncoding:
    def test_integer_keys_pass_through(self):
        keys = np.array([5, 3, 5, 9], dtype=np.int64)
        encoded = encode_keys(keys)
        assert encoded.unique is None
        assert np.array_equal(encoded.codes, keys)

    def test_string_keys_factorised(self):
        keys = np.array(["b", "a", "b", "c"])
        encoded = encode_keys(keys)
        assert encoded.unique is not None
        assert np.array_equal(encoded.unique[encoded.codes], keys)

    def test_factorize_always_renumbers(self):
        keys = np.array([100, 7, 100, 42], dtype=np.int64)
        codes, unique = factorize(keys)
        assert codes.max() == unique.size - 1
        assert np.array_equal(unique[codes], keys)

    def test_hashed_choices_matches_per_key(self):
        family = HashFamily(size=3, seed=5)
        for keys in (
            np.array([9, 1, 9, 4, 2], dtype=np.int64),
            np.array(["x", "y", "x", "zz"]),
        ):
            matrix = hashed_choices(family, keys, 7)
            assert matrix.shape == (keys.size, 3)
            for i, key in enumerate(keys):
                assert tuple(matrix[i]) == family.choices(key, 7)

    def test_hashed_buckets_matches_per_key(self):
        fn = HashFunction(seed=3)
        for keys in (
            np.arange(50, dtype=np.int64),
            np.array(["a", "b", "a", "c"]),
        ):
            buckets = hashed_buckets(fn, keys, 5)
            for i, key in enumerate(keys):
                assert int(buckets[i]) == fn.bucket(key, 5)


class TestCheckpointPositions:
    def test_last_position_is_stream_end(self):
        positions = checkpoint_positions(1_000, 10)
        assert positions[-1] == 1_000
        assert positions.size == 10

    def test_short_streams_deduplicate(self):
        positions = checkpoint_positions(3, 100)
        assert positions.tolist() == [1, 2, 3]

    def test_empty(self):
        assert checkpoint_positions(0, 100).size == 0


class TestStreamingLoadSeries:
    @pytest.mark.parametrize("chunk_size", [1, 7, 100, 10_000])
    @pytest.mark.parametrize("num_checkpoints", [1, 13, 100])
    def test_matches_batch_load_series(self, chunk_size, num_checkpoints):
        rng = np.random.default_rng(3)
        workers = rng.integers(0, 6, size=2_345).astype(np.int64)
        batch_positions, batch_series = load_series(workers, 6, num_checkpoints)

        streaming = StreamingLoadSeries(workers.size, 6, num_checkpoints)
        for start in range(0, workers.size, chunk_size):
            streaming.update(workers[start : start + chunk_size])
        positions, series = streaming.finish()

        assert np.array_equal(positions, batch_positions)
        assert np.array_equal(series, batch_series)
        assert np.array_equal(
            streaming.loads, np.bincount(workers, minlength=6)
        )

    def test_overfeeding_rejected(self):
        streaming = StreamingLoadSeries(3, 2)
        with pytest.raises(ValueError):
            streaming.update(np.zeros(4, dtype=np.int64))

    def test_finish_requires_full_stream(self):
        streaming = StreamingLoadSeries(5, 2)
        streaming.update(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            streaming.finish()

    def test_imbalance_snapshot(self):
        streaming = StreamingLoadSeries(4, 4)
        streaming.update(np.array([0, 0, 0, 1], dtype=np.int64))
        assert streaming.imbalance() == pytest.approx(3 - 1.0)
