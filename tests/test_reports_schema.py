"""Artifact schema: validation, JSON round-trips, disk IO."""

import json

import numpy as np
import pytest

from repro.reports import (
    SCHEMA_VERSION,
    ExperimentArtifact,
    Metric,
    RunManifest,
    SchemaError,
    load_artifact,
    load_artifacts,
    write_artifact,
)
from repro.reports.schema import jsonify


def make_manifest(**overrides):
    base = dict(
        seed=42,
        scale=0.1,
        git_sha="deadbeef",
        created_utc="2026-01-01T00:00:00Z",
        workers=(5, 10),
        duration_seconds=1.5,
    )
    base.update(overrides)
    return RunManifest(**base)


def make_artifact(**overrides):
    base = dict(
        experiment="table2",
        paper_section="Table II",
        manifest=make_manifest(),
        records=[{"dataset": "WP", "scheme": "PKG", "average_imbalance": 1.5}],
        summary={"hash_over_pkg_geomean[WP]": 100.0},
        metrics=[Metric("avg_imbalance[WP,W=10,PKG]", 1.5)],
    )
    base.update(overrides)
    return ExperimentArtifact(**base)


class TestManifestValidation:
    def test_valid(self):
        make_manifest()

    def test_scale_must_be_positive(self):
        with pytest.raises(SchemaError, match="scale"):
            make_manifest(scale=0)
        with pytest.raises(SchemaError, match="scale"):
            make_manifest(scale=-1.0)

    def test_seed_must_be_int(self):
        with pytest.raises(SchemaError, match="seed"):
            make_manifest(seed="42")
        with pytest.raises(SchemaError, match="seed"):
            make_manifest(seed=True)

    def test_git_sha_and_created_required(self):
        with pytest.raises(SchemaError, match="git_sha"):
            make_manifest(git_sha="")
        with pytest.raises(SchemaError, match="created_utc"):
            make_manifest(created_utc="")

    def test_negative_duration_rejected(self):
        with pytest.raises(SchemaError, match="duration"):
            make_manifest(duration_seconds=-0.1)

    def test_from_json_dict_requires_seed_and_scale(self):
        with pytest.raises(SchemaError, match="missing required"):
            RunManifest.from_json_dict({"seed": 42})
        with pytest.raises(SchemaError, match="missing required"):
            RunManifest.from_json_dict({"scale": 1.0})

    def test_from_json_dict_ignores_unknown_fields(self):
        m = RunManifest.from_json_dict(
            {"seed": 1, "scale": 2.0, "git_sha": "abc",
             "created_utc": "t", "future_field": "ignored"}
        )
        assert m.seed == 1 and m.scale == 2.0


class TestMetricValidation:
    def test_direction_must_be_known(self):
        with pytest.raises(SchemaError, match="direction"):
            Metric("m", 1.0, "sideways")

    def test_name_required(self):
        with pytest.raises(SchemaError, match="name"):
            Metric("", 1.0)

    def test_value_must_be_number(self):
        with pytest.raises(SchemaError, match="value"):
            Metric("m", "fast")

    def test_non_finite_values_rejected(self):
        # NaN would fail open through the diff gate (all comparisons
        # False -> "ok") so it must never enter an artifact.
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(SchemaError, match="finite"):
                Metric("m", bad)


class TestArtifactValidation:
    def test_valid(self):
        make_artifact()

    def test_newer_schema_rejected(self):
        with pytest.raises(SchemaError, match="newer"):
            make_artifact(schema_version=SCHEMA_VERSION + 1)

    def test_records_must_be_dicts(self):
        with pytest.raises(SchemaError, match="records"):
            make_artifact(records=[("WP", 1.5)])

    def test_duplicate_metric_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            make_artifact(metrics=[Metric("m", 1.0), Metric("m", 2.0)])

    def test_wrong_kind_rejected(self):
        data = make_artifact().to_json_dict()
        data["kind"] = "something-else"
        with pytest.raises(SchemaError, match="kind"):
            ExperimentArtifact.from_json_dict(data)


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        out = jsonify(
            {"a": np.int64(3), "b": np.float32(1.5), "c": np.arange(3),
             "d": np.bool_(True)}
        )
        assert out == {"a": 3, "b": 1.5, "c": [0, 1, 2], "d": True}
        # Everything must survive a strict JSON round-trip.
        assert json.loads(json.dumps(out)) == out

    def test_unserialisable_rejected(self):
        with pytest.raises(SchemaError, match="serialise"):
            jsonify(object())


class TestRoundTrip:
    def test_write_load_render_cycle(self, tmp_path):
        artifact = make_artifact()
        path = write_artifact(artifact, tmp_path)
        assert path.name == "table2.json"
        loaded = load_artifact(path)
        assert loaded.experiment == artifact.experiment
        assert loaded.paper_section == artifact.paper_section
        assert loaded.manifest == artifact.manifest
        assert loaded.records == artifact.records
        assert loaded.summary == artifact.summary
        assert loaded.metrics == artifact.metrics
        # Write-out of the loaded artifact is byte-identical (stable JSON).
        assert write_artifact(loaded, tmp_path / "again").read_text() == (
            path.read_text()
        )

    def test_load_artifacts_skips_non_artifact_json(self, tmp_path):
        write_artifact(make_artifact(), tmp_path)
        (tmp_path / "BENCH_experiments.json").write_text(
            json.dumps({"kind": "repro-bench-snapshot", "results": []})
        )
        loaded = load_artifacts(tmp_path)
        assert list(loaded) == ["table2"]

    def test_load_artifacts_missing_dir(self, tmp_path):
        with pytest.raises(SchemaError, match="does not exist"):
            load_artifacts(tmp_path / "nope")

    def test_invalid_json_reported_with_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SchemaError, match="bad.json"):
            load_artifact(bad)

    def test_nan_in_summary_fails_loudly_on_write(self, tmp_path):
        artifact = make_artifact(summary={"ratio": float("nan")})
        with pytest.raises(SchemaError, match="non-finite"):
            write_artifact(artifact, tmp_path)
