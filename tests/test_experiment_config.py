"""Tests for experiment configuration helpers and formatting."""

import pytest

from repro.experiments.config import ExperimentConfig, format_table, sci
from repro.dspe.metrics import LatencyStats, RunMetrics


class TestSci:
    def test_zero(self):
        assert sci(0) == "0"

    def test_small_plain(self):
        assert sci(0.8) == "0.8"

    def test_mid_one_decimal(self):
        assert sci(92.7) == "92.7"

    def test_large_scientific(self):
        assert sci(1.6e6) == "1.6e+06"

    def test_negative(self):
        assert sci(-1.2e5) == "-1.2e+05"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["a", "bb"], [["x", "y"], ["long", "z"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_cells_stringified(self):
        text = format_table(["n"], [[42]])
        assert "42" in text


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.scale == 1.0
        assert tuple(cfg.workers) == (5, 10, 50, 100)

    def test_messages_scaling(self):
        from repro.streams import get_dataset

        spec = get_dataset("WP")
        assert ExperimentConfig(scale=0.5).messages_for(spec) == 500_000

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=-1)


class TestRunMetrics:
    def make(self, loads):
        return RunMetrics(
            scheme="PKG",
            cpu_delay=0.4e-3,
            duration=10.0,
            warmup=2.0,
            emitted=100,
            completed=90,
            throughput=9.0,
            latency=LatencyStats(),
            average_memory_counters=12.0,
            peak_memory_counters=20,
            aggregation_messages=5,
            worker_loads=loads,
        )

    def test_load_imbalance(self):
        m = self.make([10, 0, 2])
        assert m.load_imbalance == pytest.approx(10 - 4.0)

    def test_load_imbalance_empty(self):
        assert self.make([]).load_imbalance == 0.0

    def test_summary_contains_key_fields(self):
        text = self.make([1, 2, 3]).summary()
        assert "PKG" in text and "keys/s" in text
