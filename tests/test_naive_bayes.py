"""Tests for the distributed naive Bayes application (Section VI-A)."""

import numpy as np
import pytest

from repro.applications import DistributedNaiveBayes
from repro.partitioning import KeyGrouping, PartialKeyGrouping, ShuffleGrouping


def categorical_data(n, num_features=6, seed=0, bias=0.8):
    rng = np.random.default_rng(seed)
    rows, labels = [], []
    for _ in range(n):
        y = int(rng.integers(0, 2))
        p = bias if y else 1.0 - bias
        rows.append([(f, int(rng.random() < p)) for f in range(num_features)])
        labels.append(y)
    return rows, labels


@pytest.fixture(scope="module")
def dataset():
    return categorical_data(1500, seed=1), categorical_data(300, seed=2)


def build(partitioner, dataset):
    (rows, labels), _ = dataset
    nb = DistributedNaiveBayes(partitioner)
    nb.train_batch(rows, labels)
    return nb


class TestCorrectness:
    def test_predictions_identical_across_schemes(self, dataset):
        _, (test_rows, _) = dataset
        preds = []
        for p in (KeyGrouping(5), ShuffleGrouping(5), PartialKeyGrouping(5)):
            nb = build(p, dataset)
            preds.append([nb.predict(r) for r in test_rows])
        assert preds[0] == preds[1] == preds[2]

    def test_learns_the_bias(self, dataset):
        _, (test_rows, test_labels) = dataset
        nb = build(PartialKeyGrouping(5), dataset)
        accuracy = np.mean(
            [nb.predict(r) == t for r, t in zip(test_rows, test_labels)]
        )
        assert accuracy > 0.85

    def test_log_posterior_has_all_classes(self, dataset):
        nb = build(PartialKeyGrouping(5), dataset)
        scores = nb.log_posterior([(0, 1)])
        assert set(scores) == {0, 1}

    def test_untrained_predict_raises(self):
        nb = DistributedNaiveBayes(KeyGrouping(3))
        with pytest.raises(RuntimeError):
            nb.predict([(0, 1)])

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            DistributedNaiveBayes(KeyGrouping(3), alpha=0.0)

    def test_classes_property(self, dataset):
        nb = build(KeyGrouping(3), dataset)
        assert nb.classes == [0, 1]


class TestCosts:
    def test_query_probes_kg_one(self, dataset):
        nb = build(KeyGrouping(5), dataset)
        assert nb.probes_per_feature() == 1

    def test_query_probes_pkg_two(self, dataset):
        nb = build(PartialKeyGrouping(5), dataset)
        assert nb.probes_per_feature() == 2

    def test_query_probes_sg_broadcast(self, dataset):
        nb = build(ShuffleGrouping(5), dataset)
        assert nb.probes_per_feature() == 5

    def test_counter_memory_ordering(self, dataset):
        kg = build(KeyGrouping(5), dataset).counter_memory()
        pkg = build(PartialKeyGrouping(5), dataset).counter_memory()
        sg = build(ShuffleGrouping(5), dataset).counter_memory()
        assert kg <= pkg <= sg
        assert pkg <= 2 * kg

    def test_query_probe_accounting(self, dataset):
        _, (test_rows, _) = dataset
        nb = build(PartialKeyGrouping(5), dataset)
        before = nb.query_probes
        nb.predict(test_rows[0])
        assert nb.query_probes > before

    def test_pkg_load_beats_kg_on_skewed_features(self):
        # Feature popularity follows a Zipf law (sparse text): feature 0
        # appears in every example, feature k with prob ~ 1/k.
        rng = np.random.default_rng(3)
        rows, labels = [], []
        for _ in range(2000):
            y = int(rng.integers(0, 2))
            feats = [
                (f, int(rng.random() < 0.5))
                for f in range(20)
                if rng.random() < 1.0 / (f + 1)
            ]
            rows.append(feats or [(0, 1)])
            labels.append(y)
        kg = DistributedNaiveBayes(KeyGrouping(5))
        pkg = DistributedNaiveBayes(PartialKeyGrouping(5))
        kg.train_batch(rows, labels)
        pkg.train_batch(rows, labels)

        def imbalance(nb):
            loads = nb.worker_loads()
            return max(loads) - sum(loads) / len(loads)

        assert imbalance(pkg) < imbalance(kg)
