"""Tests for the key-grouping-with-rebalancing baseline."""

import numpy as np
import pytest

from repro.partitioning import KeyGrouping, RebalancingKeyGrouping
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution


def skewed_keys(m=40_000, seed=0):
    return ZipfKeyDistribution(1.2, 2000).sample(m, np.random.default_rng(seed))


class TestRebalancing:
    def test_routes_in_range(self):
        rb = RebalancingKeyGrouping(5, check_interval=100)
        assert all(0 <= rb.route(k) < 5 for k in range(1000))

    def test_no_rebalance_below_threshold(self):
        rb = RebalancingKeyGrouping(
            4, check_interval=100, imbalance_threshold=1e9
        )
        for k in skewed_keys(5000):
            rb.route(int(k))
        assert rb.rebalances == 0
        assert rb.migrations == 0

    def test_rebalances_under_skew(self):
        rb = RebalancingKeyGrouping(
            4, check_interval=1000, imbalance_threshold=0.1
        )
        for k in skewed_keys(20_000):
            rb.route(int(k))
        assert rb.rebalances > 0
        assert rb.migrations > 0
        assert rb.migrated_state > 0

    def test_migration_cost_is_state_size(self):
        rb = RebalancingKeyGrouping(
            2, check_interval=500, imbalance_threshold=0.05
        )
        for k in skewed_keys(10_000):
            rb.route(int(k))
        # Migrated state is the sum of message counts of moved keys: it
        # can never exceed the total messages routed.
        assert 0 < rb.migrated_state <= 10_000 * rb.migrations

    def test_migrated_key_routes_to_new_home(self):
        rb = RebalancingKeyGrouping(
            4, check_interval=1000, imbalance_threshold=0.05
        )
        for k in skewed_keys(20_000):
            rb.route(int(k))
        for key, new_home in list(rb.overrides.items())[:10]:
            assert rb.route(key) == new_home

    def test_improves_on_plain_kg(self):
        keys = skewed_keys()
        plain = simulate_stream(keys, KeyGrouping(5, seed=0))
        rb = simulate_stream(
            keys,
            RebalancingKeyGrouping(
                5, check_interval=2000, imbalance_threshold=0.05, seed=0
            ),
        )
        assert rb.final_imbalance < plain.final_imbalance

    def test_memory_cost_tracks_keys(self):
        # Section II-B's objection: the mechanism must track per-key
        # state, so its memory grows with the number of keys seen.
        rb = RebalancingKeyGrouping(4, check_interval=10**9)
        for k in range(777):
            rb.route(k)
        assert rb.memory_entries() >= 777

    def test_candidates_follow_overrides(self):
        rb = RebalancingKeyGrouping(
            4, check_interval=1000, imbalance_threshold=0.05
        )
        for k in skewed_keys(20_000):
            rb.route(int(k))
        if rb.overrides:
            key, home = next(iter(rb.overrides.items()))
            assert rb.candidates(key) == (home,)

    def test_reset(self):
        rb = RebalancingKeyGrouping(4, check_interval=100, imbalance_threshold=0.01)
        for k in skewed_keys(5000):
            rb.route(int(k))
        rb.reset()
        assert rb.memory_entries() == 0
        assert rb.rebalances == 0
        assert rb.loads.sum() == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RebalancingKeyGrouping(4, check_interval=0)
        with pytest.raises(ValueError):
            RebalancingKeyGrouping(4, imbalance_threshold=-1)
