"""Closed-form validation of the queueing simulator.

The latency evaluation layer is only as credible as its agreement with
queueing theory where queueing theory has exact answers.  These tests
sweep utilization rho in {0.3, 0.5, 0.7, 0.9} and assert the simulated
**mean waiting time** (and mean sojourn) lands within 5% of:

* M/M/1: ``W_q = rho / (mu - lambda)`` -- exercised through the *full
  partitioned path* (``simulate_queueing`` + a registered partitioner
  with one worker), so agreement vouches for the production simulator,
  not a special-cased station;
* M/M/c: the Erlang-C formula, via the shared-queue ``simulate_mmc``;
* M/G/1 (Pollaczek-Khinchine): deterministic and bimodal service, which
  pins the ``(1 + C_s^2) / 2`` variability factor the tail-latency
  story rests on.

Seeds and sample counts are fixed and were calibrated so every case
passes with at least 2x margin; runs are pure functions of their
inputs, so these assertions are CI-stable, not flaky-by-construction.
The simulated waiting time is measured per message as
``departure - arrival - own service time`` (the ``waiting`` sketch),
which cancels service-sampling noise and makes the tiny low-rho M/M/c
predictions testable at these sample sizes.
"""

import numpy as np
import pytest

from repro.api import make_partitioner
from repro.queueing import (
    BimodalService,
    DeterministicService,
    ExponentialService,
    PoissonArrivals,
    erlang_c,
    mg1_mean_waiting,
    mm1_mean_sojourn,
    mm1_mean_waiting,
    mm1_sojourn_quantile,
    mmc_mean_sojourn,
    mmc_mean_waiting,
    simulate_mmc,
    simulate_queueing,
)

SERVICE_RATE = 1000.0
MEAN_SERVICE = 1.0 / SERVICE_RATE
TOLERANCE = 0.05

UTILIZATIONS = (0.3, 0.5, 0.7, 0.9)
#: sample counts per utilization: higher rho needs more samples because
#: queue-length autocorrelation shrinks the effective sample count.
MM1_SAMPLES = {0.3: 120_000, 0.5: 120_000, 0.7: 200_000, 0.9: 600_000}
MMC_SAMPLES = {0.3: 200_000, 0.5: 200_000, 0.7: 300_000, 0.9: 600_000}
MM1_SEED = 1234
MMC_SEED = 777
NUM_SERVERS = 4


def relative_error(simulated: float, predicted: float) -> float:
    return abs(simulated - predicted) / predicted


@pytest.mark.parametrize("rho", UTILIZATIONS)
def test_mm1_matches_closed_form(rho):
    """M/M/1 through the partitioned simulator matches rho/(mu-lambda)."""
    arrival_rate = rho * SERVICE_RATE
    n = MM1_SAMPLES[rho]
    result = simulate_queueing(
        np.zeros(n, dtype=np.int64),
        make_partitioner("kg", 1),
        PoissonArrivals(arrival_rate),
        ExponentialService(MEAN_SERVICE),
        seed=MM1_SEED,
        warmup_fraction=0.1,
    )
    assert result.dropped == 0
    assert result.completed == n

    predicted_wait = mm1_mean_waiting(arrival_rate, SERVICE_RATE)
    predicted_sojourn = mm1_mean_sojourn(arrival_rate, SERVICE_RATE)
    assert relative_error(result.mean_waiting(), predicted_wait) < TOLERANCE
    assert relative_error(result.mean_sojourn(), predicted_sojourn) < TOLERANCE
    # realised utilization should track the offered load closely too.
    assert abs(result.utilization - rho) < 0.05


@pytest.mark.parametrize("rho", UTILIZATIONS)
def test_mmc_matches_erlang_c(rho):
    """M/M/4 with a shared queue matches the Erlang-C mean wait."""
    arrival_rate = rho * NUM_SERVERS * SERVICE_RATE
    n = MMC_SAMPLES[rho]
    result = simulate_mmc(
        arrival_rate,
        ExponentialService(MEAN_SERVICE),
        NUM_SERVERS,
        n,
        seed=MMC_SEED,
        warmup_fraction=0.1,
    )
    assert result.completed == n

    predicted_wait = mmc_mean_waiting(arrival_rate, SERVICE_RATE, NUM_SERVERS)
    predicted_sojourn = mmc_mean_sojourn(
        arrival_rate, SERVICE_RATE, NUM_SERVERS
    )
    assert relative_error(result.mean_waiting(), predicted_wait) < TOLERANCE
    assert relative_error(result.mean_sojourn(), predicted_sojourn) < TOLERANCE


@pytest.mark.parametrize("rho", (0.5, 0.7))
def test_md1_matches_pollaczek_khinchine(rho):
    """Deterministic service halves the M/M/1 wait (scv = 0)."""
    arrival_rate = rho * SERVICE_RATE
    result = simulate_mmc(
        arrival_rate,
        DeterministicService(MEAN_SERVICE),
        1,
        200_000,
        seed=99,
        warmup_fraction=0.1,
    )
    predicted = mg1_mean_waiting(arrival_rate, MEAN_SERVICE, 0.0)
    assert relative_error(result.mean_waiting(), predicted) < TOLERANCE
    # and the P-K prediction itself must be half the exponential one.
    exponential = mg1_mean_waiting(arrival_rate, MEAN_SERVICE, 1.0)
    assert predicted == pytest.approx(exponential / 2.0)


def test_bimodal_matches_pollaczek_khinchine():
    """High-variance bimodal service obeys the (1 + scv)/2 scaling."""
    service = BimodalService(fast=0.0005, slow=0.005, slow_fraction=0.1)
    rho = 0.6
    arrival_rate = rho / service.mean
    result = simulate_mmc(
        arrival_rate,
        service,
        1,
        200_000,
        seed=99,
        warmup_fraction=0.1,
    )
    predicted = mg1_mean_waiting(arrival_rate, service.mean, service.scv)
    assert service.scv > 2.0  # genuinely heavy-variance workload
    assert relative_error(result.mean_waiting(), predicted) < TOLERANCE


def test_mm1_sojourn_quantile_matches_closed_form():
    """The sketch's p99 tracks the exponential sojourn quantile."""
    rho = 0.7
    arrival_rate = rho * SERVICE_RATE
    result = simulate_mmc(
        arrival_rate,
        ExponentialService(MEAN_SERVICE),
        1,
        200_000,
        seed=99,
        warmup_fraction=0.1,
    )
    predicted = mm1_sojourn_quantile(arrival_rate, SERVICE_RATE, 0.99)
    assert relative_error(result.sojourn_quantile(0.99), predicted) < 0.05


def test_erlang_c_known_values():
    """Spot-check Erlang-C against independently computed references."""
    # Single server: Erlang C reduces to rho.
    assert erlang_c(1, 0.7) == pytest.approx(0.7)
    # c=2, a=1 (rho=0.5): C = 1/3.
    assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)
    # Wait probability grows toward 1 as the load approaches capacity.
    assert erlang_c(4, 3.9) > erlang_c(4, 2.0)
    assert erlang_c(4, 3.99) > 0.95


def test_analytic_input_validation():
    with pytest.raises(ValueError):
        mm1_mean_waiting(1000.0, 1000.0)  # unstable
    with pytest.raises(ValueError):
        mm1_mean_waiting(-1.0, 1000.0)
    with pytest.raises(ValueError):
        mmc_mean_waiting(4000.0, 1000.0, 4)  # lambda == c * mu
    with pytest.raises(ValueError):
        erlang_c(0, 0.5)
    with pytest.raises(ValueError):
        erlang_c(4, 4.0)
    with pytest.raises(ValueError):
        mg1_mean_waiting(500.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        mm1_sojourn_quantile(500.0, 1000.0, 1.0)


# ---------------------------------------------------------------------------
# Closed-loop (think-time) arrivals: the M/M/1//N machine repairman
# ---------------------------------------------------------------------------


class TestMachineRepairman:
    """``simulate_closed_loop`` vs the finite-source closed forms."""

    def test_distribution_is_a_distribution(self):
        from repro.queueing import machine_repairman_distribution

        dist = machine_repairman_distribution(6, 1.0, 5.0)
        assert len(dist) == 7
        assert all(p >= 0 for p in dist)
        assert sum(dist) == pytest.approx(1.0)

    def test_single_client_reduces_to_alternating_renewal(self):
        """N=1: U = Z_service / (Z_think + Z_service) exactly."""
        from repro.queueing import machine_repairman_utilization

        u = machine_repairman_utilization(1, 1.0, 4.0)
        assert u == pytest.approx((1 / 4.0) / (1.0 + 1 / 4.0))

    @pytest.mark.parametrize("population", [2, 5, 10])
    def test_simulation_matches_closed_form(self, population):
        from repro.queueing import (
            ClosedLoopPopulation,
            machine_repairman_mean_sojourn,
            machine_repairman_throughput,
            machine_repairman_utilization,
            simulate_closed_loop,
        )

        think_mean, service_mean = 1.0, 0.2
        think_rate, service_rate = 1.0 / think_mean, 1.0 / service_mean
        result = simulate_closed_loop(
            np.zeros(40_000, dtype=np.int64),
            make_partitioner("kg", 1, seed=42),
            ClosedLoopPopulation(population, ExponentialService(think_mean)),
            ExponentialService(service_mean),
            seed=7,
            warmup_fraction=0.1,
        )
        assert result.completed == result.num_messages
        assert result.dropped == 0
        args = (population, think_rate, service_rate)
        assert (
            relative_error(
                result.utilization, machine_repairman_utilization(*args)
            )
            < TOLERANCE
        )
        assert (
            relative_error(
                result.throughput, machine_repairman_throughput(*args)
            )
            < TOLERANCE
        )
        assert (
            relative_error(
                result.mean_sojourn(), machine_repairman_mean_sojourn(*args)
            )
            < TOLERANCE
        )

    def test_population_bounds_in_flight_load(self):
        """A closed loop never queues more than N-1 behind the server."""
        from repro.queueing import (
            ClosedLoopPopulation,
            simulate_closed_loop,
        )

        population = 3
        result = simulate_closed_loop(
            np.zeros(5_000, dtype=np.int64),
            make_partitioner("kg", 1, seed=42),
            ClosedLoopPopulation(population, ExponentialService(0.01)),
            ExponentialService(1.0),  # brutally slow server
            seed=3,
        )
        # With N requests in flight max, sojourn <= N * max service
        # sample; the open-loop equivalent would diverge entirely.
        assert result.completed == 5_000
        assert result.latency.max <= population * result.busy_time.max()

    def test_closed_loop_is_deterministic(self):
        from repro.queueing import (
            ClosedLoopPopulation,
            simulate_closed_loop,
        )

        runs = [
            simulate_closed_loop(
                np.arange(2_000) % 50,
                make_partitioner("pkg", 4, seed=42),
                ClosedLoopPopulation(8, ExponentialService(0.5)),
                ExponentialService(0.1),
                seed=11,
            )
            for _ in range(2)
        ]
        assert runs[0].end_time == runs[1].end_time
        assert runs[0].latency.to_dict() == runs[1].latency.to_dict()
        np.testing.assert_array_equal(runs[0].busy_time, runs[1].busy_time)

    def test_population_validation(self):
        from repro.queueing import (
            ClosedLoopPopulation,
            machine_repairman_distribution,
        )

        with pytest.raises(ValueError, match="population"):
            ClosedLoopPopulation(0, ExponentialService(1.0))
        with pytest.raises(ValueError, match="population"):
            machine_repairman_distribution(0, 1.0, 1.0)
        with pytest.raises(ValueError, match="think rate"):
            machine_repairman_distribution(2, 0.0, 1.0)
        with pytest.raises(ValueError, match="service rate"):
            machine_repairman_distribution(2, 1.0, -1.0)
