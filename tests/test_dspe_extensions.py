"""Tests for DSPE extensions: multi-spout clusters, failure injection."""

import pytest

from repro.dspe import ClusterConfig, run_wordcount
from repro.partitioning import PartialKeyGrouping
from repro.streams.distributions import ZipfKeyDistribution


def dist():
    return ZipfKeyDistribution(1.05, 10_000)


class TestMultiSpout:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_spouts=0)

    def test_throughput_matches_single_spout_when_spout_bound(self):
        # The emit budget is split across spouts, so the aggregate
        # spout-bound throughput is unchanged.
        one = run_wordcount(
            "pkg", dist(), ClusterConfig(duration=4, warmup=1, num_spouts=1, seed=1)
        )
        four = run_wordcount(
            "pkg", dist(), ClusterConfig(duration=4, warmup=1, num_spouts=4, seed=1)
        )
        assert four.throughput == pytest.approx(one.throughput, rel=0.05)

    def test_each_spout_emits(self):
        from repro.dspe.topology import WordCountCluster

        cluster = WordCountCluster(
            "pkg", dist(), ClusterConfig(duration=3, warmup=1, num_spouts=3, seed=2)
        )
        cluster.run()
        assert len(cluster.spouts) == 3
        assert all(s.emitted > 0 for s in cluster.spouts)

    def test_acks_return_to_origin_spout(self):
        from repro.dspe.topology import WordCountCluster

        cluster = WordCountCluster(
            "sg", dist(), ClusterConfig(duration=3, warmup=1, num_spouts=2, seed=3)
        )
        cluster.run()
        # If acks leaked to the wrong spout, in_flight would drift
        # negative on one spout and the other would stall at the cap.
        for spout in cluster.spouts:
            assert 0 <= spout.in_flight <= spout.max_pending

    def test_balanced_even_with_multiple_local_sources(self):
        metrics = run_wordcount(
            "pkg",
            dist(),
            ClusterConfig(duration=4, warmup=1, num_spouts=4, seed=4),
        )
        loads = metrics.worker_loads
        avg = sum(loads) / len(loads)
        assert max(loads) - avg < 0.1 * sum(loads)

    def test_partitioner_injection_rejected_for_multi_spout(self):
        cfg = ClusterConfig(duration=3, warmup=1, num_spouts=2)
        with pytest.raises(ValueError):
            run_wordcount(
                "pkg", dist(), cfg, partitioner=PartialKeyGrouping(cfg.num_workers)
            )


class TestStragglerInjection:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(straggler_factor=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=4, straggler_worker=4)

    def test_straggler_reduces_throughput_and_raises_latency(self):
        base_cfg = ClusterConfig(duration=5, warmup=1, cpu_delay=0.4e-3, seed=1)
        slow_cfg = ClusterConfig(
            duration=5,
            warmup=1,
            cpu_delay=0.4e-3,
            seed=1,
            straggler_worker=0,
            straggler_factor=5.0,
        )
        base = run_wordcount("pkg", dist(), base_cfg)
        slow = run_wordcount("pkg", dist(), slow_cfg)
        assert slow.throughput < 0.8 * base.throughput
        assert slow.latency.mean > base.latency.mean

    def test_pkg_does_not_adapt_to_service_time_skew(self):
        """A faithful *limitation*: the paper defines load as message
        counts (Section II), so PKG's estimator cannot see a slow
        worker -- it degrades like SG under a straggler, not better."""
        def run(scheme):
            return run_wordcount(
                scheme,
                dist(),
                ClusterConfig(
                    duration=5,
                    warmup=1,
                    cpu_delay=0.4e-3,
                    seed=1,
                    straggler_worker=0,
                    straggler_factor=5.0,
                ),
            )

        pkg, sg = run("pkg"), run("sg")
        assert pkg.throughput == pytest.approx(sg.throughput, rel=0.15)

    def test_straggler_queue_dominates_p99(self):
        slow = run_wordcount(
            "sg",
            dist(),
            ClusterConfig(
                duration=5,
                warmup=1,
                cpu_delay=0.4e-3,
                seed=1,
                straggler_worker=3,
                straggler_factor=10.0,
            ),
        )
        assert slow.latency.percentile(99) > 2 * slow.latency.mean
