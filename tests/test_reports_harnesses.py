"""Harness adapters: records/rehydrate round-trips, metrics, summaries.

Uses hand-built rows (no simulation) so these stay fast.
"""

import numpy as np
import pytest

from repro.experiments.fig3 import Fig3Series
from repro.experiments.fig5a import Fig5aRow, summarize_fig5a
from repro.experiments.fig5b import Fig5bRow, summarize_fig5b
from repro.experiments.table2 import Table2Row, summarize_table2
from repro.reports import HARNESSES, get_harness, harness_names


def table2_rows():
    rows = []
    for w in (5, 10):
        for scheme, imbalance in (("PKG", 1.0), ("Off-Greedy", 2.0), ("H", 1000.0)):
            rows.append(
                Table2Row(
                    dataset="WP",
                    scheme=scheme,
                    num_workers=w,
                    average_imbalance=imbalance * w,
                    final_imbalance=imbalance,
                    num_messages=10_000,
                )
            )
    return rows


class TestRegistry:
    def test_all_eleven_experiments_registered(self):
        assert harness_names() == [
            "table1", "table2", "fig2", "fig3", "fig4",
            "fig5a", "fig5b", "jaccard", "dchoices", "probing",
            "latency_curves",
        ]

    def test_unknown_harness(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_harness("fig6")

    def test_paper_sections_are_set(self):
        for harness in HARNESSES.values():
            assert harness.paper_section
            assert harness.title


class TestRecordsRoundTrip:
    def test_table2_records_rehydrate(self):
        harness = get_harness("table2")
        rows = table2_rows()
        back = harness.rehydrate(harness.records(rows))
        assert back == rows
        assert harness.format(back) == harness.format(rows)

    def test_fig3_arrays_rehydrate(self):
        harness = get_harness("fig3")
        series = [
            Fig3Series(
                dataset="TW",
                technique="G",
                num_workers=10,
                hours=np.array([1.0, 2.0, 3.0]),
                imbalance_fraction=np.array([0.1, 0.05, 0.01]),
            )
        ]
        (back,) = harness.rehydrate(harness.records(series))
        assert isinstance(back.hours, np.ndarray)
        np.testing.assert_allclose(back.hours, series[0].hours)
        np.testing.assert_allclose(
            back.imbalance_fraction, series[0].imbalance_fraction
        )
        assert back.final_fraction == pytest.approx(0.01)

    def test_metrics_have_unique_names(self):
        harness = get_harness("table2")
        metrics = harness.metrics(table2_rows())
        names = [m.name for m in metrics]
        assert len(names) == len(set(names)) == 6


class TestSummaries:
    def test_table2_summary_ratios(self):
        summary = summarize_table2(table2_rows())
        assert summary["hash_over_pkg_geomean[WP]"] == pytest.approx(1000.0)
        assert summary["pkg_over_offgreedy_geomean[WP]"] == pytest.approx(0.5)

    def test_fig5a_summary_degradation_and_ratio(self):
        rows = [
            Fig5aRow("PKG", 0.1e-3, 1000.0, 0.01, 0.02, 0.0199, 0.1),
            Fig5aRow("PKG", 1.0e-3, 630.0, 0.01, 0.02, 0.019, 0.1),
            Fig5aRow("KG", 0.1e-3, 900.0, 0.01, 0.02, 0.0199, 0.1),
            Fig5aRow("KG", 1.0e-3, 360.0, 0.01, 0.02, 0.019, 0.1),
        ]
        summary = summarize_fig5a(rows)
        assert summary["throughput_loss[PKG]"] == pytest.approx(0.37)
        assert summary["throughput_loss[KG]"] == pytest.approx(0.60)
        assert summary["pkg_over_kg_throughput_at_max_delay"] == pytest.approx(
            630.0 / 360.0
        )

    def test_fig5b_summary_crossover(self):
        rows = [
            Fig5bRow("PKG", 1.0, 80.0, 0.01, 0.02, 0.0195, 100.0, 120, 10),
            Fig5bRow("PKG", 30.0, 120.0, 0.01, 0.02, 0.0195, 200.0, 240, 1),
            Fig5bRow("SG", 1.0, 70.0, 0.01, 0.02, 0.0195, 220.0, 250, 10),
            Fig5bRow("SG", 30.0, 100.0, 0.01, 0.02, 0.0195, 410.0, 500, 1),
            Fig5bRow("KG", 0.0, 100.0, 0.01, 0.02, 0.0195, 50.0, 60, 0),
        ]
        summary = summarize_fig5b(rows)
        assert summary["pkg_over_sg_memory[T=30s]"] == pytest.approx(200 / 410)
        assert summary["pkg_over_kg_crossover_period_s"] == 30.0

    def test_summaries_are_jsonable(self):
        from repro.reports.schema import jsonify

        assert jsonify(summarize_table2(table2_rows()))
