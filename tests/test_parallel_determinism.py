"""Parallel sweeps must be byte-identical to serial ones.

The acceptance contract of the sweep executor: for any job count, the
JSON artifacts `repro.reports run` writes are identical to the serial
run's modulo the manifest's wall-clock fields (created/sha/duration).
Crossed with ``REPRO_NO_NATIVE`` because the native kernels and the
pure-Python chunk loops must themselves be decision-identical.
"""

import json

import pytest

from repro.core.parallel import clear_stream_cache
from repro.reports.pipeline import reduced_config, run_experiments

#: Cheap but representative slice of the grid: an ablation sweep, a
#: scheme x W x dataset grid, and the edge-stream (skewed sources) grid.
EXPERIMENTS = ["dchoices", "fig4"]


def normalized(artifact) -> str:
    """Artifact JSON with the run-specific manifest dropped."""
    data = artifact.to_json_dict()
    data["manifest"] = None
    return json.dumps(data, indent=2, sort_keys=True, allow_nan=False)


def run_normalized(tmp_path, jobs, subdir):
    clear_stream_cache()
    artifacts = run_experiments(
        EXPERIMENTS,
        config=reduced_config(0.02, seed=11),
        out_dir=tmp_path / subdir,
        jobs=jobs,
    )
    return {name: normalized(a) for name, a in artifacts.items()}


@pytest.mark.parametrize("no_native", ["0", "1"], ids=["native", "pure-python"])
def test_jobs_grid_byte_identical(tmp_path, monkeypatch, no_native):
    monkeypatch.setenv("REPRO_NO_NATIVE", no_native)
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    baseline = run_normalized(tmp_path, 1, "jobs1")
    for jobs in (2, 4):
        candidate = run_normalized(tmp_path, jobs, f"jobs{jobs}")
        assert candidate == baseline, f"jobs={jobs} diverged from serial"


def test_env_serial_equals_explicit_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    forced = run_normalized(tmp_path, 4, "forced")  # env must win
    monkeypatch.delenv("REPRO_PARALLEL")
    serial = run_normalized(tmp_path, 1, "serial")
    assert forced == serial


def test_native_and_pure_python_agree(tmp_path, monkeypatch):
    # The cross-check the jobs grid relies on: kernels and fallbacks
    # route identically, so the parallel matrix collapses to one truth.
    monkeypatch.setenv("REPRO_NO_NATIVE", "0")
    native = run_normalized(tmp_path, 2, "native")
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    pure = run_normalized(tmp_path, 2, "pure")
    assert native == pure
