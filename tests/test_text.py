"""Tests for the synthetic text-stream substrate."""

import numpy as np
import pytest

from repro.streams.text import SyntheticTextStream, synthetic_vocabulary, tokenize


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = synthetic_vocabulary(500, seed=1)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_deterministic(self):
        assert synthetic_vocabulary(100, seed=2) == synthetic_vocabulary(100, seed=2)

    def test_words_are_lowercase_ascii(self):
        for word in synthetic_vocabulary(50, seed=0):
            assert word.isalpha() and word.islower()

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_vocabulary(0)


class TestTextStream:
    def test_document_count(self):
        stream = SyntheticTextStream(vocabulary_size=200, seed=3)
        docs = list(stream.documents(50))
        assert len(docs) == 50
        assert all(docs)

    def test_documents_tokenize_into_vocab(self):
        stream = SyntheticTextStream(vocabulary_size=200, seed=3)
        vocab = set(stream.vocabulary)
        for doc in stream.documents(20):
            assert all(w in vocab for w in tokenize(doc))

    def test_word_stream_length(self):
        stream = SyntheticTextStream(vocabulary_size=100, seed=4)
        assert len(list(stream.words(1234))) == 1234

    def test_word_frequencies_follow_distribution(self):
        stream = SyntheticTextStream(vocabulary_size=1000, seed=5)
        words = list(stream.words(50_000))
        counts = {}
        for w in words:
            counts[w] = counts.get(w, 0) + 1
        top_share = max(counts.values()) / len(words)
        assert top_share == pytest.approx(stream.distribution.p1, rel=0.15)

    def test_mean_document_length(self):
        stream = SyntheticTextStream(
            vocabulary_size=100, words_per_document=8.0, seed=6
        )
        lengths = [len(tokenize(d)) for d in stream.documents(500)]
        assert np.mean(lengths) == pytest.approx(8.0, rel=0.15)

    def test_deterministic(self):
        a = list(SyntheticTextStream(vocabulary_size=50, seed=7).words(100))
        b = list(SyntheticTextStream(vocabulary_size=50, seed=7).words(100))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTextStream(vocabulary_size=10, words_per_document=0)
        with pytest.raises(ValueError):
            SyntheticTextStream(vocabulary_size=10).documents(-1).__next__()

    def test_distribution_size_mismatch(self):
        from repro.streams.distributions import ZipfKeyDistribution

        with pytest.raises(ValueError):
            SyntheticTextStream(
                vocabulary_size=10, distribution=ZipfKeyDistribution(1.0, 20)
            )


class TestTokenize:
    def test_splits_and_lowercases(self):
        assert tokenize("The Quick  fox") == ["the", "quick", "fox"]

    def test_empty(self):
        assert tokenize("   ") == []


class TestEndToEndWithWordCount:
    def test_pkg_wordcount_over_text(self):
        from repro.applications import DistributedWordCount, exact_top_k
        from repro.partitioning import PartialKeyGrouping

        stream = SyntheticTextStream(vocabulary_size=500, seed=8)
        words = []
        for doc in stream.documents(2000):
            words.extend(tokenize(doc))
        wc = DistributedWordCount(PartialKeyGrouping(6), aggregation_period=5000)
        wc.process_stream(words)
        assert wc.top_k(10) == exact_top_k(words, 10)
