"""Supervision unit contracts: faults, liveness, deadlines, masking.

The chaos-matrix end-to-end runs live in ``test_runtime_chaos.py``;
this file pins the building blocks one at a time: the ``--fault``
grammar, the restart cause-consumption rule, heartbeat lanes and the
liveness detector, deadline-bounded pushes against a consumer that
died mid-push, process reaping (with the /dev/shm leak check), worker
masking with deterministic deputies, and the recovery knobs on
``RuntimeConfig``.
"""

import math
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.api import make_partitioner
from repro.core.chunks import ArrayChunkSource, fork_source, iter_keyed_chunks
from repro.load.local import MASKED_LOAD
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    LivenessDetector,
    RingStallError,
    RuntimeConfig,
    SpscRing,
    WorkerDeadError,
    WorkerLoop,
    parse_fault,
    push_with_backpressure,
    reap_process,
    run_runtime,
    runtime_available,
    validate_fault_spec,
)
from repro.runtime.__main__ import main as runtime_main
from repro.runtime.faults import FaultState, consume_cause
from repro.streams.datasets import get_dataset

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

STREAM = get_dataset("WP").stream(12_000, seed=42)

needs_processes = pytest.mark.skipif(
    not runtime_available(), reason="process spawning or /dev/shm unavailable"
)


class TestFaultGrammar:
    def test_parse_every_kind(self):
        kill = parse_fault("kill:w=1@n=5000")
        assert (kill.kind, kill.worker, kill.at_messages) == ("kill", 1, 5000)
        assert kill.lethal

        stall = parse_fault("stall:w=0@t=1.5:duration=0.25")
        assert stall.at_seconds == 1.5 and stall.duration == 0.25
        assert not stall.lethal  # finite stall recovers on its own

        slow = parse_fault("slow:w=2@n=100:factor=8")
        assert slow.factor == 8.0 and not slow.lethal

        drop = parse_fault("drop:w=3@n=500:count=200")
        assert drop.count == 200 and not drop.lethal

    def test_stall_forever_is_lethal(self):
        assert parse_fault("stall:w=0@n=1").lethal

    def test_describe_round_trips(self):
        for text in (
            "kill:w=1@n=5000",
            "stall:w=0@n=100:duration=0.25",
            "slow:w=2@t=1.5:factor=8",
            "drop:w=3@n=500:count=200",
        ):
            spec = parse_fault(text)
            assert parse_fault(spec.describe()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:w=1@n=5",  # unknown kind
            "kill",  # no target
            "kill:w=1",  # no trigger
            "kill:x=1@n=5",  # malformed target
            "kill:w=one@n=5",  # non-integer worker
            "kill:w=1@q=5",  # unknown trigger
            "kill:w=1@n=5:factor=2",  # kill takes no parameters
            "slow:w=1@n=5:speed=2",  # unknown parameter
        ],
    )
    def test_malformed_specs_raise_and_validate(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)
        assert validate_fault_spec(bad) is not None

    def test_validate_accepts_good_spec(self):
        assert validate_fault_spec("kill:w=1@n=5000") is None

    def test_plan_random_is_seeded(self):
        a = FaultPlan.random(seed=11, num_workers=4, num_messages=10_000)
        b = FaultPlan.random(seed=11, num_workers=4, num_messages=10_000)
        c = FaultPlan.random(seed=12, num_workers=4, num_messages=10_000)
        assert a.specs == b.specs
        assert 1 <= len(a.specs) <= 2
        assert a.describe() != c.describe() or a.specs == c.specs

    def test_plan_random_needs_two_workers(self):
        with pytest.raises(ValueError, match="2 workers"):
            FaultPlan.random(seed=1, num_workers=1, num_messages=100)

    def test_plan_slicing(self):
        plan = FaultPlan.parse(
            ["kill:w=1@n=10", "slow:w=0@n=5", "drop:w=1@n=2"], seed=3
        )
        assert plan.workers() == (0, 1)
        assert [s.kind for s in plan.for_worker(1)] == ["kill", "drop"]
        assert plan.for_worker(2) == ()


class TestConsumeCause:
    KILL = FaultSpec(kind="kill", worker=0, at_messages=10)
    STALL = FaultSpec(kind="stall", worker=0, at_messages=5)
    DROP = FaultSpec(kind="drop", worker=0, at_messages=1)

    def test_exit_consumes_first_kill(self):
        left = consume_cause((self.STALL, self.KILL, self.DROP), "exit")
        assert left == (self.STALL, self.DROP)

    def test_wedged_consumes_first_stall(self):
        left = consume_cause((self.KILL, self.STALL), "wedged")
        assert left == (self.KILL,)

    def test_fallback_consumes_first_lethal(self):
        # finish-timeout has no kind mapping: the first lethal goes.
        left = consume_cause((self.DROP, self.KILL), "finish-timeout")
        assert left == (self.DROP,)

    def test_genuine_crash_keeps_specs(self):
        assert consume_cause((self.DROP,), "exit") == (self.DROP,)


class TestLivenessDetector:
    def test_silence_accrues_until_beat(self):
        beats = np.zeros(2, dtype=np.int64)
        detector = LivenessDetector(beats, deadline=1.0)
        assert detector.silent_for(0, now=10.0) >= 0.0
        assert detector.silent_for(0, now=10.6) == pytest.approx(0.6)
        assert not detector.expired(0, now=10.9)
        assert detector.expired(0, now=11.1)
        beats[0] += 1  # a beat resets the silence window
        assert detector.silent_for(0, now=11.2) == 0.0
        assert not detector.expired(0, now=12.1)

    def test_deadline_must_be_positive(self):
        with pytest.raises(ValueError):
            LivenessDetector(np.zeros(1, dtype=np.int64), deadline=0.0)


class TestHeartbeats:
    def _loop(self, **kwargs):
        ring = SpscRing.create_local(64)
        lanes = np.zeros(2, dtype=np.int64)
        loop = WorkerLoop(
            0, ring, lanes[:1], beats=lanes[1:], **kwargs
        )
        return ring, lanes, loop

    def test_idle_steps_beat(self):
        _ring, lanes, loop = self._loop()
        before = int(lanes[1])
        loop.step()
        loop.step()
        assert int(lanes[1]) == before + 2

    def test_stalled_loop_goes_silent(self):
        _ring, lanes, loop = self._loop(
            faults=(FaultSpec(kind="stall", worker=0, at_messages=0),)
        )
        loop.step()  # fires the stall
        silent = int(lanes[1])
        loop.step()
        loop.step()
        assert int(lanes[1]) == silent  # no beats while stalled
        assert math.isinf(loop.stall_remaining(time.perf_counter()))

    def test_stall_remaining_is_read_only(self):
        _ring, _lanes, loop = self._loop(
            faults=(
                FaultSpec(
                    kind="stall", worker=0, at_messages=0, duration=30.0
                ),
            )
        )
        loop.step()
        now = time.perf_counter()
        first = loop.stall_remaining(now)
        assert 0.0 < first <= 30.0
        # Observing must not clear the fault machine's stall state.
        assert loop.stall_remaining(now) == pytest.approx(first)


class TestPushDeadline:
    def test_deadline_raises_typed_error_with_partial_accounting(self):
        # The consumer is gone: a bounded push must raise RingStallError
        # carrying exactly how much entered the ring before the stall.
        ring = SpscRing.create_local(64)
        ids = np.arange(100, dtype=np.int64)
        stamps = np.zeros(100, dtype=np.float64)
        start = time.perf_counter()
        with pytest.raises(RingStallError) as err:
            push_with_backpressure(
                ring, ids, stamps, "block", deadline=0.1
            )
        assert time.perf_counter() - start < 5.0
        assert err.value.pushed == 64
        assert err.value.stalls >= 1

    def test_progress_resets_the_deadline(self):
        # A consumer that keeps draining never trips the deadline even
        # if the total push takes longer than it.
        ring = SpscRing.create_local(8)
        lanes = np.zeros(2, dtype=np.int64)
        loop = WorkerLoop(0, ring, lanes[:1], beats=lanes[1:])
        ids = np.arange(400, dtype=np.int64)
        stamps = np.zeros(400, dtype=np.float64)
        outcome = push_with_backpressure(
            ring, ids, stamps, "block", drain=loop.step, deadline=0.5
        )
        assert outcome.pushed == 400

    @needs_processes
    def test_killed_consumer_mid_push_fails_cleanly(self):
        # Real worker process crashes mid-stream with a tiny ring: the
        # source's push deadline trips, the fail policy aborts cleanly,
        # and the result is labeled with exact loss accounting.
        plan = FaultPlan.parse(["kill:w=1@n=100"], seed=3)
        result = run_runtime(
            STREAM,
            make_partitioner("pkg", 2, seed=42),
            RuntimeConfig(
                mode="process",
                capacity=256,
                flush_size=256,
                recovery="fail",
                faults=plan,
                push_deadline=0.5,
                liveness_deadline=2.0,
            ),
        )
        assert result.status == "failed"
        assert result.stall_timeouts >= 1
        assert result.failures and result.failures[0]["worker"] == 1
        assert result.failures[0]["reason"] in ("exit", "wedged")
        assert result.conservation_ok
        assert result.undelivered > 0  # the abort stranded routed traffic


def _sleep_forever() -> None:  # module-level: Process targets must pickle
    time.sleep(3600)


class TestReaping:
    @needs_processes
    def test_reap_escalates_and_returns_exitcode(self):
        proc = multiprocessing.Process(target=_sleep_forever, daemon=True)
        proc.start()
        assert proc.is_alive()
        exitcode = reap_process(proc, timeout=2.0)
        assert not proc.is_alive()
        assert exitcode is not None and exitcode != 0

    @needs_processes
    def test_reap_tolerates_already_dead(self):
        proc = multiprocessing.Process(target=_noop, daemon=True)
        proc.start()
        proc.join(timeout=10.0)
        assert reap_process(proc, timeout=1.0) == 0

    @needs_processes
    def test_no_shm_leftovers_after_faulted_runs(self):
        before = set(os.listdir("/dev/shm"))
        plan = FaultPlan.parse(["kill:w=1@n=200"], seed=3)
        for recovery in ("fail", "reroute", "restart"):
            run_runtime(
                STREAM,
                make_partitioner("pkg", 2, seed=42),
                RuntimeConfig(
                    mode="process",
                    capacity=512,
                    flush_size=512,
                    recovery=recovery,
                    faults=plan,
                    push_deadline=0.5,
                    liveness_deadline=2.0,
                ),
            )
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked


def _noop() -> None:
    pass


class TestMasking:
    def test_deputies_are_deterministic(self):
        p = make_partitioner("pkg", 4, seed=42)
        p.mask_worker(1)
        # alive = [0, 2, 3]; deputy = alive[1 % 3] = 2
        assert p.masked_workers == (1,)
        assert p.remap_worker(1) == 2
        assert p.remap_worker(0) == 0
        assignments = np.array([0, 1, 2, 3, 1], dtype=np.int64)
        np.testing.assert_array_equal(
            p.remap_masked(assignments), [0, 2, 2, 3, 2]
        )

    def test_mask_is_idempotent_and_composes(self):
        p = make_partitioner("sg", 4, seed=42)
        p.mask_worker(0)
        p.mask_worker(0)
        p.mask_worker(2)
        # alive = [1, 3]; 0 -> alive[0] = 1, 2 -> alive[0] = 1
        assert p.masked_workers == (0, 2)
        assert p.remap_worker(0) == 1
        assert p.remap_worker(2) == 1

    def test_cannot_mask_last_worker(self):
        p = make_partitioner("sg", 2, seed=42)
        p.mask_worker(0)
        with pytest.raises(RuntimeError, match="no workers would remain"):
            p.mask_worker(1)

    def test_mask_validates_worker_id(self):
        p = make_partitioner("sg", 2, seed=42)
        with pytest.raises(ValueError):
            p.mask_worker(2)

    def test_masks_survive_reset(self):
        p = make_partitioner("pkg", 4, seed=42)
        p.mask_worker(3)
        p.reset()
        assert p.masked_workers == (3,)
        assert p.remap_worker(3) != 3

    def test_estimator_poisoning_prefers_survivors(self):
        p = make_partitioner("pkg", 4, seed=42)
        p.mask_worker(1)
        estimator = p.estimator
        assert estimator.local[1] == MASKED_LOAD
        # A d-choice draw whose candidates include the dead worker
        # resolves to the live one.
        assert estimator.select([1, 3]) == 3
        # ...and the sentinel survives reset.
        estimator.reset()
        assert estimator.local[1] == MASKED_LOAD

    def test_unmasked_routing_is_untouched(self):
        masked = make_partitioner("pkg", 4, seed=42)
        clean = make_partitioner("pkg", 4, seed=42)
        keys = STREAM[:4000]
        first = masked.route_chunk(keys[:2000])
        clean_first = clean.route_chunk(keys[:2000])
        np.testing.assert_array_equal(first, clean_first)


class TestChunkSourceFork:
    def test_fork_mid_iteration_restarts_from_zero(self):
        keys = STREAM[:1000]
        source = ArrayChunkSource(keys, seed=0, chunk_size=100)
        it = iter_keyed_chunks(source, 100, None)
        consumed = [next(it) for _ in range(3)]
        fork = fork_source(source)
        replayed = list(iter_keyed_chunks(fork, 100, None))
        assert len(replayed) == 10
        assert replayed[0][0] == 0  # fork starts at message zero
        np.testing.assert_array_equal(replayed[2][2], consumed[2][2])
        # The original keeps its own position.
        start, _stop, _chunk, _times = next(it)
        assert start == 300

    def test_fork_source_is_identity_for_arrays(self):
        keys = STREAM[:100]
        assert fork_source(keys) is keys


class TestFaultState:
    def test_message_budget_clips_to_trigger(self):
        state = FaultState(
            specs=(FaultSpec(kind="drop", worker=0, at_messages=10),),
            started_at=0.0,
        )
        assert state.message_budget(0) == 10
        assert state.message_budget(7) == 3
        assert state.message_budget(12) == 0
        state.poll(12, now=0.0)
        assert state.drop_remaining == 1_000
        assert state.message_budget(12) is None

    def test_time_trigger_fires_on_elapsed(self):
        state = FaultState(
            specs=(FaultSpec(kind="slow", worker=0, at_seconds=5.0),),
            started_at=100.0,
        )
        state.poll(0, now=104.0)
        assert state.service_factor == 1.0
        state.poll(0, now=105.5)
        assert state.service_factor == 4.0


class TestRuntimeConfigRecovery:
    def test_restart_rejects_drop_policy(self):
        with pytest.raises(ValueError, match="lossless"):
            RuntimeConfig(policy="drop", recovery="restart")

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            RuntimeConfig(recovery="reboot")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"push_deadline": 0.0},
            {"liveness_deadline": -1.0},
            {"drain_deadline": 0.0},
            {"restart_limit": 0},
        ],
    )
    def test_deadlines_must_be_positive(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)

    def test_fault_targeting_absent_worker_rejected(self):
        plan = FaultPlan.parse(["kill:w=9@n=10"], seed=0)
        with pytest.raises(ValueError, match="targets worker 9"):
            run_runtime(
                STREAM[:100],
                make_partitioner("sg", 2, seed=42),
                RuntimeConfig(mode="simulated", faults=plan),
            )


class TestCli:
    def test_fault_restart_verify_exits_zero(self, capsys):
        code = runtime_main(
            [
                "--schemes",
                "pkg",
                "--messages",
                "8000",
                "--mode",
                "simulated",
                "--verify",
                "--fault",
                "kill:w=1@n=500",
                "--recovery",
                "restart",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "recovered" in out

    def test_chaos_reroute_verify_exits_zero(self, capsys):
        code = runtime_main(
            [
                "--schemes",
                "pkg",
                "--messages",
                "8000",
                "--mode",
                "simulated",
                "--verify",
                "--chaos",
                "--recovery",
                "reroute",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "faults:" in out

    def test_malformed_fault_spec_is_usage_error(self):
        with pytest.raises(SystemExit):
            runtime_main(["--fault", "explode:w=1@n=5"])

    def test_fault_beyond_worker_count_is_usage_error(self):
        with pytest.raises(SystemExit):
            runtime_main(["--workers", "2", "--fault", "kill:w=5@n=10"])
