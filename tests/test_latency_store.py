"""Property-based tests for the log-bucketed latency sketch.

The :class:`~repro.queueing.latency.LatencyStore` carries every
percentile the latency evaluation reports, so its two contracts are
load-bearing and tested as *properties* over arbitrary inputs:

* **bounded relative error** -- any quantile estimate is within the
  configured relative error of the exact order-statistic value;
* **exact mergeability** -- merging stores and then querying gives
  byte-identical answers to querying a store fed the concatenated
  samples, in any merge order (associative + commutative), which is
  what lets per-worker sketches combine into cluster-wide curves and
  parallel sweep shards stay byte-identical with serial runs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import DEFAULT_RELATIVE_ERROR, LatencyStore

# Positive sojourn-like magnitudes spanning microseconds to kiloseconds.
samples_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)
quantile_strategy = st.floats(min_value=0.0, max_value=0.999)


def exact_quantile(values, q):
    """The order statistic the sketch's rank walk targets."""
    ordered = sorted(values)
    rank = max(1, int(np.ceil(q * len(ordered))))
    return ordered[rank - 1]


class TestRelativeErrorBound:
    @given(samples_strategy, quantile_strategy)
    @settings(max_examples=200)
    def test_quantile_within_relative_error(self, values, q):
        store = LatencyStore()
        store.record_many(np.asarray(values))
        estimate = store.quantile(q)
        exact = exact_quantile(values, q)
        # tiny slack: estimates sit exactly on the bound at bucket edges.
        assert abs(estimate - exact) <= DEFAULT_RELATIVE_ERROR * exact * (1 + 1e-9)

    @given(samples_strategy)
    @settings(max_examples=100)
    def test_exact_aggregates(self, values):
        store = LatencyStore()
        store.record_many(np.asarray(values))
        assert store.count == len(values)
        assert store.min == pytest.approx(min(values))
        assert store.max == pytest.approx(max(values))
        assert store.mean() == pytest.approx(float(np.mean(values)))

    @given(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=100)
    def test_configurable_error_bound(self, value, relative_error):
        store = LatencyStore(relative_error)
        store.record(value)
        assert store.quantile(0.5) == pytest.approx(
            value, rel=relative_error * (1 + 1e-9)
        )


class TestMergeSemantics:
    @given(samples_strategy, samples_strategy, quantile_strategy)
    @settings(max_examples=200)
    def test_merge_equals_concat(self, a, b, q):
        """merge-then-query == query-of-concatenation, exactly."""
        sa, sb = LatencyStore(), LatencyStore()
        sa.record_many(np.asarray(a))
        sb.record_many(np.asarray(b))
        merged = sa.merge(sb)

        concat = LatencyStore()
        concat.record_many(np.asarray(a + b))
        assert merged.quantile(q) == concat.quantile(q)
        assert merged.count == concat.count
        assert merged.mean() == pytest.approx(concat.mean())

    @given(samples_strategy, samples_strategy, quantile_strategy)
    @settings(max_examples=100)
    def test_merge_commutes(self, a, b, q):
        sa, sb = LatencyStore(), LatencyStore()
        sa.record_many(np.asarray(a))
        sb.record_many(np.asarray(b))
        assert sa.merge(sb).quantile(q) == sb.merge(sa).quantile(q)

    @given(samples_strategy, samples_strategy, samples_strategy, quantile_strategy)
    @settings(max_examples=100)
    def test_merge_associates(self, a, b, c, q):
        stores = []
        for values in (a, b, c):
            s = LatencyStore()
            s.record_many(np.asarray(values))
            stores.append(s)
        sa, sb, sc = stores
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sc.merge(sb))
        assert left.quantile(q) == right.quantile(q)
        assert left.count == right.count

    @given(samples_strategy)
    @settings(max_examples=50)
    def test_merge_all_equals_pairwise(self, values):
        # one store per sample vs one store with all samples.
        singles = []
        for v in values:
            s = LatencyStore()
            s.record(v)
            singles.append(s)
        combined = LatencyStore.merge_all(singles)
        direct = LatencyStore()
        direct.record_many(np.asarray(values))
        assert combined.quantile(0.99) == direct.quantile(0.99)
        assert combined.count == direct.count

    def test_merge_requires_matching_error(self):
        with pytest.raises(ValueError):
            LatencyStore(0.01).merge(LatencyStore(0.02))


class TestBulkEquivalence:
    """Vectorized record_many == a loop of scalar record calls.

    The bulk path accumulates bucket hits through one ``np.bincount``
    over the dense lanes; buckets, counts, min/max and every quantile
    must equal the scalar path exactly.  Only the running ``sum`` may
    differ in the last ulp (numpy's pairwise summation vs sequential
    adds), so it is compared under a tight relative tolerance instead.
    """

    @given(samples_strategy)
    @settings(max_examples=200)
    def test_bulk_equals_scalar_loop(self, values):
        bulk = LatencyStore()
        bulk.record_many(np.asarray(values))
        scalar = LatencyStore()
        for v in values:
            scalar.record(v)

        bulk_state = bulk.to_dict()
        scalar_state = scalar.to_dict()
        bulk_sum = bulk_state.pop("sum")
        scalar_sum = scalar_state.pop("sum")
        assert bulk_state == scalar_state  # buckets, counts, min, max
        assert math.isclose(bulk_sum, scalar_sum, rel_tol=1e-12)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert bulk.quantile(q) == scalar.quantile(q)

    @given(samples_strategy, samples_strategy)
    @settings(max_examples=100)
    def test_interleaved_bulk_and_scalar(self, a, b):
        # Bulk after scalar (and vice versa) lands in the same buckets.
        mixed = LatencyStore()
        for v in a:
            mixed.record(v)
        mixed.record_many(np.asarray(b))
        pure = LatencyStore()
        pure.record_many(np.asarray(a + b))
        ms, ps = mixed.to_dict(), pure.to_dict()
        ms.pop("sum"), ps.pop("sum")
        assert ms == ps

    def test_bulk_with_zero_and_negative(self):
        store = LatencyStore()
        store.record_many(np.asarray([-2.0, 0.0, 1e-6, 3.0]))
        scalar = LatencyStore()
        for v in (-2.0, 0.0, 1e-6, 3.0):
            scalar.record(v)
        assert store.num_buckets() == scalar.num_buckets()
        assert store.quantile(0.5) == scalar.quantile(0.5)

    def test_empty_bulk_is_a_noop(self):
        store = LatencyStore()
        store.record_many(np.empty(0))
        assert store.count == 0

    def test_wide_span_grows_dense_lanes_once(self):
        # Nanoseconds and kiloseconds in one call: the dense lane span
        # covers both extremes without disturbing either bucket.
        store = LatencyStore()
        store.record_many(np.asarray([1e-9, 1e3]))
        assert store.count == 2
        assert store.quantile(0.0) == pytest.approx(1e-9, rel=0.011)
        assert store.quantile(1.0) == pytest.approx(1e3, rel=0.011)

    def test_merge_into_empty_both_directions(self):
        filled = LatencyStore()
        filled.record_many(np.asarray([0.1, 0.2, 0.3]))
        empty = LatencyStore()
        left = empty.merge(filled)
        right = filled.merge(LatencyStore())
        assert left.to_dict() == right.to_dict() == filled.to_dict()


class TestEdgeCases:
    def test_empty_store_quantile_raises(self):
        store = LatencyStore()
        with pytest.raises(ValueError):
            store.quantile(0.5)
        assert store.count == 0
        assert store.mean() == 0.0

    def test_single_sample_all_quantiles(self):
        store = LatencyStore()
        store.record(0.125)
        for q in (0.0, 0.5, 0.99, 0.999):
            assert store.quantile(q) == pytest.approx(0.125, rel=0.01)

    def test_nonpositive_values_land_in_zero_bucket(self):
        store = LatencyStore()
        store.record_many(np.asarray([0.0, -1.0, 5.0]))
        assert store.count == 3
        assert store.quantile(0.0) == 0.0
        assert store.quantile(0.9) == pytest.approx(5.0, rel=0.01)

    def test_rejects_nan_and_inf(self):
        store = LatencyStore()
        with pytest.raises(ValueError):
            store.record(float("nan"))
        with pytest.raises(ValueError):
            store.record_many(np.asarray([1.0, float("inf")]))

    def test_invalid_quantile_rejected(self):
        store = LatencyStore()
        store.record(1.0)
        # q = 1.0 is valid (the maximum); outside [0, 1] is not.
        assert store.quantile(1.0) == pytest.approx(1.0, rel=0.011)
        with pytest.raises(ValueError):
            store.quantile(1.1)
        with pytest.raises(ValueError):
            store.quantile(-0.1)

    def test_round_trip_dict(self):
        store = LatencyStore()
        store.record_many(np.asarray([0.001, 0.5, 2.0, 2.0]))
        clone = LatencyStore.from_dict(store.to_dict())
        assert clone.count == store.count
        assert clone.quantile(0.99) == store.quantile(0.99)
        assert clone.mean() == pytest.approx(store.mean())
