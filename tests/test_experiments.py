"""Tests for the experiment harnesses (tiny scale).

Each harness must run end to end, produce the expected row structure,
and reproduce the paper's *ordering* claims at reduced scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    format_dchoices,
    format_fig2,
    format_fig3,
    format_fig4,
    format_fig5a,
    format_fig5b,
    format_jaccard,
    format_probing,
    format_table1,
    format_table2,
    run_dchoices_ablation,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_jaccard,
    run_probing_ablation,
    run_table1,
    run_table2,
)
from repro.experiments.fig5a import degradations


@pytest.fixture(scope="module")
def tiny():
    return ExperimentConfig(
        scale=0.02,
        workers=(5, 10),
        sources=(5,),
        num_checkpoints=20,
        cluster_duration=3.0,
        cluster_warmup=1.0,
    )


class TestConfig:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)

    def test_messages_floor(self):
        from repro.streams import get_dataset

        cfg = ExperimentConfig(scale=1e-9)
        assert cfg.messages_for(get_dataset("WP")) == 10_000


class TestTable1:
    def test_all_datasets_present(self, tiny):
        rows = run_table1(tiny)
        assert [r.symbol for r in rows] == [
            "WP", "TW", "CT", "LN1", "LN2", "LJ", "SL1", "SL2",
        ]

    def test_p1_calibration_close(self, tiny):
        for r in run_table1(tiny):
            assert r.p1_relative_error < 0.35  # tiny streams are noisy

    def test_format(self, tiny):
        text = format_table1(run_table1(tiny))
        assert "Table I" in text and "WP" in text


class TestTable2:
    def test_row_grid_complete(self, tiny):
        rows = run_table2(tiny, datasets=("WP",))
        assert len(rows) == len(tiny.workers) * 5  # 5 schemes

    def test_hashing_worst_pkg_best_in_feasible_regime(self, tiny):
        rows = run_table2(tiny, datasets=("WP",))
        at5 = {r.scheme: r.average_imbalance for r in rows if r.num_workers == 5}
        assert at5["PKG"] < at5["H"]
        assert at5["PKG"] <= at5["PoTC"]

    def test_format(self, tiny):
        text = format_table2(run_table2(tiny, datasets=("WP",)))
        assert "Off-Greedy" in text


class TestFig2:
    def test_structure_and_ordering(self, tiny):
        rows = run_fig2(tiny, datasets=("WP",))
        techniques = {r.technique for r in rows}
        assert techniques == {"H", "G", "L5"}
        h = next(r for r in rows if r.technique == "H" and r.num_workers == 5)
        l5 = next(r for r in rows if r.technique == "L5" and r.num_workers == 5)
        g = next(r for r in rows if r.technique == "G" and r.num_workers == 5)
        assert l5.average_imbalance_fraction < h.average_imbalance_fraction
        # local within an order of magnitude of global
        assert l5.average_imbalance_fraction <= 10 * max(
            g.average_imbalance_fraction, 1e-9
        )

    def test_format(self, tiny):
        assert "Figure 2" in format_fig2(run_fig2(tiny, datasets=("WP",)))


class TestFig3:
    def test_series_structure(self, tiny):
        series = run_fig3(tiny, cases=(("WP", 10),))
        assert [s.technique for s in series] == ["G", "L5", "L5P1"]
        for s in series:
            assert s.hours.size == s.imbalance_fraction.size > 0

    def test_probing_no_better_than_local(self, tiny):
        series = run_fig3(tiny, cases=(("WP", 10),))
        by = {s.technique: s for s in series}
        assert by["L5P1"].mean_fraction <= 10 * by["L5"].mean_fraction + 1e-9

    def test_format(self, tiny):
        assert "Figure 3" in format_fig3(run_fig3(tiny, cases=(("WP", 10),)))


class TestFig4:
    def test_skewed_close_to_uniform(self, tiny):
        rows = run_fig4(tiny, datasets=("LJ",))
        for s in tiny.sources:
            for w in tiny.workers:
                uniform = next(
                    r
                    for r in rows
                    if r.split == "uniform" and r.num_sources == s and r.num_workers == w
                )
                skewed = next(
                    r
                    for r in rows
                    if r.split == "skewed" and r.num_sources == s and r.num_workers == w
                )
                assert skewed.average_imbalance_fraction <= (
                    3 * uniform.average_imbalance_fraction + 1e-6
                )

    def test_format(self, tiny):
        assert "Figure 4" in format_fig4(run_fig4(tiny, datasets=("LJ",)))


class TestFig5a:
    def test_shape(self, tiny):
        rows = run_fig5a(tiny, delays=(0.1e-3, 1.0e-3))
        assert len(rows) == 6
        kg_hi = next(r for r in rows if r.scheme == "KG" and r.cpu_delay == 1.0e-3)
        pkg_hi = next(r for r in rows if r.scheme == "PKG" and r.cpu_delay == 1.0e-3)
        sg_hi = next(r for r in rows if r.scheme == "SG" and r.cpu_delay == 1.0e-3)
        assert kg_hi.throughput < pkg_hi.throughput
        assert abs(pkg_hi.throughput - sg_hi.throughput) < 0.15 * sg_hi.throughput
        assert kg_hi.mean_latency > pkg_hi.mean_latency

    def test_degradations(self, tiny):
        rows = run_fig5a(tiny, delays=(0.1e-3, 1.0e-3))
        degr = degradations(rows)
        assert degr["KG"] > degr["PKG"]

    def test_format(self, tiny):
        text = format_fig5a(run_fig5a(tiny, delays=(0.1e-3, 1.0e-3)))
        assert "Figure 5(a)" in text and "throughput loss" in text


class TestFig5b:
    def test_pkg_dominates_sg(self, tiny):
        rows = run_fig5b(tiny, periods=(1.0, 2.0))
        for period in (1.0, 2.0):
            pkg = next(
                r for r in rows if r.scheme == "PKG" and r.aggregation_period == period
            )
            sg = next(
                r for r in rows if r.scheme == "SG" and r.aggregation_period == period
            )
            assert pkg.average_memory_counters < sg.average_memory_counters
            assert pkg.throughput >= 0.9 * sg.throughput

    def test_kg_reference_present(self, tiny):
        rows = run_fig5b(tiny, periods=(1.0,))
        assert any(r.scheme == "KG" for r in rows)

    def test_format(self, tiny):
        assert "Figure 5(b)" in format_fig5b(run_fig5b(tiny, periods=(1.0,)))


class TestExtras:
    def test_jaccard_in_range_and_balanced(self, tiny):
        row = run_jaccard(tiny)
        assert 0.0 < row.jaccard < 1.0
        assert "Jaccard" in format_jaccard(row)

    def test_dchoices_d1_worst(self, tiny):
        rows = run_dchoices_ablation(tiny, choices=(1, 2, 3))
        by = {r.num_choices: r.average_imbalance_fraction for r in rows}
        assert by[1] > by[2]
        assert by[3] <= by[2] * 2  # constant factor only
        assert "Ablation" in format_dchoices(rows)

    def test_probing_rows(self, tiny):
        rows = run_probing_ablation(tiny, periods_minutes=(0.0, 1.0))
        assert len(rows) == 2
        assert "probing" in format_probing(rows).lower()


class TestCLI:
    def test_main_runs_one_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])
