"""Tests for the distributed streaming word count application."""

import numpy as np
import pytest

from repro.applications import DistributedWordCount, exact_top_k
from repro.partitioning import KeyGrouping, PartialKeyGrouping, ShuffleGrouping
from repro.streams.distributions import ZipfKeyDistribution


def word_stream(m=10_000, seed=0):
    return ZipfKeyDistribution(1.1, 800).sample(
        m, np.random.default_rng(seed)
    ).tolist()


class TestCorrectness:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: KeyGrouping(6),
            lambda: ShuffleGrouping(6),
            lambda: PartialKeyGrouping(6),
        ],
        ids=["KG", "SG", "PKG"],
    )
    def test_top_k_exact_under_every_scheme(self, make):
        words = word_stream()
        wc = DistributedWordCount(make(), aggregation_period=1500)
        wc.process_stream(words)
        assert wc.top_k(10) == exact_top_k(words, 10)

    def test_totals_sum_to_messages(self):
        words = word_stream(5000)
        wc = DistributedWordCount(PartialKeyGrouping(4))
        wc.process_stream(words)
        wc.flush()
        assert sum(wc.aggregator.values()) == 5000

    def test_exact_top_k_reference(self):
        assert exact_top_k(["b", "a", "b"], 2) == [("b", 2), ("a", 1)]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            DistributedWordCount(KeyGrouping(2), aggregation_period=-1)


class TestCosts:
    def test_kg_one_counter_per_word(self):
        words = word_stream()
        wc = DistributedWordCount(KeyGrouping(6))
        wc.process_stream(words)
        distinct = len(set(words))
        assert wc.stats.peak_worker_counters == distinct

    def test_pkg_at_most_two_counters_per_word(self):
        words = word_stream()
        wc = DistributedWordCount(PartialKeyGrouping(6))
        wc.process_stream(words)
        distinct = len(set(words))
        assert distinct <= wc.stats.peak_worker_counters <= 2 * distinct
        assert all(wc.replication_of(w) <= 2 for w in set(words))

    def test_sg_up_to_w_counters_per_word(self):
        words = word_stream()
        num_workers = 6
        wc = DistributedWordCount(ShuffleGrouping(num_workers))
        wc.process_stream(words)
        distinct = len(set(words))
        assert wc.stats.peak_worker_counters <= num_workers * distinct
        # SG memory strictly exceeds PKG's on a skewed stream.
        pkg = DistributedWordCount(PartialKeyGrouping(num_workers))
        pkg.process_stream(words)
        assert wc.stats.peak_worker_counters > pkg.stats.peak_worker_counters

    def test_memory_ordering_kg_pkg_sg(self):
        words = word_stream(20_000)
        peaks = {}
        for name, p in (
            ("KG", KeyGrouping(8)),
            ("PKG", PartialKeyGrouping(8)),
            ("SG", ShuffleGrouping(8)),
        ):
            wc = DistributedWordCount(p)
            wc.process_stream(words)
            peaks[name] = wc.stats.peak_worker_counters
        assert peaks["KG"] <= peaks["PKG"] <= peaks["SG"]

    def test_shorter_period_less_memory_more_messages(self):
        words = word_stream(20_000)
        short = DistributedWordCount(PartialKeyGrouping(6), aggregation_period=500)
        long = DistributedWordCount(PartialKeyGrouping(6), aggregation_period=5000)
        short.process_stream(words)
        long.process_stream(words)
        assert short.stats.average_worker_counters < long.stats.average_worker_counters
        assert short.stats.aggregation_messages > long.stats.aggregation_messages

    def test_load_imbalance_pkg_below_kg(self):
        words = word_stream(30_000)
        kg = DistributedWordCount(KeyGrouping(8))
        pkg = DistributedWordCount(PartialKeyGrouping(8))
        kg.process_stream(words)
        pkg.process_stream(words)
        assert pkg.load_imbalance() < kg.load_imbalance()

    def test_flush_clears_workers(self):
        wc = DistributedWordCount(KeyGrouping(3))
        wc.process_stream(word_stream(1000))
        wc.flush()
        assert all(len(c) == 0 for c in wc.worker_counts)

    def test_flush_counts_messages(self):
        wc = DistributedWordCount(KeyGrouping(3))
        wc.process_stream(["a", "b", "a"])
        sent = wc.flush()
        assert sent == 2  # two distinct words
        assert wc.stats.aggregation_messages == 2
