"""Property-based tests (hypothesis) for the SPSC ring + backpressure.

The ring is the only channel between the source and the workers, so its
contracts are load-bearing for the runtime's count-identity guarantee
and tested as *properties* over arbitrary interleavings:

* **wrap-around correctness** -- pushes and pops that straddle the
  capacity boundary (monotonic cursors, modular slot positions) never
  corrupt or reorder slot data;
* **FIFO + conservation** -- any interleaving of pushes and pops yields
  exactly the pushed sequence, in order, with nothing lost or invented;
* **lossless block policy** -- with a draining consumer,
  ``push_with_backpressure(policy="block")`` delivers every message
  (``dropped == 0``) no matter how full the ring gets, while ``drop``
  accounts every shed message exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    PushOutcome,
    RingStalledError,
    SpscRing,
    push_with_backpressure,
    ring_nbytes,
)

capacities = st.integers(min_value=1, max_value=17)

#: an op sequence: positive = try_push that many, negative = try_pop.
ops_strategy = st.lists(
    st.integers(min_value=-13, max_value=13).filter(lambda n: n != 0),
    min_size=1,
    max_size=60,
)


def _batch(start: int, n: int):
    """A recognisable (indices, stamps) batch: stamp = index / 8."""
    indices = np.arange(start, start + n, dtype=np.int64)
    return indices, indices.astype(np.float64) / 8.0


class TestRingProperties:
    @given(capacities, ops_strategy)
    @settings(max_examples=200)
    def test_fifo_and_conservation(self, capacity, ops):
        ring = SpscRing.create_local(capacity)
        pushed = 0
        popped_ids = []
        popped_stamps = []
        for op in ops:
            if op > 0:
                indices, stamps = _batch(pushed, op)
                accepted = ring.try_push(indices, stamps)
                # partial pushes accept a *prefix*, never a subsequence.
                assert 0 <= accepted <= min(op, capacity)
                pushed += accepted
            else:
                indices, stamps = ring.try_pop(-op)
                popped_ids.extend(indices.tolist())
                popped_stamps.extend(stamps.tolist())
            assert 0 <= ring.size <= capacity
            assert ring.tail - ring.head == ring.size
        indices, stamps = ring.try_pop(ring.size)
        popped_ids.extend(indices.tolist())
        popped_stamps.extend(stamps.tolist())
        # Conservation + FIFO: exactly the pushed prefix, in order,
        # stamps still paired with their indices.
        assert popped_ids == list(range(pushed))
        assert popped_stamps == [i / 8.0 for i in range(pushed)]
        assert ring.size == 0

    @given(capacities, st.integers(min_value=1, max_value=200))
    @settings(max_examples=100)
    def test_wrap_around_cycles(self, capacity, cycles):
        """Fill/drain the full capacity repeatedly across the seam."""
        ring = SpscRing.create_local(capacity)
        for cycle in range(min(cycles, 50)):
            start = cycle * capacity
            indices, stamps = _batch(start, capacity)
            assert ring.try_push(indices, stamps) == capacity
            assert ring.free == 0
            assert ring.try_push(*_batch(-1, 1)) == 0  # full: rejects
            out_i, out_s = ring.try_pop(capacity)
            np.testing.assert_array_equal(out_i, indices)
            np.testing.assert_array_equal(out_s, stamps)
        assert ring.head == ring.tail

    @given(capacities, ops_strategy)
    @settings(max_examples=100)
    def test_block_policy_never_loses(self, capacity, ops):
        """Block + a draining consumer delivers every single message."""
        ring = SpscRing.create_local(capacity)
        received = []

        def drain():
            indices, _ = ring.try_pop(3)
            received.extend(indices.tolist())
            return int(indices.size)

        sent = 0
        for op in ops:
            n = abs(op)
            outcome = push_with_backpressure(
                ring, *_batch(sent, n), "block", drain=drain
            )
            assert outcome == PushOutcome(pushed=n, dropped=0, stalls=outcome.stalls)
            sent += n
        while drain():
            pass
        assert received == list(range(sent))

    @given(capacities, ops_strategy)
    @settings(max_examples=100)
    def test_drop_policy_exact_accounting(self, capacity, ops):
        """pushed + dropped == offered for every drop-policy push."""
        ring = SpscRing.create_local(capacity)
        offered = 0
        delivered = []
        total_dropped = 0
        for i, op in enumerate(ops):
            n = abs(op)
            outcome = push_with_backpressure(ring, *_batch(offered, n), "drop")
            assert outcome.pushed + outcome.dropped == n
            offered += n
            total_dropped += outcome.dropped
            if i % 3 == 0:  # drain sometimes, so both branches exercise
                delivered.extend(ring.try_pop(capacity)[0].tolist())
        delivered.extend(ring.try_pop(capacity)[0].tolist())
        assert len(delivered) + total_dropped == offered
        # What survives is still strictly FIFO (a subsequence with only
        # *suffixes* of batches missing, hence strictly increasing).
        assert delivered == sorted(delivered)


class TestRingUnit:
    def test_layout_and_validation(self):
        assert ring_nbytes(4) == 24 * 8 + 4 * 16
        with pytest.raises(ValueError):
            ring_nbytes(0)
        with pytest.raises(ValueError):
            SpscRing.create_local(0)

    def test_from_buffer_roundtrip_and_size_check(self):
        buf = memoryview(bytearray(ring_nbytes(8)))
        ring = SpscRing.from_buffer(buf, 8, initialize=True)
        assert ring.try_push(*_batch(0, 5)) == 5
        again = SpscRing.from_buffer(buf, 8)
        assert again.size == 5
        out, _ = again.try_pop(5)
        assert out.tolist() == [0, 1, 2, 3, 4]
        assert ring.size == 0  # same backing memory
        with pytest.raises(ValueError):
            SpscRing.from_buffer(memoryview(bytearray(8)), 8)

    def test_done_and_exhausted(self):
        ring = SpscRing.create_local(4)
        ring.try_push(*_batch(0, 2))
        assert not ring.done and not ring.exhausted
        ring.mark_done()
        assert ring.done and not ring.exhausted
        ring.try_pop(4)
        assert ring.exhausted

    def test_empty_pop_returns_empty_arrays(self):
        ring = SpscRing.create_local(2)
        indices, stamps = ring.try_pop(5)
        assert indices.size == 0 and stamps.size == 0
        assert indices.dtype == np.int64 and stamps.dtype == np.float64


class TestBackpressureUnit:
    def test_rejects_unknown_policy(self):
        ring = SpscRing.create_local(2)
        with pytest.raises(ValueError, match="policy"):
            push_with_backpressure(ring, *_batch(0, 1), "yolo")

    def test_stalled_drain_raises(self):
        ring = SpscRing.create_local(2)
        ring.try_push(*_batch(0, 2))
        with pytest.raises(RingStalledError):
            push_with_backpressure(
                ring, *_batch(2, 1), "block", drain=lambda: 0
            )

    def test_spin_policy_with_drain_is_lossless(self):
        ring = SpscRing.create_local(3)
        got = []

        def drain():
            indices, _ = ring.try_pop(2)
            got.extend(indices.tolist())
            return int(indices.size)

        outcome = push_with_backpressure(ring, *_batch(0, 10), "spin", drain=drain)
        assert outcome.dropped == 0 and outcome.pushed == 10
        while drain():
            pass
        assert got == list(range(10))
