"""LPT scheduling guarantee tests for Off-Greedy.

Off-Greedy is exactly LPT over key frequencies, so its *planned* final
loads must respect the classic makespan guarantees:

* Against the trivial lower bound ``LB = max(total/W, heaviest)`` only
  the *list-scheduling* bound is valid: ``makespan <= (2 - 1/W) * LB``
  (the busiest worker started its last key when every worker held at
  most ``(total - p_j)/W``, so ``makespan <= total/W + (1 - 1/W) p_j``).
  Graham's tighter ``(4/3 - 1/(3W))`` factor holds against the true
  optimum OPT, *not* against LB -- e.g. five unit keys on four workers
  have ``LB = 5/4`` but ``OPT = makespan = 2 > (4/3)(5/4)``.
* Against the true optimum (brute-forced on small instances), LPT must
  satisfy Graham's ``makespan <= (4/3 - 1/(3W)) * OPT``.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import OfflineGreedy


def planned_makespan(frequencies, num_workers):
    og = OfflineGreedy(num_workers).fit(frequencies)
    loads = np.zeros(num_workers)
    for key, freq in frequencies.items():
        loads[og.routing_table[key]] += freq
    return loads.max(), loads


def brute_force_opt(freqs, num_workers):
    """Exact optimal makespan by exhaustive assignment (small inputs)."""
    best = float("inf")
    for assignment in itertools.product(range(num_workers), repeat=len(freqs)):
        loads = [0] * num_workers
        for freq, worker in zip(freqs, assignment):
            loads[worker] += freq
        best = min(best, max(loads))
    return best


class TestLPTBound:
    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_list_scheduling_bound_vs_lower_bound(self, freqs, num_workers):
        frequencies = {i: f for i, f in enumerate(freqs)}
        makespan, _ = planned_makespan(frequencies, num_workers)
        optimal_lb = max(sum(freqs) / num_workers, max(freqs))
        assert makespan <= (2 - 1 / num_workers) * optimal_lb + 1e-9

    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_graham_bound(self, freqs, num_workers):
        """LPT is within (4/3 - 1/(3W)) of the true optimum."""
        frequencies = {i: f for i, f in enumerate(freqs)}
        makespan, _ = planned_makespan(frequencies, num_workers)
        opt = brute_force_opt(freqs, num_workers)
        assert makespan <= (4 / 3 - 1 / (3 * num_workers)) * opt + 1e-9

    def test_unit_keys_exceed_four_thirds_of_lower_bound(self):
        """The case falsifying the old (4/3)*LB assertion: LB < OPT."""
        freqs = [1, 1, 1, 1, 1]
        frequencies = {i: f for i, f in enumerate(freqs)}
        makespan, _ = planned_makespan(frequencies, 4)
        lower_bound = max(sum(freqs) / 4, max(freqs))
        opt = brute_force_opt(freqs, 4)
        assert makespan == opt == 2
        assert makespan > (4 / 3) * lower_bound  # LB alone is not OPT
        assert makespan <= (4 / 3 - 1 / 12) * opt

    def test_perfectly_divisible(self):
        frequencies = {i: 10 for i in range(8)}
        makespan, loads = planned_makespan(frequencies, 4)
        assert makespan == 20
        assert loads.min() == 20

    def test_single_heavy_key_dominates(self):
        frequencies = {0: 1000, 1: 1, 2: 1}
        makespan, _ = planned_makespan(frequencies, 3)
        assert makespan == 1000  # can't split a key under key grouping

    def test_deterministic_plan(self):
        frequencies = {i: (i * 37) % 100 + 1 for i in range(50)}
        a = OfflineGreedy(5).fit(frequencies).routing_table
        b = OfflineGreedy(5).fit(frequencies).routing_table
        assert a == b
