"""LPT scheduling guarantee tests for Off-Greedy.

Graham's bound: LPT's makespan is at most (4/3 - 1/(3W)) times optimal.
Off-Greedy is exactly LPT over key frequencies, so its *planned* final
loads must respect the bound against the trivial lower bounds
``max(total/W, heaviest key)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning import OfflineGreedy


def planned_makespan(frequencies, num_workers):
    og = OfflineGreedy(num_workers).fit(frequencies)
    loads = np.zeros(num_workers)
    for key, freq in frequencies.items():
        loads[og.routing_table[key]] += freq
    return loads.max(), loads


class TestLPTBound:
    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_graham_bound(self, freqs, num_workers):
        frequencies = {i: f for i, f in enumerate(freqs)}
        makespan, _ = planned_makespan(frequencies, num_workers)
        optimal_lb = max(sum(freqs) / num_workers, max(freqs))
        assert makespan <= (4 / 3) * optimal_lb + 1e-9

    def test_perfectly_divisible(self):
        frequencies = {i: 10 for i in range(8)}
        makespan, loads = planned_makespan(frequencies, 4)
        assert makespan == 20
        assert loads.min() == 20

    def test_single_heavy_key_dominates(self):
        frequencies = {0: 1000, 1: 1, 2: 1}
        makespan, _ = planned_makespan(frequencies, 3)
        assert makespan == 1000  # can't split a key under key grouping

    def test_deterministic_plan(self):
        frequencies = {i: (i * 37) % 100 + 1 for i in range(50)}
        a = OfflineGreedy(5).fit(frequencies).routing_table
        b = OfflineGreedy(5).fit(frequencies).routing_table
        assert a == b
