"""Tests for repro.hashing: Murmur implementations and hash families."""

import numpy as np
import pytest

from repro.hashing import (
    HashFamily,
    HashFunction,
    fmix32,
    fmix64,
    key_to_bytes,
    murmur2_64a,
    murmur3_32,
    splitmix64,
    splitmix64_array,
)
from repro.hashing.families import family_from_seeds


class TestMurmur3_32:
    """Reference vectors from Austin Appleby's SMHasher implementation."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0x00000000),
            (b"", 1, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"\x00\x00\x00\x00", 0, 0x2362F9DE),
            (b"hello", 0, 0x248BFA47),
            (b"hello, world", 0, 0x149BBB7F),
            (b"The quick brown fox jumps over the lazy dog", 0, 0x2E4FF723),
            (b"aaaa", 0x9747B28C, 0x5A97808A),
            (b"abc", 0, 0xB3DD93FA),
            (b"Hello, world!", 0x9747B28C, 0x24884CBA),
        ],
    )
    def test_reference_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_deterministic(self):
        assert murmur3_32(b"stream", 7) == murmur3_32(b"stream", 7)

    def test_seed_changes_output(self):
        assert murmur3_32(b"stream", 1) != murmur3_32(b"stream", 2)

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            murmur3_32("not bytes")  # type: ignore[arg-type]

    def test_accepts_bytearray_and_memoryview(self):
        base = murmur3_32(b"abcdef")
        assert murmur3_32(bytearray(b"abcdef")) == base
        assert murmur3_32(memoryview(b"abcdef")) == base

    def test_output_is_32_bit(self):
        for i in range(50):
            h = murmur3_32(str(i).encode())
            assert 0 <= h <= 0xFFFFFFFF

    def test_all_tail_lengths(self):
        # Exercise the 1-, 2- and 3-byte tail branches.
        values = {murmur3_32(b"x" * n) for n in range(1, 9)}
        assert len(values) == 8


class TestMurmur64:
    def test_deterministic(self):
        assert murmur2_64a(b"pkg", 3) == murmur2_64a(b"pkg", 3)

    def test_64_bit_range(self):
        for i in range(50):
            h = murmur2_64a(str(i).encode())
            assert 0 <= h <= 0xFFFFFFFFFFFFFFFF

    def test_seed_independence(self):
        a = {murmur2_64a(str(i).encode(), 1) % 100 for i in range(200)}
        b = {murmur2_64a(str(i).encode(), 2) % 100 for i in range(200)}
        assert a != b or True  # sets may coincide; the real check below
        same = sum(
            murmur2_64a(str(i).encode(), 1) == murmur2_64a(str(i).encode(), 2)
            for i in range(1000)
        )
        assert same == 0

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            murmur2_64a(12345)  # type: ignore[arg-type]

    def test_all_tail_lengths(self):
        values = {murmur2_64a(b"y" * n) for n in range(1, 17)}
        assert len(values) == 16

    def test_avalanche_quality(self):
        # Flipping one input bit should flip ~half the output bits.
        base = murmur2_64a(b"\x00" * 8)
        flipped = murmur2_64a(b"\x01" + b"\x00" * 7)
        distance = bin(base ^ flipped).count("1")
        assert 16 <= distance <= 48


class TestFinalizers:
    def test_fmix32_zero(self):
        assert fmix32(0) == 0

    def test_fmix64_zero(self):
        assert fmix64(0) == 0

    def test_fmix32_range(self):
        assert all(0 <= fmix32(i) <= 0xFFFFFFFF for i in range(100))

    def test_fmix64_bijective_sample(self):
        outs = {fmix64(i) for i in range(10_000)}
        assert len(outs) == 10_000  # injective on this sample


class TestSplitmix64:
    def test_known_sequence_distinct(self):
        outs = {splitmix64(i) for i in range(100_000)}
        assert len(outs) == 100_000

    def test_matches_vectorized(self):
        # The array path always mixes the seed, so it agrees with the
        # scalar seeded form -- seed 0 included (splitmix64(0) != 0).
        keys = np.arange(1000, dtype=np.int64)
        vec = splitmix64_array(keys)
        for i in (0, 1, 17, 999):
            assert int(vec[i]) == splitmix64(i ^ splitmix64(0))

    def test_vectorized_seed_matches_scalar_path(self):
        keys = np.arange(100, dtype=np.int64)
        for seed in (0, 12345):
            f = HashFunction(seed=seed)
            vec = f.hash_array(keys)
            for i in (0, 5, 99):
                assert int(vec[i]) == f(i)

    def test_uniformity_over_buckets(self):
        keys = np.arange(100_000, dtype=np.int64)
        buckets = splitmix64_array(keys, seed=9) % np.uint64(10)
        counts = np.bincount(buckets.astype(np.int64), minlength=10)
        assert counts.min() > 0.9 * counts.mean()
        assert counts.max() < 1.1 * counts.mean()


class TestKeyToBytes:
    def test_int_roundtrip_width(self):
        assert len(key_to_bytes(7)) == 8
        assert len(key_to_bytes(2**63 - 1)) == 8

    def test_negative_int_supported(self):
        assert key_to_bytes(-1) == b"\xff" * 8

    def test_numpy_int_matches_python_int(self):
        assert key_to_bytes(np.int64(42)) == key_to_bytes(42)

    def test_str_utf8(self):
        assert key_to_bytes("café") == "café".encode("utf-8")

    def test_bytes_passthrough(self):
        assert key_to_bytes(b"raw") == b"raw"

    def test_other_objects_use_repr(self):
        assert key_to_bytes((1, 2)) == repr((1, 2)).encode()


class TestHashFunction:
    def test_bucket_in_range(self):
        f = HashFunction(3)
        assert all(0 <= f.bucket(k, 7) < 7 for k in range(1000))

    def test_str_and_int_paths_are_deterministic(self):
        f = HashFunction(1)
        assert f("word") == f("word")
        assert f(99) == f(99)

    def test_bucket_array_matches_scalar(self):
        f = HashFunction(5)
        keys = np.arange(500, dtype=np.int64)
        vec = f.bucket_array(keys, 13)
        assert all(int(vec[i]) == f.bucket(i, 13) for i in range(0, 500, 37))


class TestHashFamily:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            HashFamily(size=0)

    def test_len_and_iteration(self):
        family = HashFamily(size=3, seed=1)
        assert len(family) == 3
        assert len(list(family)) == 3

    def test_choices_in_range(self):
        family = HashFamily(size=2, seed=0)
        for k in range(200):
            for c in family.choices(k, 11):
                assert 0 <= c < 11

    def test_choices_are_independent_functions(self):
        family = HashFamily(size=2, seed=0)
        both_equal = sum(
            family.choices(k, 1000)[0] == family.choices(k, 1000)[1]
            for k in range(2000)
        )
        # Collision probability 1/1000 per key: expect ~2, allow slack.
        assert both_equal < 20

    def test_same_seed_same_choices(self):
        a = HashFamily(size=2, seed=5)
        b = HashFamily(size=2, seed=5)
        assert all(a.choices(k, 10) == b.choices(k, 10) for k in range(100))

    def test_different_seed_different_choices(self):
        a = HashFamily(size=2, seed=5)
        b = HashFamily(size=2, seed=6)
        differing = sum(a.choices(k, 100) != b.choices(k, 100) for k in range(500))
        assert differing > 400

    def test_choice_matrix_matches_choices(self):
        family = HashFamily(size=3, seed=2)
        keys = np.arange(300, dtype=np.int64)
        matrix = family.choice_matrix(keys, 9)
        assert matrix.shape == (300, 3)
        for i in (0, 50, 299):
            assert tuple(matrix[i]) == family.choices(i, 9)

    def test_family_from_seeds(self):
        family = family_from_seeds([11, 22, 33])
        assert len(family) == 3
        assert family[0](5) == HashFunction(11)(5)

    def test_string_keys_supported(self):
        family = HashFamily(size=2, seed=0)
        choices = family.choices("the", 10)
        assert len(choices) == 2
        assert all(0 <= c < 10 for c in choices)
