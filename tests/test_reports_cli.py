"""End-to-end CLI: run -> render -> diff, plus the bench snapshot."""

import json
from pathlib import Path

import pytest

from repro.reports.__main__ import main
from repro.reports import load_artifacts, load_bench_snapshot

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One tiny real `run` shared by the CLI tests (table1 is cheapest)."""
    base = tmp_path_factory.mktemp("cli")
    rc = main(
        [
            "run",
            "--scale", "0.01",
            "--experiments", "table1",
            "--out", str(base / "results"),
            "--bench-out", str(base),
        ]
    )
    assert rc == 0
    return base


class TestRun:
    def test_writes_artifact_and_bench(self, run_dir):
        artifacts = load_artifacts(run_dir / "results")
        assert list(artifacts) == ["table1"]
        a = artifacts["table1"]
        assert a.manifest.scale == 0.01
        assert len(a.records) == 8  # one per Table I dataset
        assert a.metrics and a.summary
        bench = load_bench_snapshot(run_dir / "BENCH_experiments.json")
        assert bench["suite"] == "experiments"
        assert [e["name"] for e in bench["results"]] == ["_sweep", "table1"]
        by_name = {e["name"]: e for e in bench["results"]}
        assert by_name["table1"]["duration_seconds"] > 0
        sweep = by_name["_sweep"]
        assert sweep["sweep_wall_clock_seconds"] > 0
        assert sweep["jobs"] >= 1 and sweep["experiments"] == 1
        # The wall clock is gated per fan-out width: the metric name
        # carries the jobs tag so unlike-for-unlike runs never diff as
        # regressions.
        from repro.reports.diffing import bench_snapshot_artifact

        metrics = bench_snapshot_artifact(bench).metric_map()
        key = f"_sweep.sweep_wall_clock_seconds@jobs={sweep['jobs']}"
        assert metrics[key].direction == "lower"

    def test_unknown_experiment_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--experiments", "nope", "--out", str(tmp_path)])


class TestRender:
    def test_render_and_check(self, run_dir):
        out = run_dir / "EXPERIMENTS.md"
        assert main(
            ["render", "--results", str(run_dir / "results"), "--out", str(out)]
        ) == 0
        text = out.read_text()
        assert "## Table I" in text and "GENERATED FILE" in text
        assert main(
            ["render", "--results", str(run_dir / "results"),
             "--out", str(out), "--check"]
        ) == 0
        out.write_text(text + "stale\n")
        assert main(
            ["render", "--results", str(run_dir / "results"),
             "--out", str(out), "--check"]
        ) == 1

    def test_render_empty_dir_errors(self, tmp_path):
        (tmp_path / "r").mkdir()
        assert main(["render", "--results", str(tmp_path / "r")]) == 2

    def test_render_missing_dir_errors(self, tmp_path):
        assert main(["render", "--results", str(tmp_path / "missing")]) == 2


class TestDiff:
    def test_identical_sets_exit_zero(self, run_dir):
        results = str(run_dir / "results")
        assert main(["diff", results, results]) == 0

    def test_injected_regression_exits_nonzero(self, run_dir, tmp_path):
        src = run_dir / "results" / "table1.json"
        data = json.loads(src.read_text())
        for metric in data["metrics"]:
            metric["value"] *= 10  # worse p1 calibration across the board
        worse = tmp_path / "worse"
        worse.mkdir()
        (worse / "table1.json").write_text(json.dumps(data))
        assert main(["diff", str(run_dir / "results"), str(worse)]) == 1
        # The same movement in the *good* direction is not a regression.
        assert main(["diff", str(worse), str(run_dir / "results")]) == 0

    def test_single_file_arguments(self, run_dir):
        src = str(run_dir / "results" / "table1.json")
        assert main(["diff", src, src]) == 0

    def test_missing_path_is_an_error_not_a_regression(self, run_dir, capsys):
        # Exit 2 (error), distinguishable from exit 1 (regressed).
        results = str(run_dir / "results")
        assert main(["diff", str(run_dir / "nope"), results]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestBenchMerge:
    def test_partial_run_preserves_existing_entries(self, tmp_path):
        from repro.reports.bench import merge_bench_results, write_bench_snapshot

        write_bench_snapshot(
            "experiments",
            [{"name": "fig2", "duration_seconds": 1.0},
             {"name": "table2", "duration_seconds": 2.0}],
            directory=tmp_path,
        )
        merged = merge_bench_results(
            "experiments",
            [{"name": "fig2", "duration_seconds": 0.5}],
            directory=tmp_path,
        )
        by_name = {e["name"]: e for e in merged}
        assert by_name["fig2"]["duration_seconds"] == 0.5  # updated
        assert by_name["table2"]["duration_seconds"] == 2.0  # preserved

    def test_merge_without_existing_snapshot(self, tmp_path):
        from repro.reports.bench import merge_bench_results

        merged = merge_bench_results(
            "experiments", [{"name": "fig2", "duration_seconds": 1.0}],
            directory=tmp_path,
        )
        assert [e["name"] for e in merged] == ["fig2"]


class TestBench:
    def test_bench_snapshot(self, tmp_path):
        rc = main(
            ["bench", "--messages", "2000", "--workers", "4",
             "--out", str(tmp_path)]
        )
        assert rc == 0
        bench = load_bench_snapshot(tmp_path / "BENCH_partitioners.json")
        assert bench["suite"] == "partitioners"
        names = [e["name"] for e in bench["results"]]
        assert "pkg" in names and "kg" in names
        assert all(e["keys_per_second"] > 0 for e in bench["results"])
