"""Tests for static PoTC, On-Greedy, Off-Greedy and LeastLoaded."""

import numpy as np
import pytest

from repro.partitioning import (
    KeyGrouping,
    LeastLoaded,
    OfflineGreedy,
    OnlineGreedy,
    PartialKeyGrouping,
    StaticPoTC,
)
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution


def skewed_keys(m=30_000, seed=0):
    """Skewed stream with p1 ~ 10.5%: W = 10 is inside feasibility."""
    return ZipfKeyDistribution(1.0, 5000).sample(m, np.random.default_rng(seed))


class TestStaticPoTC:
    def test_key_bound_forever(self):
        potc = StaticPoTC(8, seed=0)
        first = potc.route(5)
        assert all(potc.route(5) == first for _ in range(20))

    def test_binding_within_two_choices(self):
        potc = StaticPoTC(8, seed=0)
        family_choices = potc.family.choices(3, 8)
        assert potc.route(3) in family_choices

    def test_candidates_collapse_after_binding(self):
        potc = StaticPoTC(8, seed=0)
        assert len(potc.candidates(4)) == 2
        w = potc.route(4)
        assert potc.candidates(4) == (w,)

    def test_routing_table_grows_per_key(self):
        potc = StaticPoTC(8, seed=0)
        for k in range(100):
            potc.route(k)
        assert potc.memory_entries() == 100

    def test_reset(self):
        potc = StaticPoTC(8, seed=0)
        potc.route(1)
        potc.reset()
        assert potc.memory_entries() == 0

    def test_better_than_hashing_worse_than_pkg(self):
        # seed=1 gives the hot key two *distinct* candidates, so key
        # splitting has something to split (with colliding candidates
        # PKG and PoTC coincide on the hot key by construction).
        keys = skewed_keys()
        potc = simulate_stream(keys, StaticPoTC(10, seed=1))
        kg = simulate_stream(keys, KeyGrouping(10, seed=1))
        pkg = simulate_stream(keys, PartialKeyGrouping(10, seed=1))
        assert potc.average_imbalance < kg.average_imbalance
        assert pkg.average_imbalance < potc.average_imbalance


class TestOnlineGreedy:
    def test_key_bound_forever(self):
        og = OnlineGreedy(6)
        first = og.route("k")
        assert all(og.route("k") == first for _ in range(10))

    def test_new_key_goes_to_least_loaded(self):
        og = OnlineGreedy(3)
        for _ in range(10):
            og.route("hot")  # loads one worker
        w = og.route("fresh")
        assert w != og.routing_table["hot"]

    def test_table_size(self):
        og = OnlineGreedy(4)
        for k in range(50):
            og.route(k)
        assert og.memory_entries() == 50

    def test_beats_potc_on_skew(self):
        keys = skewed_keys()
        on = simulate_stream(keys, OnlineGreedy(10))
        potc = simulate_stream(keys, StaticPoTC(10, seed=0))
        assert on.average_imbalance <= potc.average_imbalance * 1.5


class TestOfflineGreedy:
    def test_fit_assigns_every_key(self):
        og = OfflineGreedy(4).fit({k: 10 - k for k in range(10)})
        assert og.memory_entries() == 10

    def test_lpt_order(self):
        # Heaviest keys are placed first, each on the least-loaded bin.
        og = OfflineGreedy(2).fit({"a": 100, "b": 60, "c": 50})
        assert og.routing_table["a"] != og.routing_table["b"]
        # c joins b's bin (60+50=110 vs 100 -> bin of "b" was lighter
        # when c was placed).
        assert og.routing_table["c"] == og.routing_table["b"]

    def test_from_stream_balances_final_loads(self):
        keys = skewed_keys()
        og = OfflineGreedy.from_stream(keys, 10)
        result = simulate_stream(keys, og)
        kg = simulate_stream(keys, KeyGrouping(10, seed=0))
        assert result.final_imbalance < kg.final_imbalance / 5

    def test_unknown_key_fallback(self):
        og = OfflineGreedy(3).fit({"a": 5})
        w = og.route("unseen")
        assert 0 <= w < 3
        assert og.route("unseen") == w  # now remembered

    def test_route_chunk_vectorized_matches_table(self):
        keys = skewed_keys(5000)
        og = OfflineGreedy.from_stream(keys, 7)
        routed = og.route_chunk(keys)
        assert all(
            routed[i] == og.routing_table[int(keys[i])] for i in range(0, 5000, 333)
        )

    def test_reset(self):
        og = OfflineGreedy(3).fit({"a": 5})
        og.reset()
        assert og.memory_entries() == 0


class TestLeastLoaded:
    def test_perfect_balance_like_shuffle(self):
        ll = LeastLoaded(5)
        routed = ll.route_chunk(np.zeros(5000, dtype=np.int64))
        loads = np.bincount(routed, minlength=5)
        assert loads.max() - loads.min() <= 1

    def test_route_single(self):
        ll = LeastLoaded(3)
        seen = {ll.route("x") for _ in range(3)}
        assert seen == {0, 1, 2}

    def test_reset(self):
        ll = LeastLoaded(3)
        ll.route("x")
        ll.reset()
        assert ll.estimator.local.sum() == 0
