"""The sharded runtime's headline contract: counts identical to replay.

Routing happens only in the source process, on the same chunk grid and
through the same partitioner state evolution as
:func:`repro.core.engine.replay_stream`, so per-worker counts must be
byte-identical to the single-process engine for every registered scheme
-- in the in-process simulated-rings mode *and* with real worker
processes over shared memory.  Everything else here guards the
telemetry around that contract: sojourn sketches, drop accounting,
checkpoint publication, clean shutdown, and the ``python -m
repro.runtime`` CLI.
"""

import numpy as np
import pytest

from repro.api import available_schemes, make_partitioner
from repro.core.engine import replay_stream
from repro.queueing import LatencyStore
from repro.runtime import (
    RuntimeConfig,
    RuntimeResult,
    SpscRing,
    WorkerLoop,
    bench_throughput_e2e,
    run_runtime,
    runtime_available,
)
from repro.runtime.__main__ import main as runtime_main
from repro.streams.datasets import get_dataset

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

STREAM = get_dataset("WP").stream(12_000, seed=42)

needs_processes = pytest.mark.skipif(
    not runtime_available(), reason="process spawning or /dev/shm unavailable"
)


def _run(scheme, workers, **overrides):
    defaults = dict(mode="simulated", capacity=512)
    defaults.update(overrides)
    partitioner = make_partitioner(scheme, workers, seed=42)
    return run_runtime(STREAM, partitioner, RuntimeConfig(**defaults))


def _replay(scheme, workers):
    return replay_stream(STREAM, make_partitioner(scheme, workers, seed=42))


class TestCountIdentity:
    @pytest.mark.parametrize("scheme", sorted(available_schemes()))
    @pytest.mark.parametrize("workers", [2, 4])
    def test_simulated_counts_equal_replay(self, scheme, workers):
        result = _run(scheme, workers)
        replay = _replay(scheme, workers)
        np.testing.assert_array_equal(result.worker_loads, replay.final_loads)
        np.testing.assert_array_equal(result.routed_loads, replay.final_loads)
        assert result.dropped == 0

    @pytest.mark.parametrize("scheme", ["pkg", "kg", "sg", "jbsq"])
    @needs_processes
    def test_process_counts_equal_replay(self, scheme):
        result = _run(scheme, 4, mode="process")
        assert result.mode == "process"
        np.testing.assert_array_equal(
            result.worker_loads, _replay(scheme, 4).final_loads
        )

    def test_imbalance_series_matches_replay(self):
        result = _run("pkg", 4)
        replay = _replay("pkg", 4)
        np.testing.assert_array_equal(
            result.checkpoint_positions, replay.checkpoint_positions
        )
        np.testing.assert_array_equal(
            result.imbalance_series, replay.imbalance_series
        )

    def test_spin_policy_also_lossless(self):
        result = _run("pkg", 2, policy="spin", capacity=64)
        np.testing.assert_array_equal(
            result.worker_loads, _replay("pkg", 2).final_loads
        )


class TestDropPolicy:
    def test_drop_accounting_identity(self):
        result = _run("pkg", 2, policy="drop", capacity=128)
        assert result.dropped > 0
        np.testing.assert_array_equal(
            result.worker_loads + result.dropped_per_worker,
            result.routed_loads,
        )
        # Routed loads still match the replay: shedding happens *after*
        # the routing decision, so the partitioner's view is unchanged.
        np.testing.assert_array_equal(
            result.routed_loads, _replay("pkg", 2).final_loads
        )

    def test_lossless_policies_never_drop(self):
        for policy in ("block", "spin"):
            result = _run("sg", 3, policy=policy, capacity=32)
            assert result.dropped == 0, policy


class TestTelemetry:
    def test_latency_sketch_covers_processed_messages(self):
        result = _run("pkg", 4)
        assert isinstance(result.latency, LatencyStore)
        assert result.latency.count == result.processed == STREAM.size
        assert result.p99_sojourn() > 0.0
        assert result.messages_per_second > 0.0

    def test_worker_reports_and_checkpoints(self):
        result = _run("pkg", 4, checkpoint_interval=500)
        assert len(result.worker_reports) == 4
        for report in result.worker_reports:
            assert report["checkpoints_published"] >= 1
            assert report["count"] == result.worker_loads[report["worker_id"]]

    def test_service_cost_inflates_sojourn(self):
        fast = _run("sg", 2)
        slow = _run("sg", 2, service_cost=2e-6)
        assert slow.latency.mean() > fast.latency.mean()


class TestWorkerLoop:
    def test_privatized_accumulators_and_checkpoint_publication(self):
        ring = SpscRing.create_local(64)
        progress = np.zeros(3, dtype=np.int64)
        loop = WorkerLoop(1, ring, progress, checkpoint_interval=10)
        ring.try_push(
            np.arange(25, dtype=np.int64), np.zeros(25, dtype=np.float64)
        )
        ring.mark_done()
        loop.drain_until_done()
        assert loop.count == 25
        assert progress.tolist() == [0, 25, 0]  # only its own slot
        assert loop.checkpoints_published >= 2
        assert loop.report()["count"] == 25

    def test_validation(self):
        ring = SpscRing.create_local(4)
        progress = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            WorkerLoop(0, ring, progress, checkpoint_interval=0)
        with pytest.raises(ValueError):
            WorkerLoop(0, ring, progress, service_cost=-1.0)
        with pytest.raises(ValueError):
            WorkerLoop(0, ring, progress, max_batch=0)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="policy"):
            RuntimeConfig(policy="yolo")
        with pytest.raises(ValueError, match="mode"):
            RuntimeConfig(mode="cloud")
        with pytest.raises(ValueError, match="capacity"):
            RuntimeConfig(capacity=0)
        with pytest.raises(ValueError, match="service_cost"):
            RuntimeConfig(service_cost=-0.1)
        with pytest.raises(ValueError, match="flush_size"):
            RuntimeConfig(flush_size=0)

    def test_timestamp_length_checked(self):
        partitioner = make_partitioner("sg", 2, seed=42)
        with pytest.raises(ValueError, match="timestamps"):
            run_runtime(
                STREAM,
                partitioner,
                RuntimeConfig(mode="simulated"),
                timestamps=np.zeros(3),
            )


class TestBenchHarness:
    def test_entries_shape(self):
        entries = bench_throughput_e2e(
            schemes=("pkg", "sg"),
            num_messages=5_000,
            num_workers=2,
            config=RuntimeConfig(mode="simulated"),
        )
        assert [e["name"] for e in entries] == ["pkg@e2e", "sg@e2e"]
        for entry in entries:
            assert entry["e2e_messages_per_second"] > 0
            assert entry["p99_sojourn_seconds"] > 0
            assert entry["mode"] == "simulated"
            assert entry["dropped"] == 0
            assert entry["streaming"] is False
            # The per-stage transport breakdown rides along.
            for stage_field in (
                "route_seconds", "scatter_seconds",
                "flush_stall_seconds", "drain_seconds",
            ):
                assert entry[stage_field] >= 0.0
            assert entry["transport_overhead_ratio"] >= 1.0
            assert entry["flushes"] >= 2

    def test_streaming_bench_matches_materialized_counts(self):
        common = dict(
            schemes=("pkg",),
            num_messages=5_000,
            num_workers=2,
            config=RuntimeConfig(mode="simulated"),
        )
        (plain,) = bench_throughput_e2e(**common)
        (streamed,) = bench_throughput_e2e(streaming=True, **common)
        assert plain["streaming"] is False
        assert streamed["streaming"] is True
        assert streamed["num_messages"] == plain["num_messages"] == 5_000

    def test_e2e_entries_are_diffable(self):
        from repro.reports.diffing import bench_snapshot_artifact

        entries = bench_throughput_e2e(
            schemes=("pkg",),
            num_messages=4_000,
            num_workers=2,
            config=RuntimeConfig(mode="simulated"),
        )
        artifact = bench_snapshot_artifact(
            {"suite": "partitioners", "results": entries}
        )
        by_name = {m.name: m for m in artifact.metrics}
        assert by_name["pkg@e2e.e2e_messages_per_second"].direction == "higher"
        assert by_name["pkg@e2e.p99_sojourn_seconds"].direction == "lower"


class TestCli:
    def test_verify_passes(self, capsys):
        code = runtime_main(
            [
                "--schemes", "pkg", "kg",
                "--workers", "3",
                "--messages", "8000",
                "--mode", "simulated",
                "--verify",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("verify: counts match replay_stream") == 2

    def test_bench_flag_writes_snapshot(self, tmp_path, capsys, monkeypatch):
        import repro.reports.bench as bench_module

        monkeypatch.setattr(bench_module, "repo_root", lambda: tmp_path)
        code = runtime_main(
            [
                "--schemes", "sg",
                "--workers", "2",
                "--messages", "4000",
                "--mode", "simulated",
                "--bench",
            ]
        )
        assert code == 0
        snapshot = bench_module.load_bench_snapshot(
            tmp_path / "BENCH_partitioners.json"
        )
        names = [e["name"] for e in snapshot["results"]]
        assert names == ["sg@e2e"]


class TestResultInvariant:
    def test_lossless_mismatch_raises(self):
        # Forge the invariant check directly: a lossless result whose
        # worker counts disagree with the routed loads must never be
        # returned silently -- run_runtime raises. Simulate by checking
        # the guard's arithmetic on a hand-built result.
        result = _run("sg", 2)
        assert isinstance(result, RuntimeResult)
        assert result.processed + result.dropped == result.num_messages
