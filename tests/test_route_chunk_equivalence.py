"""The chunk equivalence contract (satellite of the core refactor).

For every registered scheme, ``route_chunk`` -- chunked arbitrarily,
native kernels or pure Python -- must produce byte-identical
assignments to a per-message ``route()`` replay of the same stream.
This is what lets the chunked engine replace the per-message loops
without changing a single experiment number.
"""

import numpy as np
import pytest

from repro.api import available_schemes, make_partitioner
from repro.core.engine import route_chunked
from repro.dspe.topology import ClusterConfig, WordCountCluster
from repro.load import ProbingLoadEstimator, WorkerLoadRegistry
from repro.partitioning import PartialKeyGrouping
from repro.streams.distributions import ZipfKeyDistribution


def zipf_keys(n=20_000, seed=7):
    return ZipfKeyDistribution(1.4, 5_000).sample(n, np.random.default_rng(seed))


def per_message_reference(scheme, num_workers, keys, seed, timestamps=None):
    partitioner = make_partitioner(scheme, num_workers, seed=seed)
    out = np.empty(len(keys), dtype=np.int64)
    for i, key in enumerate(keys):
        now = float(timestamps[i]) if timestamps is not None else 0.0
        out[i] = partitioner.route(key, now)
    return out


@pytest.mark.parametrize("scheme", sorted(available_schemes()))
@pytest.mark.parametrize("chunk_size", [999, 65_536])
def test_chunked_matches_per_message_zipf(scheme, chunk_size):
    keys = zipf_keys()
    reference = per_message_reference(scheme, 7, keys, seed=3)
    chunked = route_chunked(
        keys, make_partitioner(scheme, 7, seed=3), chunk_size=chunk_size
    )
    assert np.array_equal(chunked, reference), scheme


@pytest.mark.parametrize("scheme", sorted(available_schemes()))
def test_chunked_matches_per_message_string_keys(scheme):
    rng = np.random.default_rng(11)
    words = np.array([f"key-{z}" for z in rng.zipf(1.6, size=4_000)])
    reference = per_message_reference(scheme, 5, words, seed=1)
    chunked = route_chunked(
        words, make_partitioner(scheme, 5, seed=1), chunk_size=700
    )
    assert np.array_equal(chunked, reference), scheme


@pytest.mark.parametrize("scheme", sorted(available_schemes()))
def test_chunked_matches_per_message_with_timestamps(scheme):
    keys = zipf_keys(6_000)
    # Bursty, non-uniform arrival times (what a straggling cluster's
    # ack-throttled spout produces).
    rng = np.random.default_rng(5)
    timestamps = np.cumsum(rng.exponential(0.001, size=keys.size))
    reference = per_message_reference(scheme, 6, keys, seed=2, timestamps=timestamps)
    chunked = route_chunked(
        keys,
        make_partitioner(scheme, 6, seed=2),
        timestamps=timestamps,
        chunk_size=1_024,
    )
    assert np.array_equal(chunked, reference), scheme


def test_probing_estimator_stays_on_per_message_path():
    """Probing reads true loads at probe times, so its chunk path must
    replay per message and still match route() exactly."""
    keys = zipf_keys(8_000)
    timestamps = np.arange(keys.size, dtype=np.float64)

    def build():
        registry = WorkerLoadRegistry(6)
        estimator = ProbingLoadEstimator(6, registry, period=500.0)
        return PartialKeyGrouping(6, estimator=estimator, registry=None, seed=4)

    reference_pkg = build()
    reference = np.array(
        [reference_pkg.route(int(k), float(t)) for k, t in zip(keys, timestamps)]
    )
    chunked = route_chunked(keys, build(), timestamps=timestamps, chunk_size=333)
    assert np.array_equal(chunked, reference)


class _RecordingPartitioner:
    """Wraps a partitioner, recording every per-message decision."""

    def __init__(self, inner):
        self.inner = inner
        self.num_workers = inner.num_workers
        self.keys = []
        self.assignments = []

    def route(self, key, now: float = 0.0) -> int:
        worker = self.inner.route(key, now)
        self.keys.append(key)
        self.assignments.append(worker)
        return worker

    def __getattr__(self, name):
        return getattr(self.inner, name)


@pytest.mark.parametrize("scheme", ["kg", "pkg", "pkg:d=3"])
def test_chunk_replay_reproduces_straggler_cluster_routing(scheme):
    """DSPE equivalence, failure topologies included: replaying the key
    sequence a straggling heterogeneous cluster actually emitted through
    route_chunk reproduces the cluster's routing decisions exactly."""
    config = ClusterConfig(
        num_workers=4,
        duration=2.0,
        warmup=0.5,
        straggler_worker=1,
        straggler_factor=6.0,
        seed=9,
    )
    recorder = _RecordingPartitioner(make_partitioner(scheme, 4, seed=9))
    cluster = WordCountCluster(
        scheme,
        ZipfKeyDistribution(1.5, 800),
        config,
        partitioner=recorder,
        worker_cpu_delays=[0.3e-3, 0.5e-3, 0.2e-3, 0.8e-3],
    )
    cluster.run()
    assert len(recorder.keys) > 100

    fresh = make_partitioner(scheme, 4, seed=9)
    replayed = route_chunked(np.array(recorder.keys), fresh, chunk_size=97)
    assert np.array_equal(replayed, np.array(recorder.assignments))
