"""Metric diffing: direction-aware classification and tolerances."""

import pytest

from repro.reports import ExperimentArtifact, Metric, RunManifest, SchemaError
from repro.reports.diffing import diff_artifacts, load_artifact_set


def artifact(metrics, experiment="table2"):
    return ExperimentArtifact(
        experiment=experiment,
        paper_section="Table II",
        manifest=RunManifest(
            seed=1, scale=1.0, git_sha="sha", created_utc="t"
        ),
        metrics=metrics,
    )


def one_change(old_metric, new_metric, **kwargs):
    report = diff_artifacts(
        {"table2": artifact([old_metric])},
        {"table2": artifact([new_metric])},
        **kwargs,
    )
    (change,) = report.changes
    return report, change


class TestClassification:
    def test_lower_is_better_regression(self):
        report, change = one_change(Metric("m", 1.0), Metric("m", 2.0))
        assert change.status == "regressed"
        assert report.has_regressions

    def test_lower_is_better_improvement(self):
        _, change = one_change(Metric("m", 2.0), Metric("m", 1.0))
        assert change.status == "improved"

    def test_higher_is_better_flips(self):
        _, change = one_change(
            Metric("m", 100.0, "higher"), Metric("m", 50.0, "higher")
        )
        assert change.status == "regressed"
        _, change = one_change(
            Metric("m", 50.0, "higher"), Metric("m", 100.0, "higher")
        )
        assert change.status == "improved"

    def test_within_tolerance_is_ok(self):
        report, change = one_change(
            Metric("m", 1.0), Metric("m", 1.2), tolerance=0.25
        )
        assert change.status == "ok"
        assert not report.has_regressions

    def test_absolute_floor_suppresses_noise_near_zero(self):
        # 2e-7 vs 1e-7 is a 2x relative change but far below the floor.
        _, change = one_change(Metric("m", 1e-7), Metric("m", 2e-7))
        assert change.status == "ok"

    def test_added_and_removed(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("old_only", 1.0)])},
            {"table2": artifact([Metric("new_only", 1.0)])},
        )
        statuses = {c.name: c.status for c in report.changes}
        assert statuses == {"old_only": "removed", "new_only": "added"}
        assert not report.has_regressions  # informational, not failures

    def test_direction_flip_rejected(self):
        with pytest.raises(SchemaError, match="direction"):
            one_change(Metric("m", 1.0, "lower"), Metric("m", 1.0, "higher"))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_artifacts({}, {}, tolerance=-0.1)


class TestReport:
    def test_format_mentions_regression_and_counts(self):
        report, _ = one_change(Metric("m", 1.0), Metric("m", 3.0))
        text = report.format()
        assert "! m: 1 -> 3" in text
        assert "1 regressed" in text

    def test_missing_experiment_counts_as_removed_metrics(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("m", 1.0)])}, {}
        )
        (change,) = report.changes
        assert change.status == "removed"


class TestBenchSnapshotDiff:
    """BENCH_*.json snapshots diff like artifacts (the bench-smoke gate)."""

    def _snapshot(self, tmp_path, name, kps):
        from repro.reports.bench import write_bench_snapshot

        results = [
            {"name": scheme, "keys_per_second": value, "num_messages": 1000}
            for scheme, value in kps.items()
        ]
        directory = tmp_path / name
        directory.mkdir()
        return write_bench_snapshot(
            "partitioners", results, directory=directory,
            created_utc="2026-01-01T00:00:00Z",
        )

    def test_throughput_drop_regresses(self, tmp_path):
        old = load_artifact_set(
            self._snapshot(tmp_path, "old", {"pkg": 100.0, "kg": 50.0})
        )
        new = load_artifact_set(
            self._snapshot(tmp_path, "new", {"pkg": 60.0, "kg": 50.0})
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert report.has_regressions
        (regression,) = report.regressions
        assert regression.name == "pkg.keys_per_second"
        assert regression.direction == "higher"

    def test_throughput_gain_improves(self, tmp_path):
        old = load_artifact_set(
            self._snapshot(tmp_path, "old", {"pkg": 100.0})
        )
        new = load_artifact_set(
            self._snapshot(tmp_path, "new", {"pkg": 500.0})
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions
        assert [c.name for c in report.improvements] == ["pkg.keys_per_second"]

    def test_within_tolerance_ok(self, tmp_path):
        old = load_artifact_set(self._snapshot(tmp_path, "old", {"pkg": 100.0}))
        new = load_artifact_set(self._snapshot(tmp_path, "new", {"pkg": 80.0}))
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions

    def test_cli_diff_on_bench_snapshots(self, tmp_path, capsys):
        from repro.reports.__main__ import main

        old = self._snapshot(tmp_path, "old", {"pkg": 100.0, "kg": 50.0})
        new = self._snapshot(tmp_path, "new", {"pkg": 10.0, "kg": 55.0})
        code = main(["diff", str(old), str(new), "--tolerance", "0.30"])
        out = capsys.readouterr().out
        assert code == 1
        assert "pkg.keys_per_second" in out
