"""Metric diffing: direction-aware classification and tolerances."""

import pytest

from repro.reports import ExperimentArtifact, Metric, RunManifest, SchemaError
from repro.reports.diffing import diff_artifacts, load_artifact_set


def artifact(metrics, experiment="table2"):
    return ExperimentArtifact(
        experiment=experiment,
        paper_section="Table II",
        manifest=RunManifest(
            seed=1, scale=1.0, git_sha="sha", created_utc="t"
        ),
        metrics=metrics,
    )


def one_change(old_metric, new_metric, **kwargs):
    report = diff_artifacts(
        {"table2": artifact([old_metric])},
        {"table2": artifact([new_metric])},
        **kwargs,
    )
    (change,) = report.changes
    return report, change


class TestClassification:
    def test_lower_is_better_regression(self):
        report, change = one_change(Metric("m", 1.0), Metric("m", 2.0))
        assert change.status == "regressed"
        assert report.has_regressions

    def test_lower_is_better_improvement(self):
        _, change = one_change(Metric("m", 2.0), Metric("m", 1.0))
        assert change.status == "improved"

    def test_higher_is_better_flips(self):
        _, change = one_change(
            Metric("m", 100.0, "higher"), Metric("m", 50.0, "higher")
        )
        assert change.status == "regressed"
        _, change = one_change(
            Metric("m", 50.0, "higher"), Metric("m", 100.0, "higher")
        )
        assert change.status == "improved"

    def test_within_tolerance_is_ok(self):
        report, change = one_change(
            Metric("m", 1.0), Metric("m", 1.2), tolerance=0.25
        )
        assert change.status == "ok"
        assert not report.has_regressions

    def test_absolute_floor_suppresses_noise_near_zero(self):
        # 2e-7 vs 1e-7 is a 2x relative change but far below the floor.
        _, change = one_change(Metric("m", 1e-7), Metric("m", 2e-7))
        assert change.status == "ok"

    def test_added_and_removed(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("old_only", 1.0)])},
            {"table2": artifact([Metric("new_only", 1.0)])},
        )
        statuses = {c.name: c.status for c in report.changes}
        assert statuses == {"old_only": "removed", "new_only": "added"}
        assert not report.has_regressions  # informational, not failures

    def test_direction_flip_rejected(self):
        with pytest.raises(SchemaError, match="direction"):
            one_change(Metric("m", 1.0, "lower"), Metric("m", 1.0, "higher"))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_artifacts({}, {}, tolerance=-0.1)


class TestReport:
    def test_format_mentions_regression_and_counts(self):
        report, _ = one_change(Metric("m", 1.0), Metric("m", 3.0))
        text = report.format()
        assert "! m: 1 -> 3" in text
        assert "1 regressed" in text

    def test_missing_experiment_counts_as_removed_metrics(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("m", 1.0)])}, {}
        )
        (change,) = report.changes
        assert change.status == "removed"


class TestBenchSnapshotDiff:
    """BENCH_*.json snapshots diff like artifacts (the bench-smoke gate)."""

    def _snapshot(self, tmp_path, name, kps):
        from repro.reports.bench import write_bench_snapshot

        results = [
            {"name": scheme, "keys_per_second": value, "num_messages": 1000}
            for scheme, value in kps.items()
        ]
        directory = tmp_path / name
        directory.mkdir()
        return write_bench_snapshot(
            "partitioners", results, directory=directory,
            created_utc="2026-01-01T00:00:00Z",
        )

    def test_throughput_drop_regresses(self, tmp_path):
        old = load_artifact_set(
            self._snapshot(tmp_path, "old", {"pkg": 100.0, "kg": 50.0})
        )
        new = load_artifact_set(
            self._snapshot(tmp_path, "new", {"pkg": 60.0, "kg": 50.0})
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert report.has_regressions
        (regression,) = report.regressions
        assert regression.name == "pkg.keys_per_second"
        assert regression.direction == "higher"

    def test_throughput_gain_improves(self, tmp_path):
        old = load_artifact_set(
            self._snapshot(tmp_path, "old", {"pkg": 100.0})
        )
        new = load_artifact_set(
            self._snapshot(tmp_path, "new", {"pkg": 500.0})
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions
        assert [c.name for c in report.improvements] == ["pkg.keys_per_second"]

    def test_within_tolerance_ok(self, tmp_path):
        old = load_artifact_set(self._snapshot(tmp_path, "old", {"pkg": 100.0}))
        new = load_artifact_set(self._snapshot(tmp_path, "new", {"pkg": 80.0}))
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions

    def _e2e_snapshot(self, tmp_path, name, entry):
        from repro.reports.bench import write_bench_snapshot

        directory = tmp_path / name
        directory.mkdir()
        return write_bench_snapshot(
            "partitioners", [entry], directory=directory,
            created_utc="2026-01-01T00:00:00Z",
        )

    def _e2e_entry(self, **overrides):
        entry = {
            "name": "pkg@e2e",
            "e2e_messages_per_second": 1e6,
            "p99_sojourn_seconds": 1e-3,
            "route_seconds": 0.010,
            "scatter_seconds": 0.004,
            "flush_stall_seconds": 0.002,
            "drain_seconds": 0.001,
            "transport_overhead_ratio": 1.7,
            "num_messages": 1000,
        }
        entry.update(overrides)
        return entry

    def test_stage_breakdown_maps_lower_is_better(self, tmp_path):
        from repro.reports.diffing import bench_snapshot_artifact

        artifact = bench_snapshot_artifact(
            {"suite": "partitioners", "results": [self._e2e_entry()]}
        )
        by_name = {m.name: m for m in artifact.metrics}
        for field in (
            "route_seconds",
            "scatter_seconds",
            "flush_stall_seconds",
            "drain_seconds",
            "transport_overhead_ratio",
        ):
            metric = by_name[f"pkg@e2e.{field}"]
            assert metric.direction == "lower", field

    def test_transport_overhead_growth_regresses(self, tmp_path):
        # The ratio shrinking is the whole point of the coalesced
        # transport path; a snapshot where it grows must gate.
        old = load_artifact_set(
            self._e2e_snapshot(tmp_path, "old", self._e2e_entry())
        )
        new = load_artifact_set(
            self._e2e_snapshot(
                tmp_path, "new",
                self._e2e_entry(transport_overhead_ratio=3.5),
            )
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        names = [c.name for c in report.regressions]
        assert "pkg@e2e.transport_overhead_ratio" in names

    def test_scatter_stall_shrink_improves(self, tmp_path):
        old = load_artifact_set(
            self._e2e_snapshot(tmp_path, "old", self._e2e_entry())
        )
        new = load_artifact_set(
            self._e2e_snapshot(
                tmp_path, "new",
                self._e2e_entry(
                    scatter_seconds=0.001, flush_stall_seconds=0.0005
                ),
            )
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions
        improved = {c.name for c in report.improvements}
        assert "pkg@e2e.scatter_seconds" in improved
        assert "pkg@e2e.flush_stall_seconds" in improved

    def test_old_snapshot_without_stage_fields_diffs_clean(self, tmp_path):
        # Pre-breakdown snapshots lack the stage fields entirely: the
        # new fields appear as "added" (informational), never gating.
        bare = self._e2e_entry()
        for field in (
            "route_seconds", "scatter_seconds", "flush_stall_seconds",
            "drain_seconds", "transport_overhead_ratio",
        ):
            bare.pop(field)
        old = load_artifact_set(self._e2e_snapshot(tmp_path, "old", bare))
        new = load_artifact_set(
            self._e2e_snapshot(tmp_path, "new", self._e2e_entry())
        )
        report = diff_artifacts(old, new, tolerance=0.30)
        assert not report.has_regressions
        added = {c.name for c in report.changes if c.status == "added"}
        assert "pkg@e2e.transport_overhead_ratio" in added

    def test_cli_diff_on_bench_snapshots(self, tmp_path, capsys):
        from repro.reports.__main__ import main

        old = self._snapshot(tmp_path, "old", {"pkg": 100.0, "kg": 50.0})
        new = self._snapshot(tmp_path, "new", {"pkg": 10.0, "kg": 55.0})
        code = main(["diff", str(old), str(new), "--tolerance", "0.30"])
        out = capsys.readouterr().out
        assert code == 1
        assert "pkg.keys_per_second" in out
