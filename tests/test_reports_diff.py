"""Metric diffing: direction-aware classification and tolerances."""

import pytest

from repro.reports import ExperimentArtifact, Metric, RunManifest, SchemaError
from repro.reports.diffing import diff_artifacts


def artifact(metrics, experiment="table2"):
    return ExperimentArtifact(
        experiment=experiment,
        paper_section="Table II",
        manifest=RunManifest(
            seed=1, scale=1.0, git_sha="sha", created_utc="t"
        ),
        metrics=metrics,
    )


def one_change(old_metric, new_metric, **kwargs):
    report = diff_artifacts(
        {"table2": artifact([old_metric])},
        {"table2": artifact([new_metric])},
        **kwargs,
    )
    (change,) = report.changes
    return report, change


class TestClassification:
    def test_lower_is_better_regression(self):
        report, change = one_change(Metric("m", 1.0), Metric("m", 2.0))
        assert change.status == "regressed"
        assert report.has_regressions

    def test_lower_is_better_improvement(self):
        _, change = one_change(Metric("m", 2.0), Metric("m", 1.0))
        assert change.status == "improved"

    def test_higher_is_better_flips(self):
        _, change = one_change(
            Metric("m", 100.0, "higher"), Metric("m", 50.0, "higher")
        )
        assert change.status == "regressed"
        _, change = one_change(
            Metric("m", 50.0, "higher"), Metric("m", 100.0, "higher")
        )
        assert change.status == "improved"

    def test_within_tolerance_is_ok(self):
        report, change = one_change(
            Metric("m", 1.0), Metric("m", 1.2), tolerance=0.25
        )
        assert change.status == "ok"
        assert not report.has_regressions

    def test_absolute_floor_suppresses_noise_near_zero(self):
        # 2e-7 vs 1e-7 is a 2x relative change but far below the floor.
        _, change = one_change(Metric("m", 1e-7), Metric("m", 2e-7))
        assert change.status == "ok"

    def test_added_and_removed(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("old_only", 1.0)])},
            {"table2": artifact([Metric("new_only", 1.0)])},
        )
        statuses = {c.name: c.status for c in report.changes}
        assert statuses == {"old_only": "removed", "new_only": "added"}
        assert not report.has_regressions  # informational, not failures

    def test_direction_flip_rejected(self):
        with pytest.raises(SchemaError, match="direction"):
            one_change(Metric("m", 1.0, "lower"), Metric("m", 1.0, "higher"))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            diff_artifacts({}, {}, tolerance=-0.1)


class TestReport:
    def test_format_mentions_regression_and_counts(self):
        report, _ = one_change(Metric("m", 1.0), Metric("m", 3.0))
        text = report.format()
        assert "! m: 1 -> 3" in text
        assert "1 regressed" in text

    def test_missing_experiment_counts_as_removed_metrics(self):
        report = diff_artifacts(
            {"table2": artifact([Metric("m", 1.0)])}, {}
        )
        (change,) = report.changes
        assert change.status == "removed"
