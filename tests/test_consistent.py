"""Tests for consistent-hashing partitioners (Section VII extension)."""

import numpy as np
import pytest

from repro.partitioning import (
    ConsistentKeyGrouping,
    ConsistentPartialKeyGrouping,
    HashRing,
    KeyGrouping,
)
from repro.partitioning.consistent import relocation_fraction
from repro.simulation import simulate_stream
from repro.streams.distributions import ZipfKeyDistribution


def skewed_keys(m=30_000, seed=0):
    return ZipfKeyDistribution(1.0, 5000).sample(m, np.random.default_rng(seed))


class TestHashRing:
    def test_successor_in_worker_set(self):
        ring = HashRing(8, seed=1)
        for k in range(200):
            (w,) = ring.successors(k, 1)
            assert 0 <= w < 8

    def test_successors_distinct(self):
        ring = HashRing(8, seed=1)
        for k in range(100):
            pair = ring.successors(k, 2)
            assert len(pair) == 2
            assert pair[0] != pair[1]

    def test_count_capped_by_membership(self):
        ring = HashRing(2, seed=0)
        assert len(ring.successors("x", 5)) == 2

    def test_deterministic(self):
        a, b = HashRing(6, seed=4), HashRing(6, seed=4)
        assert all(a.successors(k, 2) == b.successors(k, 2) for k in range(100))

    def test_remove_worker_reroutes_its_keys_only(self):
        before = HashRing(8, seed=2)
        after = HashRing(8, seed=2)
        after.remove_worker(3)
        keys = range(5000)
        moved = relocation_fraction(before, after, keys, count=1)
        owned = sum(1 for k in keys if before.successors(k, 1)[0] == 3) / 5000
        # Exactly the removed worker's keys move.
        assert moved == pytest.approx(owned, abs=1e-9)
        assert all(after.successors(k, 1)[0] != 3 for k in range(500))

    def test_remove_unknown_worker(self):
        with pytest.raises(KeyError):
            HashRing(4).remove_worker(9)

    def test_add_worker_idempotent(self):
        ring = HashRing(4, seed=0)
        points = len(ring._points)
        ring.add_worker(2)
        assert len(ring._points) == points

    def test_arc_balance_with_virtual_nodes(self):
        ring = HashRing(10, virtual_nodes=128, seed=3)
        keys = np.arange(50_000)
        owners = np.array([ring.successors(int(k), 1)[0] for k in keys[:5000]])
        counts = np.bincount(owners, minlength=10)
        assert counts.max() < 2.5 * counts.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(4, virtual_nodes=0)


class TestConsistentKeyGrouping:
    def test_deterministic_per_key(self):
        ch = ConsistentKeyGrouping(8, seed=1)
        assert all(ch.route(42) == ch.route(42) for _ in range(5))

    def test_candidates_single(self):
        ch = ConsistentKeyGrouping(8, seed=1)
        assert ch.candidates("k") == (ch.route("k"),)

    def test_imbalanced_like_plain_kg_on_skew(self):
        keys = skewed_keys()
        ch = simulate_stream(keys, ConsistentKeyGrouping(10, seed=1))
        kg = simulate_stream(keys, KeyGrouping(10, seed=1))
        # Both single-choice schemes suffer comparably under skew.
        assert ch.average_imbalance > kg.average_imbalance / 10


class TestConsistentPKG:
    def test_routes_within_ring_candidates(self):
        pkg = ConsistentPartialKeyGrouping(8, seed=2)
        for k in range(300):
            assert pkg.route(k) in pkg.candidates(k)

    def test_balances_like_hash_pkg(self):
        keys = skewed_keys()
        ch_pkg = simulate_stream(keys, ConsistentPartialKeyGrouping(10, seed=1))
        kg = simulate_stream(keys, KeyGrouping(10, seed=1))
        assert ch_pkg.average_imbalance < kg.average_imbalance / 10

    def test_elastic_removal_moves_few_candidate_sets(self):
        keys = [int(k) for k in np.unique(skewed_keys(5000))]
        stable = ConsistentPartialKeyGrouping(10, seed=5)
        shrunk = ConsistentPartialKeyGrouping(10, seed=5)
        before = {k: stable.candidates(k) for k in keys}
        shrunk.remove_worker(7)
        moved = sum(1 for k in keys if shrunk.candidates(k) != before[k])
        # Only arcs touching worker 7 change: ~2/10 of candidate pairs.
        assert moved / len(keys) < 0.45
        assert all(7 not in shrunk.candidates(k) for k in keys)

    def test_add_worker_range_check(self):
        pkg = ConsistentPartialKeyGrouping(4, seed=0)
        with pytest.raises(ValueError):
            pkg.add_worker(4)

    def test_reset(self):
        pkg = ConsistentPartialKeyGrouping(4, seed=0)
        pkg.route(1)
        pkg.reset()
        assert pkg.estimator.local.sum() == 0

    def test_key_splitting_bounded(self):
        pkg = ConsistentPartialKeyGrouping(10, seed=1)
        keys = skewed_keys(5000)
        routes = {}
        for k in keys.tolist():
            routes.setdefault(k, set()).add(pkg.route(k))
        assert all(len(used) <= 2 for used in routes.values())
