"""Chunk kernels added for the last slow schemes: ring lookup tables
and the rebalancing route-with-epochs kernel.

Every test pins the vectorized paths to a per-message reference --
the chunk equivalence contract of ``Partitioner.route_chunk``.
"""

import bisect

import numpy as np
import pytest

from repro.core.engine import route_chunked
from repro.partitioning.consistent import (
    ConsistentKeyGrouping,
    ConsistentPartialKeyGrouping,
    HashRing,
)
from repro.partitioning.rebalancing import RebalancingKeyGrouping


def walk_successors(ring, key, count):
    """The original per-key ring walk, kept here as the oracle."""
    count = min(count, len(ring.workers))
    h = ring._key_hash(key)
    idx = bisect.bisect_right(ring._points, h) % len(ring._points)
    out, seen, i = [], set(), idx
    while len(out) < count:
        owner = ring._owners[i]
        if owner not in seen:
            seen.add(owner)
            out.append(owner)
        i = (i + 1) % len(ring._points)
    return tuple(out)


class TestHashRingTables:
    @pytest.mark.parametrize("count", [1, 2, 3, 9, 15])
    def test_successor_matrix_matches_walk(self, count):
        ring = HashRing(9, virtual_nodes=32, seed=5)
        keys = np.random.default_rng(1).integers(-1000, 10**12, size=1500)
        matrix = ring.successor_matrix(keys, count)
        assert matrix.shape == (keys.size, min(count, 9))
        for i, key in enumerate(keys.tolist()):
            expected = walk_successors(ring, key, count)
            assert tuple(matrix[i]) == expected
            assert ring.successors(key, count) == expected

    def test_string_keys_match_walk(self):
        ring = HashRing(6, virtual_nodes=16, seed=2)
        keys = np.array([f"key-{i % 131}" for i in range(400)])
        matrix = ring.successor_matrix(keys, 2)
        for i, key in enumerate(keys.tolist()):
            assert tuple(matrix[i]) == walk_successors(ring, key, 2)

    def test_membership_changes_invalidate_tables(self):
        ring = HashRing(8, virtual_nodes=16, seed=7)
        keys = np.arange(500, dtype=np.int64)
        before = ring.successor_matrix(keys, 2).copy()
        ring.remove_worker(2)
        after_removal = ring.successor_matrix(keys, 2)
        assert 2 not in set(after_removal.ravel().tolist())
        for i, key in enumerate(keys.tolist()):
            assert tuple(after_removal[i]) == walk_successors(ring, key, 2)
        ring.add_worker(2)
        assert np.array_equal(ring.successor_matrix(keys, 2), before)


class TestConsistentChunkEquivalence:
    @pytest.mark.parametrize("cls", [ConsistentKeyGrouping,
                                     ConsistentPartialKeyGrouping])
    def test_chunk_matches_per_message(self, cls):
        keys = np.random.default_rng(3).zipf(1.4, size=8_000) % 5_000
        chunked = route_chunked(keys, cls(10, seed=4), chunk_size=1_111)
        reference = cls(10, seed=4)
        expected = np.array([reference.route(k) for k in keys.tolist()])
        assert np.array_equal(chunked, expected)

    def test_chunk_after_elastic_resize(self):
        keys = np.random.default_rng(8).integers(0, 2_000, size=6_000)
        a = ConsistentPartialKeyGrouping(10, seed=6)
        b = ConsistentPartialKeyGrouping(10, seed=6)
        for p in (a, b):
            p.remove_worker(7)
        chunked = a.route_chunk(keys)
        expected = np.array([b.route(k) for k in keys.tolist()])
        assert np.array_equal(chunked, expected)
        assert 7 not in set(chunked.tolist())


REBALANCE_KW = dict(
    check_interval=1_000,
    imbalance_threshold=0.05,
    max_migrations_per_rebalance=4,
    seed=1,
)


def zipf_stream(n, seed=7):
    return np.random.default_rng(seed).zipf(1.3, size=n) % 3_000


class TestRebalancingEpochKernel:
    def test_chunk_matches_per_message_with_migrations(self):
        keys = zipf_stream(40_000)
        a = RebalancingKeyGrouping(8, **REBALANCE_KW)
        b = RebalancingKeyGrouping(8, **REBALANCE_KW)
        expected = np.array([a.route(k) for k in keys.tolist()])
        # Odd chunk size so epochs straddle chunk boundaries.
        chunked = route_chunked(keys, b, chunk_size=7_777)
        assert a.rebalances > 0 and a.migrations > 0  # scenario is real
        assert np.array_equal(chunked, expected)
        assert a.rebalances == b.rebalances
        assert a.migrations == b.migrations
        assert a.migrated_state == b.migrated_state
        assert a.overrides == b.overrides
        assert np.array_equal(a.loads, b.loads)

    def test_key_count_state_identical(self):
        keys = zipf_stream(15_000, seed=9)
        a = RebalancingKeyGrouping(6, **REBALANCE_KW)
        b = RebalancingKeyGrouping(6, **REBALANCE_KW)
        for k in keys.tolist():
            a.route(k)
        b.route_chunk(keys)
        assert a.key_counts == b.key_counts
        # Insertion order is the migration tie-break; it must match too.
        assert list(a.key_counts) == list(b.key_counts)
        assert a.memory_entries() == b.memory_entries()

    def test_mixed_granularity(self):
        keys = zipf_stream(20_000, seed=4)
        a = RebalancingKeyGrouping(8, **REBALANCE_KW)
        b = RebalancingKeyGrouping(8, **REBALANCE_KW)
        expected = np.array([a.route(k) for k in keys.tolist()])
        got = []
        got.extend(b.route(k) for k in keys[:300].tolist())
        got.extend(b.route_chunk(keys[300:12_500]).tolist())
        got.extend(b.route(k) for k in keys[12_500:12_600].tolist())
        got.extend(b.route_chunk(keys[12_600:]).tolist())
        assert np.array_equal(np.array(got), expected)
        assert a.overrides == b.overrides

    def test_string_keys(self):
        keys = np.array([f"k{i % 211}" for i in range(9_000)])
        a = RebalancingKeyGrouping(5, check_interval=500,
                                   imbalance_threshold=0.01,
                                   max_migrations_per_rebalance=3, seed=2)
        b = RebalancingKeyGrouping(5, check_interval=500,
                                   imbalance_threshold=0.01,
                                   max_migrations_per_rebalance=3, seed=2)
        expected = np.array([a.route(k) for k in keys.tolist()])
        assert np.array_equal(route_chunked(keys, b, chunk_size=2_000), expected)
        assert a.key_counts == b.key_counts and a.overrides == b.overrides

    def test_reset_clears_slot_state(self):
        p = RebalancingKeyGrouping(4, **REBALANCE_KW)
        p.route_chunk(zipf_stream(5_000))
        assert p.memory_entries() > 0
        p.reset()
        assert p.memory_entries() == 0 and p.key_counts == {}
        assert p.loads.sum() == 0 and p.rebalances == 0
        # Still routable after reset.
        assert p.route_chunk(np.arange(10, dtype=np.int64)).size == 10
