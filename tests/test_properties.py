"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import HashFamily, HashFunction, key_to_bytes, splitmix64
from repro.partitioning import (
    KeyGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
)
from repro.simulation.metrics import (
    count_partial_states,
    imbalance,
    jaccard_overlap,
    load_series,
)
from repro.sketches import SpaceSaving, StreamingHistogram

# Bounded key/worker strategies keep runs fast and reproducible.
keys_strategy = st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=400)
worker_counts = st.integers(min_value=1, max_value=16)


class TestHashingProperties:
    @given(st.integers(min_value=-(2**63), max_value=2**64 - 1))
    def test_splitmix_in_range(self, x):
        assert 0 <= splitmix64(x & 0xFFFFFFFFFFFFFFFF) <= 0xFFFFFFFFFFFFFFFF

    @given(st.one_of(st.integers(), st.text(), st.binary()))
    def test_key_to_bytes_total(self, key):
        assert isinstance(key_to_bytes(key), bytes)

    @given(st.integers(min_value=0, max_value=10**9), worker_counts)
    def test_hash_function_bucket_range(self, key, n):
        assert 0 <= HashFunction(1).bucket(key, n) < n

    @given(st.integers(min_value=0, max_value=10**6), worker_counts)
    def test_family_choices_deterministic(self, key, n):
        f1 = HashFamily(size=2, seed=9)
        f2 = HashFamily(size=2, seed=9)
        assert f1.choices(key, n) == f2.choices(key, n)


class TestPartitionerProperties:
    @given(keys_strategy, worker_counts)
    @settings(max_examples=50)
    def test_kg_routes_in_range_and_consistent(self, keys, n):
        kg = KeyGrouping(n)
        routes = [kg.route(k) for k in keys]
        assert all(0 <= r < n for r in routes)
        # Same key -> same worker, always.
        seen = {}
        for k, r in zip(keys, routes):
            assert seen.setdefault(k, r) == r

    @given(keys_strategy, worker_counts)
    @settings(max_examples=50)
    def test_sg_imbalance_at_most_one(self, keys, n):
        sg = ShuffleGrouping(n)
        loads = np.bincount(sg.route_chunk(np.array(keys)), minlength=n)
        assert loads.max() - loads.min() <= 1

    @given(keys_strategy, st.integers(min_value=2, max_value=12))
    @settings(max_examples=50)
    def test_pkg_key_splitting_invariant(self, keys, n):
        """Every message lands on one of its key's d=2 candidates."""
        pkg = PartialKeyGrouping(n, seed=3)
        for k in keys:
            assert pkg.route(k) in pkg.candidates(k)

    @given(keys_strategy, st.integers(min_value=2, max_value=12))
    @settings(max_examples=30)
    def test_pkg_replication_at_most_two(self, keys, n):
        pkg = PartialKeyGrouping(n, seed=5)
        keys_arr = np.array(keys)
        routes = pkg.route_chunk(keys_arr)
        for k in set(keys):
            used = set(routes[keys_arr == k].tolist())
            assert len(used) <= 2

    @given(keys_strategy, worker_counts)
    @settings(max_examples=30)
    def test_pkg_conserves_messages_and_balances_candidates(self, keys, n):
        """Loads sum to the stream length, and no candidate pair is
        ever more than one message apart *locally*: when both choices
        of a message were the same pair, greedy keeps them balanced."""
        pkg = PartialKeyGrouping(n, seed=7)
        keys_arr = np.array(keys)
        loads = np.bincount(pkg.route_chunk(keys_arr), minlength=n)
        assert loads.sum() == len(keys)
        # Every message went to a candidate of its key (invariant also
        # checked per-key above); loads never exceed the stream length.
        assert loads.max() <= len(keys)


class TestMetricProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=64))
    def test_imbalance_nonnegative_and_bounded(self, loads):
        value = imbalance(loads)
        assert 0 <= value <= max(loads)

    @given(keys_strategy, worker_counts)
    @settings(max_examples=30)
    def test_load_series_final_matches_total(self, keys, n):
        workers = np.array([k % n for k in keys])
        positions, series = load_series(workers, n, num_checkpoints=7)
        loads = np.bincount(workers, minlength=n)
        assert series[-1] == pytest.approx(loads.max() - loads.mean())

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200),
    )
    def test_jaccard_bounds_and_symmetry(self, a, b):
        m = min(len(a), len(b))
        wa, wb = np.array(a[:m]), np.array(b[:m])
        j = jaccard_overlap(wa, wb)
        assert 0.0 <= j <= 1.0
        assert j == jaccard_overlap(wb, wa)

    @given(keys_strategy, worker_counts)
    @settings(max_examples=30)
    def test_partial_states_bounds(self, keys, n):
        keys_arr = np.array(keys)
        workers = np.array([abs(hash((k, 1))) % n for k in keys])
        states = count_partial_states(keys_arr, workers)
        distinct = len(set(keys))
        assert distinct <= states <= min(len(keys), distinct * n)


class TestSpaceSavingProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=500),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50)
    def test_estimate_bounds(self, items, capacity):
        """true <= estimate <= true + N/capacity for tracked items."""
        ss = SpaceSaving(capacity)
        ss.extend(items)
        truth = {}
        for x in items:
            truth[x] = truth.get(x, 0) + 1
        for item in list(ss._counts):
            est = ss.estimate(item)
            true = truth.get(item, 0)
            assert true <= est
            assert est - true <= len(items) / capacity + 1
            assert est - true <= ss.error(item)

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300),
    )
    @settings(max_examples=30)
    def test_merge_preserves_invariant(self, left, right):
        a, b = SpaceSaving(16), SpaceSaving(16)
        a.extend(left)
        b.extend(right)
        merged = a.merge(b)
        truth = {}
        for x in left + right:
            truth[x] = truth.get(x, 0) + 1
        assert merged.total == len(left) + len(right)
        for item in list(merged._counts):
            true = truth.get(item, 0)
            assert merged.estimate(item) >= true
            assert merged.estimate(item) - true <= merged.error(item)


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=50)
    def test_total_and_budget_invariants(self, points, max_bins):
        h = StreamingHistogram(max_bins)
        h.extend(points)
        assert len(h) <= max_bins
        assert h.total == pytest.approx(len(points))
        assert sum(w for _, w in h.bins) == pytest.approx(len(points))

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_sum_monotone_and_bounded(self, points):
        h = StreamingHistogram(16)
        h.extend(points)
        lo, hi = min(points) - 1, max(points) + 1
        grid = np.linspace(lo, hi, 20)
        values = [h.sum(b) for b in grid]
        assert all(x <= y + 1e-6 for x, y in zip(values, values[1:]))
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(len(points))

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
    )
    @settings(max_examples=30)
    def test_merge_total(self, xs, ys):
        a, b = StreamingHistogram(8), StreamingHistogram(8)
        a.extend(xs)
        b.extend(ys)
        merged = a.merge(b)
        assert merged.total == pytest.approx(len(xs) + len(ys))
        assert len(merged) <= 8
