"""Tests for the single- and multi-source simulation runners."""

import numpy as np
import pytest

from repro.partitioning import KeyGrouping, PartialKeyGrouping, ShuffleGrouping
from repro.simulation import (
    assign_sources,
    simulate_multisource_pkg,
    simulate_partitioner_per_source,
    simulate_stream,
)
from repro.streams.distributions import ZipfKeyDistribution


def keys_(m=20_000, seed=0, exponent=1.0, num_keys=3000):
    return ZipfKeyDistribution(exponent, num_keys).sample(
        m, np.random.default_rng(seed)
    )


class TestSimulateStream:
    def test_result_fields(self):
        keys = keys_(1000)
        r = simulate_stream(keys, KeyGrouping(4))
        assert r.num_messages == 1000
        assert r.num_workers == 4
        assert r.num_sources == 1
        assert r.final_loads.sum() == 1000
        assert r.scheme == "H"

    def test_final_imbalance_consistent(self):
        keys = keys_(2000)
        r = simulate_stream(keys, KeyGrouping(4))
        assert r.final_imbalance == pytest.approx(
            r.final_loads.max() - r.final_loads.mean()
        )

    def test_average_ge_zero(self):
        r = simulate_stream(keys_(1000), ShuffleGrouping(3))
        assert r.average_imbalance >= 0.0

    def test_assignments_kept_on_request(self):
        keys = keys_(500)
        r = simulate_stream(keys, KeyGrouping(4), keep_assignments=True)
        assert r.assignments is not None
        assert np.array_equal(
            np.bincount(r.assignments, minlength=4), r.final_loads
        )

    def test_assignments_dropped_by_default(self):
        assert simulate_stream(keys_(500), KeyGrouping(4)).assignments is None

    def test_fraction_properties(self):
        r = simulate_stream(keys_(1000), KeyGrouping(4))
        assert 0 <= r.average_imbalance_fraction <= 1
        assert 0 <= r.final_imbalance_fraction <= 1

    def test_summary_is_string(self):
        assert "W=4" in simulate_stream(keys_(100), KeyGrouping(4)).summary()


class TestAssignSources:
    def test_round_robin(self):
        ids = assign_sources(10, 3)
        assert ids.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_by_key_grouping(self):
        source_keys = np.array([5, 5, 7, 5])
        ids = assign_sources(4, 3, source_keys=source_keys)
        assert ids[0] == ids[1] == ids[3]

    def test_by_key_size_mismatch(self):
        with pytest.raises(ValueError):
            assign_sources(3, 2, source_keys=np.array([1, 2]))

    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            assign_sources(5, 0)


class TestMultiSource:
    def test_loads_accumulate_across_sources(self):
        keys = keys_(5000)
        r = simulate_multisource_pkg(keys, num_workers=6, num_sources=4)
        assert r.final_loads.sum() == 5000
        assert r.num_sources == 4

    def test_single_source_local_equals_global(self):
        keys = keys_(5000)
        local = simulate_multisource_pkg(
            keys, num_workers=5, num_sources=1, mode="local", keep_assignments=True
        )
        glob = simulate_multisource_pkg(
            keys, num_workers=5, num_sources=1, mode="global", keep_assignments=True
        )
        assert np.array_equal(local.assignments, glob.assignments)

    def test_matches_object_pkg_single_source(self):
        keys = keys_(4000)
        fast = simulate_multisource_pkg(
            keys, num_workers=7, num_sources=1, seed=3, keep_assignments=True
        )
        pkg = PartialKeyGrouping(7, seed=3)
        assert np.array_equal(fast.assignments, pkg.route_chunk(keys))

    def test_local_beats_hashing(self):
        keys = keys_(30_000)
        local = simulate_multisource_pkg(keys, num_workers=8, num_sources=5)
        kg = simulate_stream(keys, KeyGrouping(8))
        assert local.average_imbalance < kg.average_imbalance / 3

    def test_local_within_order_of_global(self):
        keys = keys_(30_000)
        local = simulate_multisource_pkg(
            keys, num_workers=8, num_sources=5, mode="local"
        )
        glob = simulate_multisource_pkg(
            keys, num_workers=8, num_sources=5, mode="global"
        )
        assert local.average_imbalance <= 10 * max(glob.average_imbalance, 1.0)

    def test_probing_requires_period(self):
        with pytest.raises(ValueError):
            simulate_multisource_pkg(keys_(100), num_workers=2, mode="probing")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            simulate_multisource_pkg(keys_(100), num_workers=2, mode="psychic")

    def test_probing_runs_and_balances(self):
        keys = keys_(20_000)
        r = simulate_multisource_pkg(
            keys,
            num_workers=8,
            num_sources=5,
            mode="probing",
            probe_period=1000.0,
        )
        kg = simulate_stream(keys, KeyGrouping(8))
        assert r.average_imbalance < kg.average_imbalance

    def test_explicit_source_ids(self):
        keys = keys_(1000)
        ids = np.zeros(1000, dtype=np.int64)
        r = simulate_multisource_pkg(
            keys, num_workers=4, num_sources=2, source_ids=ids
        )
        assert r.num_messages == 1000

    def test_source_ids_out_of_range(self):
        keys = keys_(100)
        with pytest.raises(ValueError):
            simulate_multisource_pkg(
                keys,
                num_workers=4,
                num_sources=2,
                source_ids=np.full(100, 5, dtype=np.int64),
            )

    def test_source_ids_wrong_length(self):
        with pytest.raises(ValueError):
            simulate_multisource_pkg(
                keys_(100),
                num_workers=4,
                num_sources=2,
                source_ids=np.zeros(99, dtype=np.int64),
            )

    def test_scheme_names(self):
        keys = keys_(1000)
        assert simulate_multisource_pkg(keys, 4, 5, mode="local").scheme == "L5"
        assert simulate_multisource_pkg(keys, 4, 5, mode="global").scheme == "G"

    def test_d_choices_param(self):
        keys = keys_(10_000)
        d3 = simulate_multisource_pkg(keys, num_workers=8, num_choices=3)
        d2 = simulate_multisource_pkg(keys, num_workers=8, num_choices=2)
        # d = 3 is at least as balanced as d = 2 (constant-factor gain).
        assert d3.average_imbalance <= d2.average_imbalance * 1.5

    def test_string_keys_supported(self):
        words = np.array(["a", "b", "c", "a"] * 100)
        r = simulate_multisource_pkg(words, num_workers=3, num_sources=2)
        assert r.final_loads.sum() == 400


class TestPerSourceRunner:
    def test_per_source_partitioners(self):
        keys = keys_(5000)
        r = simulate_partitioner_per_source(
            keys,
            make_partitioner=lambda s: ShuffleGrouping(4, offset=s),
            num_workers=4,
            num_sources=3,
        )
        assert r.final_loads.sum() == 5000
        assert r.final_loads.max() - r.final_loads.min() <= 3

    def test_matches_multisource_for_local_pkg(self):
        keys = keys_(5000)
        a = simulate_partitioner_per_source(
            keys,
            make_partitioner=lambda s: PartialKeyGrouping(6, seed=1),
            num_workers=6,
            num_sources=3,
            keep_assignments=True,
        )
        b = simulate_multisource_pkg(
            keys,
            num_workers=6,
            num_sources=3,
            mode="local",
            seed=1,
            keep_assignments=True,
        )
        assert np.array_equal(a.assignments, b.assignments)
